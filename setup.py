"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works on offline environments whose
setuptools/pip combination cannot build PEP 660 editable wheels (the
``wheel`` package is not always available).  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
