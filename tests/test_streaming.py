"""Tests for incremental join maintenance (`repro.streaming`).

The centerpiece is a Hypothesis ``RuleBasedStateMachine``: arbitrary
interleaved upsert/replace/delete streams — applied one at a time and in
mixed batches, under every apply strategy — keep a :class:`JoinView` in
exact parity with a from-scratch engine re-join of the mutated corpus,
across measures × algorithms × backends × intern on/off.  A replica pair
map maintained *only* from the emitted deltas is asserted equal to the
view's own state at every step, which pins the delta contract (the
cumulative effect of the deltas IS the new result).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.exceptions import DatasetError, StreamingError
from repro.core.multiset import Multiset
from repro.datasets.workload import (
    MutationStreamConfig,
    generate_mutation_stream,
)
from repro.engine.engine import SimilarityEngine
from repro.engine.spec import JoinSpec
from repro.mapreduce.cluster import laptop_cluster
from repro.serving.api import QueryRequest
from repro.serving.node import ServingNode
from repro.serving.service import ShardedSimilarityService
from repro.streaming.changes import (
    DELETE,
    PAIR_ADDED,
    PAIR_REMOVED,
    SCORE_CHANGED,
    UPSERT,
    Change,
    ChangeBatch,
    PairDelta,
    apply_deltas,
    sort_deltas,
)
from repro.streaming.subscribers import attach_serving
from repro.streaming.view import INCREMENTAL, REJOIN, JoinView
from tests.conftest import make_random_multisets

#: Fixed identifier / alphabet universes for the stateful machine: small
#: enough that collisions (replaces, re-adds, shared elements) are common.
MACHINE_IDS = tuple(f"s{index}" for index in range(8))
MACHINE_ALPHABET = tuple(f"e{index}" for index in range(8))

CONTENTS = st.dictionaries(st.sampled_from(MACHINE_ALPHABET),
                           st.integers(min_value=1, max_value=4),
                           max_size=5)

STRATEGIES = st.sampled_from(["auto", INCREMENTAL, REJOIN])


def view_over(multisets, spec=None, engine=None):
    spec = spec or JoinSpec(threshold=0.4, algorithm="exact")
    return JoinView(spec, multisets, engine=engine)


# ---------------------------------------------------------------------------
# Change / ChangeBatch / PairDelta record types
# ---------------------------------------------------------------------------


class TestChangeRecords:
    def test_upsert_and_delete_constructors(self):
        member = Multiset("m", {"x": 1})
        upsert = Change.upsert(member)
        assert upsert.kind == UPSERT and upsert.target == "m"
        delete = Change.delete("m")
        assert delete.kind == DELETE and delete.target == "m"

    def test_invalid_changes_rejected(self):
        with pytest.raises(StreamingError):
            Change(kind="upsert", multiset=None)
        with pytest.raises(StreamingError):
            Change(kind="delete", multiset=Multiset("m", {"x": 1}))
        with pytest.raises(StreamingError):
            Change(kind="mutate")

    def test_batch_coercion_and_views(self):
        member = Multiset("m", {"x": 1})
        batch = ChangeBatch.of(Change.upsert(member), Change.delete("z"),
                               Change.upsert(member))
        assert len(batch) == 3 and bool(batch)
        assert ChangeBatch.coerce(batch) is batch
        assert len(ChangeBatch.coerce(Change.delete("z"))) == 1
        assert len(ChangeBatch.coerce([Change.delete("z")])) == 1
        assert len(batch.upserts) == 2 and len(batch.deletes) == 1
        assert batch.targets() == ["m", "z"]
        assert not ChangeBatch()

    def test_batch_rejects_non_changes(self):
        with pytest.raises(StreamingError):
            ChangeBatch(["garbage"])

    def test_delta_validation(self):
        with pytest.raises(StreamingError):
            PairDelta("a", "b", "pair_vanished", similarity=0.5)
        with pytest.raises(StreamingError):
            PairDelta("a", "b", PAIR_REMOVED, similarity=0.5, previous=0.4)
        with pytest.raises(StreamingError):
            PairDelta("a", "b", PAIR_ADDED, similarity=None)
        with pytest.raises(StreamingError):
            PairDelta("a", "b", PAIR_ADDED, similarity=0.5, previous=0.4)
        with pytest.raises(StreamingError):
            PairDelta("a", "b", SCORE_CHANGED, similarity=0.5)

    def test_delta_factories_canonicalise(self):
        assert PairDelta.added("b", "a", 0.5).pair == ("a", "b")
        assert PairDelta.removed("b", "a", 0.5).pair == ("a", "b")
        assert PairDelta.changed("b", "a", 0.6, 0.5).pair == ("a", "b")

    def test_sort_deltas_is_total_over_mixed_ids(self):
        deltas = [PairDelta.added(2, 10, 0.5), PairDelta.added("a", "b", 0.5)]
        assert {delta.pair for delta in sort_deltas(deltas)} \
            == {(2, 10), ("a", "b")}

    def test_apply_deltas_replays_and_rejects_mismatches(self):
        pairs = {("a", "b"): 0.5}
        apply_deltas(pairs, [PairDelta.removed("a", "b", 0.5),
                             PairDelta.added("a", "c", 0.7)])
        assert pairs == {("a", "c"): 0.7}
        apply_deltas(pairs, [PairDelta.changed("a", "c", 0.9, 0.7)])
        assert pairs == {("a", "c"): 0.9}
        with pytest.raises(StreamingError):
            apply_deltas(pairs, [PairDelta.added("a", "c", 0.1)])
        with pytest.raises(StreamingError):
            apply_deltas(pairs, [PairDelta.removed("x", "y", 0.1)])
        with pytest.raises(StreamingError):
            apply_deltas(pairs, [PairDelta.changed("x", "y", 0.1, 0.2)])


# ---------------------------------------------------------------------------
# View construction
# ---------------------------------------------------------------------------


class TestViewConstruction:
    def test_materialize_and_to_view_agree_with_direct_build(
            self, overlapping_multisets):
        spec = JoinSpec(threshold=0.8, algorithm="online_aggregation")
        with SimilarityEngine(cluster=laptop_cluster(3)) as engine:
            materialized = engine.materialize(spec, overlapping_multisets)
            from_result = engine.run(spec, overlapping_multisets).to_view()
        direct = JoinView(spec, overlapping_multisets)
        assert materialized.pairs() == from_result.pairs() == direct.pairs()
        assert materialized.pairs() == {("a", "b"): 1.0,
                                        ("d", "e"): pytest.approx(6 / 7)}

    def test_minhash_spec_rejected(self, small_multisets):
        with pytest.raises(StreamingError, match="minhash"):
            JoinView(JoinSpec(threshold=0.4, algorithm="minhash"),
                     small_multisets)

    def test_stop_word_spec_rejected(self, small_multisets):
        with pytest.raises(StreamingError, match="stop-word"):
            JoinView(JoinSpec(threshold=0.4, algorithm="exact",
                              stop_word_frequency=5), small_multisets)

    def test_stale_pairs_rejected(self, overlapping_multisets):
        spec = JoinSpec(threshold=0.8, algorithm="exact")
        with SimilarityEngine() as engine:
            result = engine.run(spec, overlapping_multisets)
        without_b = [multiset for multiset in overlapping_multisets
                     if multiset.id != "b"]
        with pytest.raises(StreamingError, match="same collection"):
            JoinView(spec, without_b, pairs=result.pairs)

    def test_read_surface(self, overlapping_multisets):
        view = view_over(overlapping_multisets,
                         JoinSpec(threshold=0.8, algorithm="exact"))
        assert view.num_members == 5 and view.num_pairs == 2
        assert "a" in view and "ghost" not in view
        assert view.get("a") == overlapping_multisets[0]
        assert view.score("b", "a") == 1.0 and view.score("a", "c") is None
        assert [pair.pair for pair in view] == [("a", "b"), ("d", "e")]
        assert {member.id for member in view.members()} \
            == {"a", "b", "c", "d", "e"}
        matches = view.matches_for("a")
        assert [(m.multiset_id, m.similarity) for m in matches] == [("b", 1.0)]
        assert view.matches_for("c") == []
        with pytest.raises(StreamingError):
            view.matches_for("ghost")
        assert "JoinView" in repr(view)


# ---------------------------------------------------------------------------
# Applying batches
# ---------------------------------------------------------------------------


class TestApply:
    def test_delta_kinds_cover_add_remove_and_rescore(self):
        corpus = [Multiset("a", {"x": 2, "y": 2}), Multiset("b", {"x": 2, "y": 2}),
                  Multiset("c", {"z": 1})]
        view = view_over(corpus, JoinSpec(threshold=0.5, algorithm="exact"))
        assert view.pairs() == {("a", "b"): 1.0}
        deltas = view.apply(ChangeBatch.of(
            Change.upsert(Multiset("b", {"x": 2, "y": 1})),  # rescore a-b
            Change.upsert(Multiset("c", {"x": 2, "y": 2})),  # add a-c
        ))
        kinds = {delta.pair: delta.kind for delta in deltas}
        assert kinds[("a", "b")] == SCORE_CHANGED
        assert kinds[("a", "c")] == PAIR_ADDED
        removed = view.delete("a")
        assert {delta.kind for delta in removed} == {PAIR_REMOVED}
        assert all(delta.previous is not None for delta in removed)

    def test_validation_is_atomic(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        before = view.pairs()
        with pytest.raises(StreamingError, match="does not hold"):
            view.apply(ChangeBatch.of(
                Change.upsert(Multiset("fresh", {"x": 1})),
                Change.delete("ghost")))
        assert view.pairs() == before
        assert "fresh" not in view
        assert view.version == 0

    def test_batch_internal_ordering_is_respected(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        # Upsert then delete the same identifier inside one batch: legal,
        # and the net effect is absence.
        view.apply(ChangeBatch.of(Change.upsert(Multiset("fresh", {"x": 1})),
                                  Change.delete("fresh")))
        assert "fresh" not in view
        # Deleting before the upsert is invalid at that point in the batch.
        with pytest.raises(StreamingError):
            view.apply(ChangeBatch.of(Change.delete("fresh2"),
                                      Change.upsert(Multiset("fresh2", {"x": 1}))))

    def test_empty_batch_is_a_no_op(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        assert view.apply(ChangeBatch()) == []
        assert view.version == 0

    def test_unknown_strategy_rejected(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        with pytest.raises(StreamingError, match="strategy"):
            view.apply(ChangeBatch.of(Change.delete("a")), strategy="magic")

    @pytest.mark.parametrize("algorithm", ["exact", "online_aggregation"])
    def test_forced_strategies_emit_identical_deltas(self, small_multisets,
                                                     algorithm):
        spec = JoinSpec(threshold=0.4, algorithm=algorithm)
        with SimilarityEngine(cluster=laptop_cluster(3)) as engine:
            incremental = engine.materialize(spec, small_multisets)
            rejoined = engine.materialize(spec, small_multisets)
            batch = ChangeBatch.of(
                Change.upsert(small_multisets[0].scaled(2)),
                Change.delete(small_multisets[1].id),
                Change.upsert(Multiset("fresh", small_multisets[2].counts())))
            first = incremental.apply(batch, strategy=INCREMENTAL)
            second = rejoined.apply(batch, strategy=REJOIN)
        assert first == second
        assert incremental.pairs() == rejoined.pairs()
        assert incremental.counters()["streaming/batches_incremental"] == 1
        assert rejoined.counters()["streaming/batches_rejoin"] == 1

    def test_version_and_counters_track_batches(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        view.upsert(Multiset("f", {"x": 3, "y": 2, "z": 1}))
        view.delete("f")
        assert view.version == 2
        counters = view.counters()
        assert counters["streaming/changes_applied"] == 2
        assert counters["streaming/pair_added"] \
            == counters["streaming/pair_removed"]

    def test_subscribers_see_batches_and_deltas(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        seen = []
        callback = view.subscribe(
            lambda v, batch, deltas: seen.append((len(batch), list(deltas))))
        deltas = view.delete("b")
        assert seen == [(1, deltas)]
        view.unsubscribe(callback)
        view.delete("a")
        assert len(seen) == 1
        with pytest.raises(StreamingError):
            view.unsubscribe(callback)


# ---------------------------------------------------------------------------
# Strategy pricing
# ---------------------------------------------------------------------------


class TestApplyPlan:
    def test_small_batches_price_incremental(self, small_multisets):
        view = view_over(small_multisets,
                         JoinSpec(threshold=0.4, algorithm="online_aggregation"))
        plan = view.decide(ChangeBatch.of(Change.delete(small_multisets[0].id)))
        assert plan.strategy == INCREMENTAL
        assert plan.incremental_seconds < plan.rejoin_seconds
        assert plan.touched == 1
        assert "ApplyPlan" in plan.explain()

    def test_corpus_rewrites_price_rejoin(self):
        # Every member shares one hot element, so rescanning the postings of
        # a whole-corpus rewrite costs ~N^2 posting visits — more than the
        # candidate volume of one in-memory re-join, which pays no job
        # overhead under algorithm="exact".
        members = [Multiset(f"m{index}", {"hot": 1, f"rare{index}": 2})
                   for index in range(40)]
        view = view_over(members, JoinSpec(threshold=0.9, algorithm="exact"))
        rewrite = ChangeBatch(
            tuple(Change.upsert(member.scaled(2)) for member in members))
        plan = view.decide(rewrite)
        assert plan.strategy == REJOIN
        assert plan.rejoin_seconds < plan.incremental_seconds
        assert plan.postings_to_scan > plan.candidate_records
        # auto acts on the decision.
        view.apply(rewrite)
        assert view.counters()["streaming/batches_rejoin"] == 1

    def test_distributed_rejoin_pays_job_overhead(self, overlapping_multisets):
        distributed = view_over(
            overlapping_multisets,
            JoinSpec(threshold=0.8, algorithm="online_aggregation"))
        sequential = view_over(overlapping_multisets,
                               JoinSpec(threshold=0.8, algorithm="exact"))
        batch = ChangeBatch.of(Change.delete("a"))
        assert distributed.decide(batch).rejoin_seconds \
            > sequential.decide(batch).rejoin_seconds


# ---------------------------------------------------------------------------
# Streaming into the serving layer
# ---------------------------------------------------------------------------


class TestServingSubscriber:
    def synced_pair(self, multisets, num_shards=2, threshold=0.4):
        spec = JoinSpec(threshold=threshold, algorithm="exact")
        view = view_over(multisets, spec)
        service = ShardedSimilarityService(view.measure.name,
                                           num_shards=num_shards,
                                           cache_capacity=max(
                                               1024, len(multisets) * 4))
        subscription = attach_serving(view, service)
        return view, service, subscription

    def assert_member_queries_warmed(self, view, service, threshold):
        fresh = ShardedSimilarityService(view.measure.name,
                                         num_shards=service.num_shards)
        fresh.bulk_load(view.members())
        hits_before = service.stats()["cache/hits"]
        for member in view.members():
            request = QueryRequest.threshold(member, threshold)
            warmed = service.query(request).matches
            expected = fresh.query(request).matches
            assert [(m.multiset_id, m.similarity) for m in warmed] \
                == [(m.multiset_id, pytest.approx(m.similarity))
                    for m in expected]
        hits = service.stats()["cache/hits"] - hits_before
        assert hits == len(view.members()) * service.num_shards

    def test_attach_loads_and_warms(self, small_multisets):
        view, service, _ = self.synced_pair(small_multisets)
        assert len(service) == len(small_multisets)
        self.assert_member_queries_warmed(view, service, 0.4)

    def test_batches_keep_the_fleet_in_sync(self, small_multisets):
        view, service, _ = self.synced_pair(small_multisets)
        stream = generate_mutation_stream(
            small_multisets, MutationStreamConfig(num_batches=3, batch_size=6,
                                                  seed=17))
        for batch in stream:
            view.apply(batch)
        assert len(service) == view.num_members
        self.assert_member_queries_warmed(view, service, 0.4)

    def test_single_node_target(self, overlapping_multisets):
        spec = JoinSpec(threshold=0.8, algorithm="exact")
        view = view_over(overlapping_multisets, spec)
        node = ServingNode("ruzicka", cache_capacity=64)
        attach_serving(view, node)
        view.delete("b")
        hits_before = node.cache_hits
        matches = node.query(
            QueryRequest.threshold(overlapping_multisets[3], 0.8)).matches
        assert {m.multiset_id for m in matches} == {"d", "e"}
        assert node.cache_hits == hits_before + 1

    def test_detach_stops_following(self, overlapping_multisets):
        view, service, subscription = self.synced_pair(overlapping_multisets)
        subscription.detach()
        view.delete("b")
        assert "b" in service and "b" not in view

    def test_measure_mismatch_rejected(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        with pytest.raises(StreamingError, match="measure"):
            attach_serving(view, ServingNode("jaccard"))

    def test_stop_word_target_cannot_be_warmed(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        pruning = ServingNode("ruzicka", stop_word_frequency=3)
        with pytest.raises(StreamingError, match="stop-word"):
            attach_serving(view, pruning)
        # warm=False keeps the combination available (no cache seeding).
        attach_serving(view, pruning, warm=False)
        assert len(pruning) == len(view.members())

    def test_preloaded_target_must_match_the_view(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        mismatched = ServingNode("ruzicka")
        mismatched.add(Multiset("stranger", {"x": 1}))
        with pytest.raises(StreamingError, match="exactly"):
            attach_serving(view, mismatched)
        # Same identifiers but stale contents are just as wrong: the target
        # would serve answers disagreeing with the view once its caches go.
        stale = ServingNode("ruzicka")
        stale.bulk_load(overlapping_multisets)
        stale.add(overlapping_multisets[0].scaled(3), replace=True)
        with pytest.raises(StreamingError, match="contents"):
            attach_serving(view, stale)
        # A faithfully pre-loaded target attaches fine.
        loaded = ServingNode("ruzicka")
        loaded.bulk_load(overlapping_multisets)
        attach_serving(view, loaded)
        assert len(loaded) == len(overlapping_multisets)

    def test_non_serving_target_rejected(self, overlapping_multisets):
        view = view_over(overlapping_multisets)
        with pytest.raises(StreamingError, match="targets"):
            attach_serving(view, object())


# ---------------------------------------------------------------------------
# The mutation-stream generator
# ---------------------------------------------------------------------------


class TestMutationStream:
    def test_deterministic(self, small_multisets):
        config = MutationStreamConfig(num_batches=4, batch_size=10, seed=3)
        assert generate_mutation_stream(small_multisets, config) \
            == generate_mutation_stream(small_multisets, config)

    def test_stream_is_internally_consistent(self, small_multisets):
        stream = generate_mutation_stream(
            small_multisets,
            MutationStreamConfig(num_batches=6, batch_size=12,
                                 update_fraction=0.3, insert_fraction=0.2,
                                 delete_fraction=0.5, seed=9))
        live = {member.id for member in small_multisets}
        for batch in stream:
            for change in batch:
                if change.kind == DELETE:
                    assert change.target in live
                    live.discard(change.target)
                else:
                    live.add(change.target)
            assert live  # the live set never empties
        assert sum(len(batch) for batch in stream) == 72

    def test_update_targets_are_zipf_skewed(self, small_multisets):
        stream = generate_mutation_stream(
            small_multisets,
            MutationStreamConfig(num_batches=10, batch_size=30,
                                 update_fraction=1.0, insert_fraction=0.0,
                                 delete_fraction=0.0, zipf_exponent=1.5,
                                 seed=5))
        targets = [change.target for batch in stream for change in batch]
        frequencies = sorted(
            (targets.count(identifier) for identifier in set(targets)),
            reverse=True)
        # The hot head absorbs a disproportionate share of the updates.
        assert frequencies[0] > len(targets) / len(small_multisets) * 3

    def test_inserts_use_fresh_identifiers(self, small_multisets):
        stream = generate_mutation_stream(
            small_multisets,
            MutationStreamConfig(num_batches=3, batch_size=10,
                                 update_fraction=0.0, insert_fraction=1.0,
                                 delete_fraction=0.0, seed=2))
        existing = {member.id for member in small_multisets}
        inserted = [change.target for batch in stream for change in batch]
        assert len(set(inserted)) == len(inserted)
        assert not (set(inserted) & existing)

    def test_invalid_parameters_rejected(self, small_multisets):
        with pytest.raises(DatasetError):
            generate_mutation_stream([], MutationStreamConfig())
        with pytest.raises(DatasetError):
            MutationStreamConfig(num_batches=-1)
        with pytest.raises(DatasetError):
            MutationStreamConfig(batch_size=0)
        with pytest.raises(DatasetError):
            MutationStreamConfig(update_fraction=0.9)
        with pytest.raises(DatasetError):
            MutationStreamConfig(update_fraction=-0.2, insert_fraction=0.6,
                                 delete_fraction=0.6)
        with pytest.raises(DatasetError):
            MutationStreamConfig(zipf_exponent=0.0)

    def test_stream_applies_cleanly_to_a_view(self, small_multisets):
        view = view_over(small_multisets)
        for batch in generate_mutation_stream(
                small_multisets, MutationStreamConfig(num_batches=4,
                                                      batch_size=8, seed=21)):
            view.apply(batch)
        assert view.num_members > 0


# ---------------------------------------------------------------------------
# The stateful parity machine (the test-archetype centerpiece)
# ---------------------------------------------------------------------------


class JoinViewParityMachine(RuleBasedStateMachine):
    """Arbitrary interleaved mutation streams keep the view exact.

    Every example draws one configuration (measure × algorithm × backend ×
    intern × threshold) and an initial corpus, then interleaves single-
    change and mixed-batch applications under all three strategies.  After
    every step:

    * the view's pair map equals a from-scratch engine re-join of the
      mutated corpus (pair sets exactly, scores to float tolerance);
    * a replica maintained only from the emitted deltas equals the view's
      pair map exactly — the delta stream alone reconstructs the result.
    """

    def __init__(self):
        super().__init__()
        self.engine = None
        self.view = None
        self.spec = None
        self.model: dict = {}
        self.replica: dict = {}

    @initialize(measure=st.sampled_from(["ruzicka", "jaccard",
                                         "vector_cosine", "dice"]),
                algorithm=st.sampled_from(["exact", "online_aggregation",
                                           "sharding"]),
                backend=st.sampled_from(["serial", "thread"]),
                intern=st.booleans(),
                threshold=st.sampled_from([0.3, 0.5, 0.8]),
                seed=st.integers(min_value=0, max_value=10_000))
    def setup(self, measure, algorithm, backend, intern, threshold, seed):
        corpus = make_random_multisets(5, alphabet_size=8, max_elements=5,
                                       seed=seed)
        self.spec = JoinSpec(measure=measure, threshold=threshold,
                             algorithm=algorithm, intern=intern)
        self.engine = SimilarityEngine(cluster=laptop_cluster(num_machines=3),
                                       backend=backend)
        self.view = self.engine.materialize(self.spec, corpus)
        self.model = {member.id: member for member in corpus}
        self.replica = self.view.pairs()

    def teardown(self):
        if self.engine is not None:
            self.engine.close()

    def _record(self, changes, deltas):
        for change in changes:
            if change.kind == DELETE:
                del self.model[change.target]
            else:
                self.model[change.target] = change.multiset
        apply_deltas(self.replica, deltas)

    @rule(data=st.data(), contents=CONTENTS, strategy=STRATEGIES)
    def upsert(self, data, contents, strategy):
        target = data.draw(st.sampled_from(MACHINE_IDS), label="upsert target")
        change = Change.upsert(Multiset(target, contents))
        deltas = self.view.apply(ChangeBatch.of(change), strategy=strategy)
        self._record([change], deltas)

    @precondition(lambda self: len(self.model) > 1)
    @rule(data=st.data(), strategy=STRATEGIES)
    def delete(self, data, strategy):
        target = data.draw(st.sampled_from(sorted(self.model)),
                           label="delete target")
        deltas = self.view.apply(ChangeBatch.of(Change.delete(target)),
                                 strategy=strategy)
        self._record([Change.delete(target)], deltas)

    @rule(data=st.data(), strategy=STRATEGIES)
    def apply_mixed_batch(self, data, strategy):
        live = set(self.model)
        changes = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=4),
                                 label="batch size")):
            if len(live) > 1 and data.draw(st.booleans(), label="delete?"):
                target = data.draw(st.sampled_from(sorted(live)),
                                   label="batch delete target")
                changes.append(Change.delete(target))
                live.discard(target)
            else:
                target = data.draw(st.sampled_from(MACHINE_IDS),
                                   label="batch upsert target")
                contents = data.draw(CONTENTS, label="batch contents")
                changes.append(Change.upsert(Multiset(target, contents)))
                live.add(target)
        deltas = self.view.apply(ChangeBatch(changes), strategy=strategy)
        self._record(changes, deltas)

    @invariant()
    def parity_with_fresh_rejoin(self):
        if self.view is None:
            return
        expected = {pair.pair: pair.similarity
                    for pair in self.engine.run(self.spec,
                                                list(self.model.values()))}
        got = self.view.pairs()
        assert set(got) == set(expected)
        for pair, similarity in got.items():
            assert similarity == pytest.approx(expected[pair])
        # The delta stream alone reconstructs the view's state, exactly.
        assert self.replica == got
        assert {member.id for member in self.view.members()} \
            == set(self.model)


JoinViewParityMachine.TestCase.settings = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])
TestJoinViewParity = JoinViewParityMachine.TestCase
