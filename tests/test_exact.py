"""Tests for the exact in-memory evaluation helpers."""

from __future__ import annotations

import pytest

from repro.core.multiset import Multiset
from repro.similarity.exact import (
    all_pairs_exact,
    compute_partials,
    compute_similarity,
    pair_dictionary,
)


class TestComputeSimilarity:
    def test_by_name(self):
        first = Multiset("a", {"x": 1})
        second = Multiset("b", {"x": 1, "y": 1})
        assert compute_similarity("jaccard", first, second) == pytest.approx(0.5)

    def test_partials(self):
        first = Multiset("a", {"x": 2})
        second = Multiset("b", {"x": 1, "y": 3})
        partials = compute_partials("ruzicka", first, second)
        assert partials["uni_i"] == (2.0,)
        assert partials["uni_j"] == (4.0,)
        assert partials["conj"] == (1.0,)


class TestAllPairsExact:
    def test_simple_collection(self, overlapping_multisets):
        pairs = all_pairs_exact(overlapping_multisets, "ruzicka", 0.5)
        indexed = pair_dictionary(pairs)
        assert indexed[("a", "b")] == pytest.approx(1.0)
        assert ("a", "d") not in indexed

    def test_accepts_mapping_input(self, overlapping_multisets):
        as_mapping = {m.id: m for m in overlapping_multisets}
        assert all_pairs_exact(as_mapping, "ruzicka", 0.5) == all_pairs_exact(
            overlapping_multisets, "ruzicka", 0.5)

    def test_results_sorted_and_canonical(self, small_multisets):
        pairs = all_pairs_exact(small_multisets, "jaccard", 0.2)
        assert pairs == sorted(pairs)
        for pair in pairs:
            assert repr(pair.first) <= repr(pair.second)

    def test_threshold_monotonicity(self, small_multisets):
        low = all_pairs_exact(small_multisets, "ruzicka", 0.1)
        high = all_pairs_exact(small_multisets, "ruzicka", 0.6)
        assert len(high) <= len(low)
        assert {p.pair for p in high} <= {p.pair for p in low}

    def test_invalid_threshold_rejected(self, small_multisets):
        with pytest.raises(ValueError):
            all_pairs_exact(small_multisets, "ruzicka", 0.0)

    def test_pair_dictionary(self):
        pairs = all_pairs_exact(
            [Multiset("a", {"x": 1}), Multiset("b", {"x": 1})], "jaccard", 0.5)
        assert pair_dictionary(pairs) == {("a", "b"): pytest.approx(1.0)}
