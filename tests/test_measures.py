"""Unit and property tests for the Nominal Similarity Measures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import MeasureNotApplicableError, UnknownMeasureError
from repro.core.multiset import Multiset
from repro.similarity.base import PartialKind, validate_threshold
from repro.similarity.measures import RuzickaSimilarity
from repro.similarity.registry import (
    available_measures,
    get_measure,
    iter_measures,
    register_measure,
    supported_measures,
)

A = Multiset("a", {"x": 3, "y": 2, "z": 1})
B = Multiset("b", {"x": 1, "y": 2, "w": 4})
# min-sums: x -> 1, y -> 2 => intersection 3; |A| = 6, |B| = 7.


def multiset_strategy(identifier: str):
    return st.dictionaries(
        st.sampled_from([f"e{i}" for i in range(10)]),
        st.integers(min_value=1, max_value=5),
        min_size=1, max_size=8,
    ).map(lambda counts: Multiset(identifier, counts))


class TestKnownValues:
    def test_ruzicka(self):
        assert get_measure("ruzicka").similarity(A, B) == pytest.approx(3 / 10)

    def test_weighted_jaccard_alias(self):
        assert get_measure("weighted_jaccard").similarity(A, B) == pytest.approx(3 / 10)

    def test_jaccard_on_underlying_sets(self):
        # U(A) = {x, y, z}, U(B) = {x, y, w}: intersection 2, union 4.
        assert get_measure("jaccard").similarity(A, B) == pytest.approx(0.5)

    def test_dice_multiset(self):
        assert get_measure("dice").similarity(A, B) == pytest.approx(2 * 3 / 13)

    def test_set_dice(self):
        assert get_measure("set_dice").similarity(A, B) == pytest.approx(2 * 2 / 6)

    def test_cosine_multiset(self):
        assert get_measure("cosine").similarity(A, B) == pytest.approx(3 / (6 * 7) ** 0.5)

    def test_set_cosine(self):
        assert get_measure("set_cosine").similarity(A, B) == pytest.approx(2 / 3)

    def test_vector_cosine(self):
        dot = 3 * 1 + 2 * 2
        norm_a = (9 + 4 + 1) ** 0.5
        norm_b = (1 + 4 + 16) ** 0.5
        assert get_measure("vector_cosine").similarity(A, B) == pytest.approx(
            dot / (norm_a * norm_b))

    def test_overlap(self):
        assert get_measure("overlap").similarity(A, B) == pytest.approx(3 / 6)

    def test_set_overlap(self):
        assert get_measure("set_overlap").similarity(A, B) == pytest.approx(2 / 3)

    def test_direct_ruzicka_matches_rewritten_form(self):
        assert get_measure("direct_ruzicka").similarity(A, B) == pytest.approx(
            get_measure("ruzicka").similarity(A, B))

    def test_disjoint_multisets_have_zero_similarity(self):
        left = Multiset("l", {"a": 3})
        right = Multiset("r", {"b": 2})
        for name in supported_measures():
            assert get_measure(name).similarity(left, right) == 0.0

    def test_empty_multiset_similarity_is_zero(self):
        empty = Multiset("empty", {})
        for name in supported_measures():
            assert get_measure(name).similarity(empty, A) == 0.0


class TestDecomposition:
    def test_ruzicka_partials(self):
        measure = get_measure("ruzicka")
        assert measure.unilateral(A) == (6.0,)
        assert measure.unilateral(B) == (7.0,)
        assert measure.conjunctive(A, B) == (3.0,)
        assert measure.combine((6.0,), (7.0,), (3.0,)) == pytest.approx(0.3)

    def test_jaccard_partials_use_underlying_sets(self):
        measure = get_measure("jaccard")
        assert measure.unilateral(A) == (3.0,)
        assert measure.conjunctive(A, B) == (2.0,)

    def test_vector_cosine_partials(self):
        measure = get_measure("vector_cosine")
        assert measure.unilateral(A) == (14.0,)
        assert measure.conjunctive(A, B) == (7.0,)

    def test_descriptors_have_no_disjunctive_for_supported(self):
        for name in supported_measures():
            kinds = {d.kind for d in get_measure(name).partial_descriptors()}
            assert PartialKind.DISJUNCTIVE not in kinds

    def test_direct_ruzicka_declares_disjunctive(self):
        kinds = {d.kind for d in get_measure("direct_ruzicka").partial_descriptors()}
        assert PartialKind.DISJUNCTIVE in kinds

    def test_check_supported(self):
        get_measure("ruzicka").check_supported()
        with pytest.raises(MeasureNotApplicableError):
            get_measure("direct_ruzicka").check_supported()

    def test_direct_ruzicka_combine_not_implemented(self):
        with pytest.raises(NotImplementedError):
            get_measure("direct_ruzicka").combine((), (), (1.0,))

    def test_effective_multiplicity(self):
        assert get_measure("jaccard").effective_multiplicity(5) == 1.0
        assert get_measure("ruzicka").effective_multiplicity(5) == 5.0
        assert get_measure("ruzicka").effective_multiplicity(0) == 0.0


class TestPrefixFilterBounds:
    def test_ruzicka_prefix_size_classic(self):
        measure = get_measure("ruzicka")
        # |U| = 10, t = 0.8 -> 10 - 8 + 1 = 3
        assert measure.prefix_size(10, 0.8) == 3

    def test_jaccard_size_lower_bound(self):
        assert get_measure("jaccard").size_lower_bound(10, 0.5) == pytest.approx(5.0)

    def test_cosine_size_lower_bound(self):
        assert get_measure("cosine").size_lower_bound(10, 0.5) == pytest.approx(2.5)

    def test_dice_size_lower_bound(self):
        assert get_measure("dice").size_lower_bound(9, 0.5) == pytest.approx(3.0)

    def test_minimum_overlap_ruzicka(self):
        assert get_measure("ruzicka").minimum_overlap(10, 10, 0.5) == pytest.approx(
            0.5 / 1.5 * 20)

    def test_prefix_size_never_exceeds_size(self):
        for name in ("ruzicka", "jaccard", "dice", "cosine"):
            measure = get_measure(name)
            for size in (1, 5, 50):
                for threshold in (0.1, 0.5, 0.9):
                    assert 0 <= measure.prefix_size(size, threshold) <= size

    def test_default_bounds_are_conservative(self):
        measure = get_measure("vector_cosine")
        assert measure.size_lower_bound(10, 0.5) == 0.0
        assert measure.prefix_size(10, 0.5) == 10


class TestRegistry:
    def test_available_contains_expected_names(self):
        names = available_measures()
        for expected in ("ruzicka", "jaccard", "dice", "cosine", "vector_cosine"):
            assert expected in names

    def test_supported_excludes_disjunctive(self):
        assert "direct_ruzicka" not in supported_measures()
        assert "direct_ruzicka" in available_measures()

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownMeasureError):
            get_measure("no-such-measure")

    def test_get_instance_passthrough(self):
        measure = RuzickaSimilarity()
        assert get_measure(measure) is measure

    def test_register_duplicate_rejected(self):
        with pytest.raises(UnknownMeasureError):
            register_measure(RuzickaSimilarity())

    def test_register_replace(self):
        register_measure(RuzickaSimilarity(), replace=True)
        assert get_measure("ruzicka").name == "ruzicka"

    def test_iter_measures_sorted(self):
        names = [name for name, _ in iter_measures()]
        assert names == sorted(names)


class TestThresholdValidation:
    def test_valid(self):
        assert validate_threshold(0.5) == 0.5
        assert validate_threshold(1.0) == 1.0

    @pytest.mark.parametrize("value", [0.0, -0.1, 1.5, float("nan")])
    def test_invalid(self, value):
        with pytest.raises(ValueError):
            validate_threshold(value)


class TestMeasureProperties:
    @settings(max_examples=50, deadline=None)
    @given(multiset_strategy("a"), multiset_strategy("b"),
           st.sampled_from(["ruzicka", "jaccard", "dice", "cosine",
                            "vector_cosine", "overlap", "set_dice", "set_cosine"]))
    def test_symmetry_and_range(self, first, second, name):
        measure = get_measure(name)
        value = measure.similarity(first, second)
        assert value == pytest.approx(measure.similarity(second, first))
        assert 0.0 <= value <= 1.0 + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(multiset_strategy("a"),
           st.sampled_from(["ruzicka", "jaccard", "dice", "cosine",
                            "vector_cosine", "overlap"]))
    def test_self_similarity_is_one(self, multiset, name):
        assert get_measure(name).similarity(multiset, multiset) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(multiset_strategy("a"), multiset_strategy("b"))
    def test_direct_and_rewritten_ruzicka_agree(self, first, second):
        assert get_measure("direct_ruzicka").similarity(first, second) == pytest.approx(
            get_measure("ruzicka").similarity(first, second))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=12))
    def test_uni_merge_matches_bulk_computation(self, multiplicities):
        measure = get_measure("vector_cosine")
        accumulator = measure.uni_zero()
        for multiplicity in multiplicities:
            accumulator = measure.uni_merge(
                accumulator, measure.uni_from_multiplicity(float(multiplicity)))
        expected = sum(m * m for m in multiplicities)
        assert accumulator == (pytest.approx(expected),)


class TestRegistryCaseInsensitivity:
    def test_lookup_ignores_case(self):
        assert get_measure("Ruzicka") is get_measure("ruzicka")
        assert get_measure("RUZICKA") is get_measure("ruzicka")
        assert get_measure("Vector_Cosine") is get_measure("vector_cosine")

    def test_error_lists_known_measures(self):
        with pytest.raises(UnknownMeasureError) as excinfo:
            get_measure("no-such-measure")
        message = str(excinfo.value)
        assert "known measures" in message
        for name in ("ruzicka", "jaccard", "vector_cosine"):
            assert name in message


class TestSimilarityUpperBounds:
    def test_ruzicka_bound_formula(self):
        measure = get_measure("ruzicka")
        # Uni = (|Mi|,); conj bound = min => bound = min / (a + b - min).
        assert measure.similarity_upper_bound((4.0,), (6.0,)) == pytest.approx(4 / 6)

    def test_vector_cosine_bound_is_one(self):
        measure = get_measure("vector_cosine")
        assert measure.similarity_upper_bound((9.0,), (16.0,)) == pytest.approx(1.0)

    def test_default_bound_is_one(self):
        class Unbounded(RuzickaSimilarity):
            name = "unbounded-test"

            def conj_upper_bound(self, uni_i, uni_j):
                return None

        assert Unbounded().similarity_upper_bound((4.0,), (6.0,)) == 1.0
