"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.core.multiset import Multiset
from repro.mapreduce.cluster import GOOGLE_MAPREDUCE, HADOOP, Cluster, laptop_cluster

# Hypothesis budgets.  The stateful suites (tests/test_streaming.py,
# tests/test_serving.py) take their example and step budgets from the
# loaded profile; property tests that name an explicit max_examples keep
# it.  "dev" is the fast local default; CI runs one matrix entry with
# HYPOTHESIS_PROFILE=ci for a deeper stateful search.
settings.register_profile(
    "dev", max_examples=20, stateful_step_count=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "ci", max_examples=75, stateful_step_count=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def make_random_multisets(count: int, alphabet_size: int, max_elements: int,
                          max_multiplicity: int = 5, seed: int = 0) -> list[Multiset]:
    """Build a deterministic random collection of multisets for tests."""
    rng = random.Random(seed)
    multisets = []
    for index in range(count):
        num_elements = rng.randint(1, max_elements)
        counts: dict[str, int] = {}
        for _ in range(num_elements):
            element = f"e{rng.randint(0, alphabet_size - 1)}"
            counts[element] = rng.randint(1, max_multiplicity)
        multisets.append(Multiset(f"m{index}", counts))
    return multisets


@pytest.fixture
def storage_path(tmp_path) -> str:
    """A per-test SQLite database path under pytest's managed tmp dir.

    Every storage test writes through this fixture, so databases (and
    their WAL side files) are cleaned up with the tmp dir and never leak
    into the working tree.
    """
    return str(tmp_path / "store.sqlite")


@pytest.fixture
def small_multisets() -> list[Multiset]:
    """Forty small random multisets over a 60-element alphabet."""
    return make_random_multisets(40, alphabet_size=60, max_elements=25, seed=7)


@pytest.fixture
def overlapping_multisets() -> list[Multiset]:
    """A handful of hand-built multisets with known overlaps."""
    return [
        Multiset("a", {"x": 3, "y": 2, "z": 1}),
        Multiset("b", {"x": 3, "y": 2, "z": 1}),
        Multiset("c", {"x": 1, "y": 1}),
        Multiset("d", {"q": 4, "r": 2}),
        Multiset("e", {"q": 4, "r": 2, "x": 1}),
    ]


@pytest.fixture
def test_cluster() -> Cluster:
    """A small Google-profile cluster with generous memory for unit tests."""
    return laptop_cluster(num_machines=6)


@pytest.fixture
def hadoop_cluster() -> Cluster:
    """A Hadoop-profile cluster (no secondary keys)."""
    return laptop_cluster(num_machines=6, profile=HADOOP)


@pytest.fixture
def tight_memory_cluster() -> Cluster:
    """A cluster whose per-machine memory budget is deliberately tiny."""
    return Cluster(num_machines=4, memory_per_machine=2_000,
                   disk_per_machine=10_000_000, profile=GOOGLE_MAPREDUCE)
