"""Tests for the MapReduce simulator: jobs, runner, budgets, profiles."""

from __future__ import annotations

import pytest

from repro.core.exceptions import (
    DiskBudgetExceeded,
    JobConfigurationError,
    JobTimeoutError,
    MemoryBudgetExceeded,
    UnsupportedFeatureError,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.costmodel import CostParameters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.job import (
    Combiner,
    IdentityMapper,
    JobSpec,
    Mapper,
    Reducer,
    SummingCombiner,
    TaskContext,
    normalise_emit,
)
from repro.mapreduce.runner import LocalJobRunner
from repro.mapreduce.types import KeyValue


class WordCountMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.increment("words_seen")
            yield (word, 1)


class WordCountReducer(Reducer):
    def reduce(self, key, values, context):
        yield (key, sum(values))


class SecondaryOrderMapper(Mapper):
    """Emit values whose correctness depends on the secondary sort order."""

    def map(self, record, context):
        key, value, secondary = record
        yield (key, value, secondary)


class CollectOrderReducer(Reducer):
    def reduce(self, key, values, context):
        yield (key, tuple(values))


class MaterialisingReducer(Reducer):
    materializes_input = True

    def reduce(self, key, values, context):
        yield (key, len(list(values)))


def run_wordcount(cluster, combiner=None, documents=None):
    runner = LocalJobRunner(cluster)
    dataset = Dataset.from_records(documents or ["a b a", "b c", "a c c"])
    job = JobSpec("wordcount", WordCountMapper(), WordCountReducer(), combiner)
    return runner.run(job, dataset)


class TestBasicExecution:
    def test_wordcount_results(self, test_cluster):
        result = run_wordcount(test_cluster)
        assert sorted(result.output.records) == [("a", 3), ("b", 2), ("c", 3)]

    def test_counters_propagated(self, test_cluster):
        result = run_wordcount(test_cluster)
        assert result.stats.counters["words_seen"] == 8

    def test_stats_record_counts(self, test_cluster):
        result = run_wordcount(test_cluster)
        assert result.stats.map.records_in == 3
        assert result.stats.map.records_out == 8
        assert result.stats.reduce_groups == 3
        assert result.stats.shuffle_bytes > 0
        assert result.stats.simulated_seconds > 0

    def test_combiner_reduces_shuffle_volume(self, test_cluster):
        without = run_wordcount(test_cluster)
        with_combiner = run_wordcount(test_cluster, combiner=SummingCombiner())
        assert sorted(with_combiner.output.records) == sorted(without.output.records)
        assert with_combiner.stats.shuffle_bytes <= without.stats.shuffle_bytes
        assert with_combiner.stats.combine.records_in > 0

    def test_map_only_job(self, test_cluster):
        runner = LocalJobRunner(test_cluster)
        job = JobSpec("map-only", WordCountMapper())
        result = runner.run(job, Dataset.from_records(["a b"]))
        assert all(isinstance(record, KeyValue) for record in result.output)
        assert len(result.output) == 2

    def test_identity_mapper(self, test_cluster):
        runner = LocalJobRunner(test_cluster)
        job = JobSpec("identity", IdentityMapper(), CollectOrderReducer())
        records = [KeyValue("k", 1), KeyValue("k", 2)]
        result = runner.run(job, Dataset.from_records(records))
        assert result.output.records[0] == ("k", (1, 2))

    def test_deterministic_across_runs(self, test_cluster):
        first = run_wordcount(test_cluster)
        second = run_wordcount(test_cluster)
        assert first.stats.simulated_seconds == second.stats.simulated_seconds
        assert first.stats.shuffle_bytes == second.stats.shuffle_bytes
        assert sorted(first.output.records) == sorted(second.output.records)


class TestSecondaryKeys:
    def make_dataset(self):
        return Dataset.from_records([
            ("key", "late", 1), ("key", "early", 0),
            ("key", "later", 2), ("key", "early2", 0),
        ])

    def test_values_sorted_by_secondary_key(self, test_cluster):
        runner = LocalJobRunner(test_cluster)
        job = JobSpec("secondary", SecondaryOrderMapper(), CollectOrderReducer(),
                      requires_secondary_keys=True)
        result = runner.run(job, self.make_dataset())
        (_key, values), = result.output.records
        assert values[:2] in (("early", "early2"), ("early2", "early"))
        assert set(values[2:]) == {"late", "later"}

    def test_hadoop_profile_rejects_secondary_keys(self, hadoop_cluster):
        runner = LocalJobRunner(hadoop_cluster)
        job = JobSpec("secondary", SecondaryOrderMapper(), CollectOrderReducer(),
                      requires_secondary_keys=True)
        with pytest.raises(UnsupportedFeatureError):
            runner.run(job, self.make_dataset())

    def test_hadoop_profile_runs_ordinary_jobs(self, hadoop_cluster):
        result = run_wordcount(hadoop_cluster)
        assert sorted(result.output.records) == [("a", 3), ("b", 2), ("c", 3)]


class TestBudgets:
    def test_side_data_too_large(self, tight_memory_cluster):
        runner = LocalJobRunner(tight_memory_cluster)
        big_table = {f"key{i}": float(i) for i in range(1000)}
        job = JobSpec("with-side", WordCountMapper(), WordCountReducer(),
                      side_data=big_table)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            runner.run(job, Dataset.from_records(["a b"]))
        assert excinfo.value.required_bytes > excinfo.value.budget_bytes

    def test_materialised_reduce_list_too_large(self, tight_memory_cluster):
        runner = LocalJobRunner(tight_memory_cluster)
        documents = [" ".join(["hot"] * 40) for _ in range(20)]
        job = JobSpec("materialise", WordCountMapper(), MaterialisingReducer())
        with pytest.raises(MemoryBudgetExceeded):
            runner.run(job, Dataset.from_records(documents))

    def test_streaming_reducer_tolerates_long_lists(self, tight_memory_cluster):
        runner = LocalJobRunner(tight_memory_cluster)
        documents = [" ".join(["hot"] * 10) for _ in range(20)]
        job = JobSpec("stream", WordCountMapper(), WordCountReducer())
        result = runner.run(job, Dataset.from_records(documents))
        assert list(result.output.records) == [("hot", 200)]

    def test_budgets_can_be_disabled(self, tight_memory_cluster):
        runner = LocalJobRunner(tight_memory_cluster, enforce_budgets=False)
        big_table = {f"key{i}": float(i) for i in range(1000)}
        job = JobSpec("with-side", WordCountMapper(), WordCountReducer(),
                      side_data=big_table)
        result = runner.run(job, Dataset.from_records(["a b"]))
        assert result.output.records

    def test_disk_budget(self):
        cluster = Cluster(num_machines=1, memory_per_machine=10 ** 9,
                          disk_per_machine=200)
        runner = LocalJobRunner(cluster)
        documents = ["word " * 50] * 20
        job = JobSpec("diskhog", WordCountMapper(), WordCountReducer())
        with pytest.raises(DiskBudgetExceeded):
            runner.run(job, Dataset.from_records(documents))

    def test_scheduler_timeout(self, test_cluster):
        slow = CostParameters(job_overhead_seconds=30.0, machine_throughput=1.0,
                              network_bandwidth=1.0, side_data_load_rate=1.0)
        cluster = test_cluster.with_scheduler_limit(10.0)
        runner = LocalJobRunner(cluster, cost_parameters=slow)
        job = JobSpec("slow", WordCountMapper(), WordCountReducer())
        with pytest.raises(JobTimeoutError) as excinfo:
            runner.run(job, Dataset.from_records(["a b c"]))
        assert excinfo.value.simulated_seconds > excinfo.value.limit_seconds

    def test_explicit_side_data_bytes_override(self, tight_memory_cluster):
        runner = LocalJobRunner(tight_memory_cluster)
        job = JobSpec("declared", WordCountMapper(), WordCountReducer(),
                      side_data={"tiny": 1}, side_data_bytes=10 ** 9)
        with pytest.raises(MemoryBudgetExceeded):
            runner.run(job, Dataset.from_records(["a"]))


class TestJobSpecValidation:
    def test_requires_name(self):
        with pytest.raises(JobConfigurationError):
            JobSpec("", WordCountMapper())

    def test_mapper_type_checked(self):
        with pytest.raises(JobConfigurationError):
            JobSpec("bad", mapper=object())  # type: ignore[arg-type]

    def test_reducer_type_checked(self):
        with pytest.raises(JobConfigurationError):
            JobSpec("bad", WordCountMapper(), reducer=object())  # type: ignore[arg-type]

    def test_combiner_type_checked(self):
        with pytest.raises(JobConfigurationError):
            JobSpec("bad", WordCountMapper(), WordCountReducer(),
                    combiner=object())  # type: ignore[arg-type]

    def test_num_reducers_positive(self):
        with pytest.raises(JobConfigurationError):
            JobSpec("bad", WordCountMapper(), num_reducers=0)

    def test_normalise_emit_accepts_pairs_and_triples(self):
        assert normalise_emit(("k", "v")) == KeyValue("k", "v")
        assert normalise_emit(("k", "v", 2)) == KeyValue("k", "v", 2)
        assert normalise_emit(KeyValue("k", "v")) == KeyValue("k", "v")

    def test_normalise_emit_rejects_garbage(self):
        with pytest.raises(JobConfigurationError):
            normalise_emit("just-a-string")


class CleanupMapper(Mapper):
    def __init__(self):
        self.seen = 0

    def map(self, record, context):
        self.seen += 1
        return iter(())

    def cleanup(self, context):
        yield ("total", self.seen)


class TestLifecycleHooks:
    def test_mapper_cleanup_emissions_are_collected(self, test_cluster):
        runner = LocalJobRunner(test_cluster)
        job = JobSpec("cleanup", CleanupMapper(), WordCountReducer())
        result = runner.run(job, Dataset.from_records(["x", "y", "z"]))
        assert list(result.output.records) == [("total", 3)]

    def test_combiner_cannot_change_keys(self, test_cluster):
        class RenamingCombiner(Combiner):
            def combine(self, key, values, context):
                yield sum(values)

        result = run_wordcount(test_cluster, combiner=RenamingCombiner())
        assert sorted(result.output.records) == [("a", 3), ("b", 2), ("c", 3)]

    def test_task_context_increment(self):
        from repro.mapreduce.counters import Counters

        counters = Counters()
        context = TaskContext(counters)
        context.increment("x", 5)
        context.increment("x")
        assert counters["x"] == 6


class TestPipelineResult:
    """Satellite coverage: stats_for lookup and counters merging."""

    @staticmethod
    def _stats(name, counters, seconds=1.0):
        from repro.mapreduce.types import JobStats

        stats = JobStats(job_name=name, simulated_seconds=seconds)
        stats.merge_counters(counters)
        return stats

    def _pipeline(self):
        from repro.mapreduce.runner import PipelineResult

        return PipelineResult(
            name="demo",
            output=Dataset.from_records([]),
            job_stats=[
                self._stats("first", {"shared": 2, "first_only": 1}, 10.0),
                self._stats("second", {"shared": 3, "second_only": 7}, 5.0),
            ])

    def test_stats_for_returns_named_job(self):
        pipeline = self._pipeline()
        assert pipeline.stats_for("first").simulated_seconds == 10.0
        assert pipeline.stats_for("second").counters["second_only"] == 7

    def test_stats_for_unknown_job_raises(self):
        with pytest.raises(KeyError, match="no job named 'third'"):
            self._pipeline().stats_for("third")

    def test_stats_for_unknown_job_lists_available_jobs(self):
        with pytest.raises(KeyError, match="available jobs: 'first', 'second'"):
            self._pipeline().stats_for("third")

    def test_stats_for_empty_pipeline_message(self):
        from repro.mapreduce.runner import PipelineResult

        pipeline = PipelineResult(name="empty", output=Dataset.from_records([]))
        with pytest.raises(KeyError, match=r"available jobs: \(none\)"):
            pipeline.stats_for("anything")

    def test_counters_sum_across_jobs(self):
        merged = self._pipeline().counters()
        assert merged == {"shared": 5, "first_only": 1, "second_only": 7}

    def test_counters_empty_pipeline(self):
        from repro.mapreduce.runner import PipelineResult

        pipeline = PipelineResult(name="empty", output=Dataset.from_records([]))
        assert pipeline.counters() == {}
        assert pipeline.simulated_seconds == 0.0

    def test_simulated_seconds_sums_jobs(self):
        assert self._pipeline().simulated_seconds == 15.0

    def test_merge_counters_accumulates(self):
        stats = self._stats("job", {"x": 1})
        stats.merge_counters({"x": 2, "y": 3})
        assert stats.counters == {"x": 3, "y": 3}
