"""Tests for the out-of-core and SQL-pushdown backends (``repro.exec``).

Three layers under test:

* the :class:`ExternalGrouper` in isolation — run spilling, k-way merge
  determinism, the memory ceiling and temp-file hygiene;
* :class:`DiskShuffleBackend` / :class:`SqlBackend` against the serial
  backend — bit-identical output, counters and stats for arbitrary jobs
  (the measure/algorithm sweep lives in ``tests/test_backends.py``);
* the surrounding plumbing — the cost model's disk term, the planner's
  EXPLAIN column, spill telemetry in join results, the serving bootstrap
  and the DuckDB capability probe.
"""

from __future__ import annotations

import dataclasses
import os
import sys

import pytest

from repro.core.exceptions import BackendError, MemoryBudgetExceeded
from repro.core.multiset import Multiset
from repro.core.records import PairKey
from repro.engine import JoinSpec, SimilarityEngine
from repro.exec import DiskShuffleBackend, ExternalGrouper, SqlBackend
from repro.mapreduce import Dataset, JobSpec, LocalJobRunner, SerialBackend
from repro.mapreduce.cluster import laptop_cluster
from repro.mapreduce.costmodel import CostModel, CostParameters
from repro.mapreduce.job import Mapper
from repro.mapreduce.phases import spill_record
from repro.mapreduce.types import JobStats, KeyValue
from repro.serving.api import QueryRequest
from repro.serving.bootstrap import bootstrap_from_join
from repro.similarity.registry import get_measure
from repro.vsmart.similarity_phase import Similarity2Reducer
from tests.test_backends import (
    comparable_stats,
    run_join,
    small_corpus,
    strip_telemetry,
)
from tests.test_mapreduce_runner import (
    MaterialisingReducer,
    WordCountMapper,
    WordCountReducer,
)

try:
    import duckdb  # noqa: F401

    HAS_DUCKDB = True
except ImportError:
    HAS_DUCKDB = False


def make_records(count: int, keys: int = 7, partitions: int = 4):
    """Deterministic partitioned records with repeating keys."""
    return [(index % partitions, KeyValue(f"k{index % keys}", index))
            for index in range(count)]


def reference_groups(records):
    """The serial shuffle's grouping of ``records``, as a flat list."""
    spill = {}
    for partition, key_value in records:
        spill_record(spill, partition, key_value)
    return [(partition, key, spill[partition][key])
            for partition in sorted(spill)
            for key in spill[partition]]


class TestExternalGrouper:
    def test_in_memory_fast_path(self):
        records = make_records(50)
        with ExternalGrouper(memory_budget_bytes=1 << 20) as grouper:
            for partition, key_value in records:
                grouper.add(partition, key_value)
            groups = list(grouper.iter_groups())
            assert grouper.telemetry["runs_written"] == 0
            assert grouper.telemetry["bytes_spilled"] == 0
            assert grouper.telemetry["merge_passes"] == 0
            assert grouper.telemetry["spilled_records"] == 0
        assert groups == reference_groups(records)

    def test_spilled_groups_match_in_memory_order(self, tmp_path):
        records = make_records(200, keys=13, partitions=5)
        with ExternalGrouper(memory_budget_bytes=256,
                             temp_dir=str(tmp_path)) as grouper:
            for partition, key_value in records:
                grouper.add(partition, key_value)
            groups = list(grouper.iter_groups())
            telemetry = dict(grouper.telemetry)
        assert groups == reference_groups(records)
        assert telemetry["runs_written"] > 1
        assert telemetry["bytes_spilled"] > 0
        assert telemetry["spilled_records"] > 0
        assert telemetry["merge_passes"] >= 1

    def test_multi_pass_merge_is_deterministic(self, tmp_path):
        records = make_records(300, keys=17, partitions=3)
        with ExternalGrouper(memory_budget_bytes=128, merge_fan_in=2,
                             temp_dir=str(tmp_path)) as grouper:
            for partition, key_value in records:
                grouper.add(partition, key_value)
            groups = list(grouper.iter_groups())
            # Fan-in 2 over many runs forces intermediate merge passes.
            assert grouper.telemetry["merge_passes"] > 1
        assert groups == reference_groups(records)

    def test_memory_ceiling_enforced(self, tmp_path):
        budget = 400
        records = make_records(500)
        with ExternalGrouper(memory_budget_bytes=budget,
                             temp_dir=str(tmp_path)) as grouper:
            for partition, key_value in records:
                grouper.add(partition, key_value)
            # Every record is smaller than the budget, so the buffer may
            # never exceed it: the grouper flushes *before* the add that
            # would cross the line.
            assert grouper.telemetry["peak_buffer_bytes"] <= budget
            list(grouper.iter_groups())

    def test_record_larger_than_budget_still_works(self, tmp_path):
        big = KeyValue("big", "x" * 4096)
        records = [(0, big), (0, KeyValue("small", 1)), (1, big)]
        with ExternalGrouper(memory_budget_bytes=64,
                             temp_dir=str(tmp_path)) as grouper:
            for partition, key_value in records:
                grouper.add(partition, key_value)
            groups = list(grouper.iter_groups())
        assert groups == reference_groups(records)

    def test_close_removes_temp_files(self, tmp_path):
        grouper = ExternalGrouper(memory_budget_bytes=64,
                                  temp_dir=str(tmp_path))
        for partition, key_value in make_records(100):
            grouper.add(partition, key_value)
        assert os.listdir(tmp_path)  # runs exist on disk
        grouper.close()
        assert os.listdir(tmp_path) == []
        grouper.close()  # idempotent

    def test_cleanup_when_consumer_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="consumer failed"):
            with ExternalGrouper(memory_budget_bytes=64,
                                 temp_dir=str(tmp_path)) as grouper:
                for partition, key_value in make_records(100):
                    grouper.add(partition, key_value)
                for _group in grouper.iter_groups():
                    raise RuntimeError("consumer failed")
        assert os.listdir(tmp_path) == []

    def test_add_after_close_raises(self):
        grouper = ExternalGrouper(memory_budget_bytes=64)
        grouper.close()
        with pytest.raises(BackendError, match="closed"):
            grouper.add(0, KeyValue("k", 1))

    def test_invalid_construction(self):
        with pytest.raises(BackendError, match="memory_budget_bytes"):
            ExternalGrouper(memory_budget_bytes=0)
        with pytest.raises(BackendError, match="merge_fan_in"):
            ExternalGrouper(memory_budget_bytes=64, merge_fan_in=1)


def run_wordcount(backend, documents=None, combiner=None, cluster=None):
    runner = LocalJobRunner(cluster or laptop_cluster(), backend=backend)
    documents = documents or [f"w{i % 7} w{i % 3} w{i % 5}" for i in range(40)]
    job = JobSpec("wordcount", WordCountMapper(), WordCountReducer(), combiner)
    return runner.run(job, Dataset.from_records(documents))


def assert_stats_match(base, other):
    assert comparable_stats(base.stats) == comparable_stats(other.stats)


class TestDiskShuffleBackend:
    def test_wordcount_parity(self):
        base = run_wordcount(SerialBackend())
        result = run_wordcount(DiskShuffleBackend(memory_budget_bytes=256))
        assert list(result.output.records) == list(base.output.records)
        assert_stats_match(base, result)

    def test_join_larger_than_memory_budget_completes(self):
        """The ISSUE's acceptance check: shuffle volume >> spill budget."""
        budget = 4096
        corpus = small_corpus(count=30, stride=6)
        backend = DiskShuffleBackend(memory_budget_bytes=budget,
                                     merge_fan_in=2)
        base = run_join(SerialBackend(), corpus)
        result = run_join(backend, corpus)
        shuffled = sum(result.pipeline.stats_for(name).shuffle_bytes
                       for name in
                       (stats.job_name for stats in result.pipeline.job_stats))
        spilled = result.counters()["shuffle/bytes_spilled"]
        assert shuffled > budget  # the join genuinely exceeded the budget
        assert spilled > 0  # and really went out of core
        for stats in result.pipeline.job_stats:
            # The ceiling held in every job (the pipeline-level counter is
            # a sum over jobs, so check the per-job peaks).
            peak = stats.counters.get("shuffle/peak_buffer_bytes", 0)
            assert peak <= budget, stats.job_name
        assert result.pairs == base.pairs
        assert strip_telemetry(result.counters()) == strip_telemetry(base.counters())

    def test_map_only_job_parity(self):
        documents = ["a b", "c d e"]
        job = JobSpec("tokens", WordCountMapper())
        base = LocalJobRunner(laptop_cluster()).run(
            job, Dataset.from_records(documents))
        result = LocalJobRunner(
            laptop_cluster(),
            backend=DiskShuffleBackend(memory_budget_bytes=64)).run(
            job, Dataset.from_records(documents))
        assert list(result.output.records) == list(base.output.records)
        assert_stats_match(base, result)

    def test_empty_dataset_parity(self):
        base = run_wordcount(SerialBackend(), documents=[])
        result = run_wordcount(DiskShuffleBackend(), documents=[])
        assert list(result.output.records) == list(base.output.records)
        assert_stats_match(base, result)

    def test_memory_budget_error_matches_serial(self):
        cluster = laptop_cluster().with_memory(400)
        documents = [" ".join(["hot"] * 40) for _ in range(20)]
        job = JobSpec("materialise", WordCountMapper(), MaterialisingReducer())

        def run_with(backend):
            runner = LocalJobRunner(cluster, backend=backend)
            with pytest.raises(MemoryBudgetExceeded) as excinfo:
                runner.run(job, Dataset.from_records(documents))
            return excinfo.value

        base = run_with(SerialBackend())
        other = run_with(DiskShuffleBackend(memory_budget_bytes=128))
        assert str(other) == str(base)
        assert other.required_bytes == base.required_bytes

    def test_temp_files_removed_after_error(self, tmp_path):
        cluster = laptop_cluster().with_memory(400)
        backend = DiskShuffleBackend(memory_budget_bytes=128,
                                     temp_dir=str(tmp_path))
        runner = LocalJobRunner(cluster, backend=backend)
        documents = [" ".join(["hot"] * 40) for _ in range(20)]
        job = JobSpec("materialise", WordCountMapper(), MaterialisingReducer())
        with pytest.raises(MemoryBudgetExceeded):
            runner.run(job, Dataset.from_records(documents))
        assert os.listdir(tmp_path) == []

    def test_invalid_options_raise(self):
        with pytest.raises(BackendError, match="memory_budget_bytes"):
            DiskShuffleBackend(memory_budget_bytes=0)
        with pytest.raises(BackendError, match="merge_fan_in"):
            DiskShuffleBackend(merge_fan_in=1)

    def test_spill_telemetry_surfaces_in_join_results(self):
        backend = DiskShuffleBackend(memory_budget_bytes=2048)
        result = run_join(backend, small_corpus())
        counters = result.counters()
        assert counters["shuffle/bytes_spilled"] > 0
        assert counters["shuffle/runs_written"] > 0
        # Per-job attribution flows through stats_for as well.
        per_job = [result.pipeline.stats_for(stats.job_name).counters
                   for stats in result.pipeline.job_stats]
        assert any("shuffle/bytes_spilled" in counters for counters in per_job)


class _EchoPairs(Mapper):
    """Pass prebuilt ``(pair_key, conj)`` records straight to the shuffle."""

    def map(self, record, context):
        yield record


class TestSqlBackend:
    def test_engine_validation(self):
        with pytest.raises(BackendError, match="sqlite.*duckdb"):
            SqlBackend(engine="postgres")

    def test_missing_duckdb_raises_backend_error(self, monkeypatch):
        # Forcing the import to fail makes the probe deterministic even
        # where duckdb is installed.
        monkeypatch.setitem(sys.modules, "duckdb", None)
        with pytest.raises(BackendError, match=r"repro\[duckdb\]"):
            SqlBackend(engine="duckdb")

    def test_pushdown_actually_fires(self):
        result = run_join(SqlBackend(), small_corpus())
        assert result.counters().get("sql/pushdown_jobs", 0) > 0

    def test_unknown_jobs_use_generic_path(self):
        base = run_wordcount(SerialBackend())
        result = run_wordcount(SqlBackend())
        assert list(result.output.records) == list(base.output.records)
        assert dataclasses.asdict(result.stats) == dataclasses.asdict(base.stats)

    def test_non_integral_partials_fall_back_exactly(self):
        measure = get_measure("ruzicka")
        key = PairKey.make("a", (3.0,), "b", (2.0,))
        records = [(key, (0.5,)), (key, (0.25,))]
        job = JobSpec("sim2", _EchoPairs(), Similarity2Reducer(measure, 0.1))

        def run_with(backend):
            runner = LocalJobRunner(laptop_cluster(), backend=backend)
            return runner.run(job, Dataset.from_records(records))

        base = run_with(SerialBackend())
        result = run_with(SqlBackend())
        assert list(result.output.records) == list(base.output.records)
        assert result.stats.counters.get("sql/fallback_jobs") == 1
        assert_stats_match(base, result)

    def test_file_backed_scratch_database(self, tmp_path):
        backend = SqlBackend(database=str(tmp_path / "scratch.db"))
        base = run_join(SerialBackend(), small_corpus())
        result = run_join(backend, small_corpus())
        assert result.pairs == base.pairs
        assert strip_telemetry(result.counters()) == strip_telemetry(base.counters())

    @pytest.mark.skipif(not HAS_DUCKDB, reason="duckdb is not installed "
                        "(pip install 'repro[duckdb]')")
    def test_duckdb_engine_parity(self):
        backend = SqlBackend(engine="duckdb")
        base = run_join(SerialBackend(), small_corpus())
        result = run_join(backend, small_corpus())
        assert result.pairs == base.pairs
        assert strip_telemetry(result.counters()) == strip_telemetry(base.counters())
        assert result.counters().get("sql/pushdown_jobs", 0) > 0


class TestCostModelDiskTerm:
    def spilled_stats(self):
        stats = JobStats(job_name="spilly", num_machines=4)
        stats.shuffle_bytes = 1_000_000
        stats.spilled_bytes = 1_000_000
        return stats

    def test_disabled_by_default(self):
        cost = CostModel().job_cost(self.spilled_stats(), laptop_cluster())
        assert cost.disk_seconds == 0.0

    def test_charges_write_plus_read(self):
        parameters = CostParameters(disk_bandwidth=2.0e6)
        cluster = laptop_cluster()
        stats = self.spilled_stats()
        cost = CostModel(parameters).job_cost(stats, cluster)
        expected = 2 * stats.spilled_bytes / (2.0e6 * cluster.num_machines)
        assert cost.disk_seconds == expected
        assert cost.total_seconds == pytest.approx(
            cost.overhead_seconds + cost.side_data_seconds + cost.map_seconds
            + cost.shuffle_seconds + cost.reduce_seconds + cost.disk_seconds)

    def test_validation(self):
        with pytest.raises(ValueError, match="disk_bandwidth"):
            CostParameters(disk_bandwidth=0.0)

    def test_simulated_seconds_agree_across_backends(self):
        """The disk term charges all backends alike: parity survives it."""
        parameters = CostParameters(disk_bandwidth=1.0e6)
        corpus = small_corpus()

        def simulate(backend):
            engine = SimilarityEngine(corpus, cost_parameters=parameters)
            spec = JoinSpec(measure="ruzicka", threshold=0.3,
                            algorithm="online_aggregation", backend=backend)
            return engine.run(spec).simulated_seconds

        base = simulate("serial")
        assert base > 0
        assert simulate("disk") == base
        assert simulate("sql") == base

    def test_explain_shows_disk_column_when_charged(self):
        corpus = small_corpus()
        spec = JoinSpec(measure="ruzicka", threshold=0.3, algorithm="auto")
        without = SimilarityEngine(corpus).plan(spec).explain()
        assert "disk" not in without
        with_disk = SimilarityEngine(
            corpus,
            cost_parameters=CostParameters(disk_bandwidth=1.0e6),
        ).plan(spec).explain()
        assert "disk" in with_disk


class TestEngineIntegration:
    @pytest.mark.parametrize("backend", ["disk", "sql"])
    def test_join_spec_backend_names_resolve(self, backend):
        corpus = small_corpus()
        engine = SimilarityEngine(corpus)
        spec = JoinSpec(measure="ruzicka", threshold=0.3,
                        algorithm="online_aggregation", backend=backend)
        result = engine.run(spec)
        base = SimilarityEngine(corpus).run(
            dataclasses.replace(spec, backend="serial"))
        assert result.pairs == base.pairs

    @pytest.mark.parametrize("backend", ["disk", "sql"])
    def test_bootstrap_from_join_accepts_exec_backends(self, backend):
        corpus = [Multiset("a", {"x": 2, "y": 1}),
                  Multiset("b", {"x": 1, "y": 1}),
                  Multiset("c", {"z": 3})]
        service = bootstrap_from_join(corpus, run_join=True, measure="ruzicka",
                                      threshold=0.2, backend=backend)
        reference = bootstrap_from_join(corpus, run_join=True,
                                        measure="ruzicka", threshold=0.2,
                                        backend="serial")
        request = QueryRequest.threshold(corpus[0], 0.2)
        assert service.query(request).matches == reference.query(request).matches
