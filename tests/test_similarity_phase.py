"""Tests for the shared V-SMART-Join similarity phase."""

from __future__ import annotations

import pytest

from repro.core.records import JoinedTuple, PairContribution, PairKey
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.runner import LocalJobRunner
from repro.similarity.exact import all_pairs_exact, pair_dictionary
from repro.similarity.registry import get_measure
from repro.vsmart.similarity_phase import (
    ChunkPairRecord,
    Similarity1Reducer,
    SimilarityPhaseConfig,
    build_similarity1_job,
    build_similarity2_job,
)


def joined_tuples_for(multisets, measure):
    """Join Uni(Mi) to every element in memory (the joining phase's output)."""
    records = []
    for multiset in multisets:
        uni = measure.unilateral(multiset)
        for element, multiplicity in multiset.items():
            records.append(JoinedTuple(multiset.id, uni, element, multiplicity))
    return records


def run_similarity_phase(multisets, measure_name, threshold, cluster,
                         config=None):
    measure = get_measure(measure_name)
    runner = LocalJobRunner(cluster)
    joined = Dataset.from_records(joined_tuples_for(multisets, measure))
    sim1 = runner.run(build_similarity1_job(config), joined)
    sim2 = runner.run(build_similarity2_job(measure, threshold, config), sim1.output)
    return sorted(sim2.output.records), sim1, sim2


class TestSimilarityPhaseEndToEnd:
    @pytest.mark.parametrize("measure_name", ["ruzicka", "jaccard", "dice", "cosine",
                                              "vector_cosine"])
    def test_matches_exact_join(self, small_multisets, test_cluster, measure_name):
        threshold = 0.3
        pairs, _sim1, _sim2 = run_similarity_phase(
            small_multisets, measure_name, threshold, test_cluster)
        expected = pair_dictionary(all_pairs_exact(small_multisets, measure_name, threshold))
        produced = pair_dictionary(pairs)
        assert set(produced) == set(expected)
        for key, value in produced.items():
            assert value == pytest.approx(expected[key])

    def test_threshold_filters_pairs(self, overlapping_multisets, test_cluster):
        low, _, _ = run_similarity_phase(overlapping_multisets, "ruzicka", 0.1,
                                         test_cluster)
        high, _, _ = run_similarity_phase(overlapping_multisets, "ruzicka", 0.95,
                                          test_cluster)
        assert {p.pair for p in high} <= {p.pair for p in low}

    def test_counters_exposed(self, overlapping_multisets, test_cluster):
        _pairs, sim1, sim2 = run_similarity_phase(
            overlapping_multisets, "ruzicka", 0.5, test_cluster)
        assert sim1.stats.counters["similarity1/elements"] > 0
        assert sim2.stats.counters["similarity2/pairs_evaluated"] > 0

    def test_combiners_do_not_change_results(self, small_multisets, test_cluster):
        with_combiner, _, _ = run_similarity_phase(
            small_multisets, "ruzicka", 0.3, test_cluster,
            SimilarityPhaseConfig(use_combiners=True))
        without_combiner, _, _ = run_similarity_phase(
            small_multisets, "ruzicka", 0.3, test_cluster,
            SimilarityPhaseConfig(use_combiners=False))
        assert pair_dictionary(with_combiner).keys() == pair_dictionary(without_combiner).keys()
        for key in pair_dictionary(with_combiner):
            assert pair_dictionary(with_combiner)[key] == pytest.approx(
                pair_dictionary(without_combiner)[key])


class TestChunking:
    def test_chunked_reducer_produces_same_pairs(self, small_multisets, test_cluster):
        plain, _, _ = run_similarity_phase(small_multisets, "ruzicka", 0.3, test_cluster)
        chunked, sim1, _ = run_similarity_phase(
            small_multisets, "ruzicka", 0.3, test_cluster,
            SimilarityPhaseConfig(chunk_size=3))
        assert pair_dictionary(plain) == pair_dictionary(chunked)
        assert sim1.stats.counters.get("similarity1/chunked_elements", 0) > 0

    def test_chunked_reducer_is_streaming(self):
        reducer = Similarity1Reducer(SimilarityPhaseConfig(chunk_size=4))
        assert reducer.materializes_input is False
        plain = Similarity1Reducer()
        assert plain.materializes_input is True

    def test_chunk_pair_counts(self):
        from repro.core.records import PostingEntry
        from repro.mapreduce.counters import Counters
        from repro.mapreduce.job import TaskContext

        reducer = Similarity1Reducer(SimilarityPhaseConfig(chunk_size=2))
        postings = [PostingEntry(f"m{i}", (1.0,), 1.0) for i in range(5)]
        context = TaskContext(Counters())
        records = list(reducer.reduce("element", postings, context))
        assert all(isinstance(record, ChunkPairRecord) for record in records)
        # 3 chunks (2, 2, 1) -> 3 diagonal + 3 cross pairs = 6 chunk pairs.
        assert len(records) == 6
        assert sum(1 for record in records if record.same_chunk) == 3

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            SimilarityPhaseConfig(chunk_size=1)


class TestStopWordsInReducer:
    def test_stop_word_limit_drops_frequent_elements(self, test_cluster):
        from repro.core.multiset import Multiset

        multisets = [Multiset(f"m{i}", {"popular": 1, f"rare{i}": 1}) for i in range(6)]
        with_limit, sim1, _ = run_similarity_phase(
            multisets, "jaccard", 0.1, test_cluster,
            SimilarityPhaseConfig(stop_word_frequency=3))
        without_limit, _, _ = run_similarity_phase(
            multisets, "jaccard", 0.1, test_cluster)
        assert len(with_limit) < len(without_limit)
        assert sim1.stats.counters["similarity1/stop_words_dropped"] == 1

    def test_invalid_stop_word_threshold(self):
        with pytest.raises(ValueError):
            SimilarityPhaseConfig(stop_word_frequency=0)


class TestPairRecords:
    def test_pair_key_contribution_alignment(self):
        from repro.core.records import PostingEntry
        from repro.vsmart.similarity_phase import _pair_record

        posting_z = PostingEntry("zeta", (9.0,), 5.0)
        posting_a = PostingEntry("alpha", (4.0,), 2.0)
        key, contribution = _pair_record(posting_z, posting_a)
        assert key == PairKey("alpha", "zeta", (4.0,), (9.0,))
        assert contribution == PairContribution(2.0, 5.0)

    def test_duplicate_multiset_in_posting_list_not_paired_with_itself(self, test_cluster):
        from repro.core.multiset import Multiset

        multisets = [Multiset("only", {"x": 2})]
        pairs, _, _ = run_similarity_phase(multisets, "ruzicka", 0.1, test_cluster)
        assert pairs == []
