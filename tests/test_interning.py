"""Tests for the interning layer, the array kernels and candidate pruning.

The contract under test mirrors the backend contract: interning, packed
pair keys and upper-bound pruning change *how* the hot paths represent and
skip work, never *what* they compute — pair sets and similarity values must
be identical to the uninterned, unpruned reference on every measure and
every backend.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.interning import (
    ElementDictionary,
    InterningContext,
    InterningError,
    LocalInterner,
    PairCodec,
    intern_corpus,
    sort_mixed,
)
from repro.core.multiset import Multiset
from repro.core.records import (
    InputTuple,
    JoinedTuple,
    PairContribution,
    PairKey,
    PostingEntry,
    SimilarPair,
    explode_multisets,
)
from repro.mapreduce.cluster import laptop_cluster
from repro.similarity.exact import all_pairs_exact
from repro.similarity.kernels import (
    CONJ_GENERIC,
    NUMPY_THRESHOLD,
    interned_conjunctive,
    interned_similarity,
    interned_unilateral,
    scalar_conj_functions,
)
from repro.similarity.partials import fold_uni_multiplicities
from repro.similarity.registry import get_measure, supported_measures
from repro.engine.engine import join
from repro.vsmart.driver import JOINING_ALGORITHMS, VSmartJoin, VSmartJoinConfig
from tests.conftest import make_random_multisets


class TestElementDictionary:
    def test_document_frequency_order(self):
        multisets = [Multiset("a", {"rare": 1, "common": 1}),
                     Multiset("b", {"common": 2}),
                     Multiset("c", {"common": 1, "mid": 1}),
                     Multiset("d", {"mid": 3})]
        dictionary = ElementDictionary.from_multisets(multisets)
        # rare (df 1) < mid (df 2) < common (df 3)
        assert dictionary.id_of("rare") < dictionary.id_of("mid")
        assert dictionary.id_of("mid") < dictionary.id_of("common")
        assert dictionary.frequency_of("common") == 3
        assert dictionary.element_of(dictionary.id_of("rare")) == "rare"

    def test_tie_break_is_deterministic(self):
        frequencies = {"b": 2, "a": 2, "c": 2}
        first = ElementDictionary.from_document_frequencies(frequencies)
        second = ElementDictionary.from_document_frequencies(
            dict(reversed(list(frequencies.items()))))
        assert list(first) == list(second) == ["a", "b", "c"]

    def test_from_input_tuples_counts_incidences_once(self):
        records = [InputTuple("m1", "x", 1), InputTuple("m1", "x", 2),
                   InputTuple("m2", "x", 1), InputTuple("m1", "y", 1)]
        dictionary = ElementDictionary.from_input_tuples(records)
        assert dictionary.frequency_of("x") == 2
        assert dictionary.frequency_of("y") == 1

    def test_unknown_element_raises(self):
        dictionary = ElementDictionary.from_document_frequencies({"x": 1})
        with pytest.raises(InterningError):
            dictionary.id_of("missing")
        with pytest.raises(InterningError):
            dictionary.element_of(99)
        assert dictionary.get("missing") is None

    def test_intern_multiset_with_unknown_element_raises_interning_error(self):
        dictionary = ElementDictionary.from_document_frequencies({"x": 1})
        with pytest.raises(InterningError, match="never-seen"):
            dictionary.intern_multiset(Multiset("q", {"x": 1, "never-seen": 2}))

    def test_intern_multiset_is_sorted_and_parallel(self):
        dictionary = ElementDictionary.from_document_frequencies(
            {"x": 3, "y": 1, "z": 2})
        interned = dictionary.intern_multiset(Multiset("m", {"x": 4, "y": 1, "z": 2}))
        assert list(interned.element_ids) == sorted(interned.element_ids)
        restored = {dictionary.element_of(element_id): multiplicity
                    for element_id, multiplicity in interned.items()}
        assert restored == {"x": 4.0, "y": 1.0, "z": 2.0}
        assert interned.cardinality == 7.0
        assert interned.underlying_cardinality == 3

    def test_sort_mixed_handles_incomparable_ids(self):
        mixed = sort_mixed({1, "a", (2, 3)})
        assert sort_mixed(reversed(mixed)) == mixed


class TestLocalInterner:
    def test_first_appearance_ids(self):
        interner = LocalInterner()
        assert interner.intern("x") == 0
        assert interner.intern("y") == 1
        assert interner.intern("x") == 0
        assert interner.get("z") is None
        assert len(interner) == 2

    def test_intern_multiset_consistent_between_members(self):
        interner = LocalInterner()
        first = interner.intern_multiset(Multiset("a", {"x": 1, "y": 2}))
        second = interner.intern_multiset(Multiset("b", {"y": 1, "z": 3}))
        shared = set(first.element_ids) & set(second.element_ids)
        assert len(shared) == 1  # exactly the id of "y"


class TestPairCodec:
    @pytest.mark.parametrize("num_ids", [1, 2, 3, 1000, 1 << 20])
    def test_roundtrip(self, num_ids):
        codec = PairCodec(num_ids)
        for first, second in [(0, num_ids - 1), (num_ids - 1, 0),
                              (num_ids // 2, num_ids // 3)]:
            assert codec.unpack(codec.pack(first, second)) == (first, second)

    def test_packed_keys_are_distinct(self):
        codec = PairCodec(50)
        packed = {codec.pack(i, j) for i in range(50) for j in range(50)}
        assert len(packed) == 2500

    def test_empty_corpus(self):
        codec = PairCodec(0)
        assert codec.unpack(codec.pack(0, 0)) == (0, 0)


class TestInterningContext:
    def test_roundtrip_records_and_pairs(self, overlapping_multisets):
        records = explode_multisets(overlapping_multisets)
        context = InterningContext.from_input_tuples(records)
        interned = context.intern_records(records)
        assert len(interned) == len(records)
        assert all(isinstance(record.multiset_id, int)
                   and isinstance(record.element, int) for record in interned)
        # Dense ids ascend in canonical order of the original identifiers.
        assert list(context.multiset_ids) == sorted(context.multiset_ids)
        pairs = [SimilarPair(0, 1, 1.0)]
        (restored,) = context.restore_pairs(pairs)
        assert restored == SimilarPair("a", "b", 1.0)

    def test_duplicate_multiplicities_preserved(self):
        records = [InputTuple("m", "x", 2), InputTuple("m", "x", 3)]
        context = InterningContext.from_input_tuples(records)
        interned = context.intern_records(records)
        assert [record.multiplicity for record in interned] == [2, 3]


class TestKernelsMatchReference:
    """Every kernel reproduces the measure's own dict-based path exactly."""

    def corpus(self, seed=3):
        return make_random_multisets(14, alphabet_size=20, max_elements=12,
                                     seed=seed)

    @pytest.mark.parametrize("measure_name", supported_measures())
    def test_conjunctive_and_unilateral(self, measure_name):
        measure = get_measure(measure_name)
        multisets = self.corpus()
        _dictionary, interned = intern_corpus(multisets)
        for original, entity in zip(multisets, interned):
            assert interned_unilateral(measure, entity) == measure.unilateral(original)
        for i in range(len(multisets)):
            for j in range(i + 1, len(multisets)):
                assert (interned_conjunctive(measure, interned[i], interned[j])
                        == measure.conjunctive(multisets[i], multisets[j]))
                assert (interned_similarity(measure, interned[i], interned[j])
                        == measure.similarity(multisets[i], multisets[j]))

    @pytest.mark.parametrize("measure_name", ["ruzicka", "jaccard", "vector_cosine"])
    def test_numpy_path_agrees_with_merge_scan(self, measure_name):
        measure = get_measure(measure_name)
        # Big enough that len(i) + len(j) >= NUMPY_THRESHOLD takes the
        # vectorised branch (when numpy is importable).
        size = NUMPY_THRESHOLD
        first = Multiset("big1", {f"e{k}": k % 5 + 1 for k in range(size)})
        second = Multiset("big2", {f"e{k}": k % 3 + 1 for k in range(size // 2, 2 * size)})
        _dictionary, (entity_i, entity_j) = intern_corpus([first, second])
        assert (interned_conjunctive(measure, entity_i, entity_j)
                == measure.conjunctive(first, second))

    def test_generic_fallback_for_undeclared_measures(self):
        measure = get_measure("ruzicka")

        class Undeclared(type(measure)):
            name = "undeclared_test_measure"
            conj_kernel = CONJ_GENERIC
            uni_kernel = "generic"

        undeclared = Undeclared()
        multisets = self.corpus(seed=5)
        _dictionary, interned = intern_corpus(multisets)
        for i in range(0, len(multisets) - 1, 2):
            assert (interned_conjunctive(undeclared, interned[i], interned[i + 1])
                    == undeclared.conjunctive(multisets[i], multisets[i + 1]))

    def test_scalar_conj_functions(self):
        seed, accumulate = scalar_conj_functions(get_measure("ruzicka"))
        assert accumulate(seed(2.0, 3.0), 5.0, 1.0) == 3.0
        seed, accumulate = scalar_conj_functions(get_measure("vector_cosine"))
        assert accumulate(seed(2.0, 3.0), 5.0, 2.0) == 16.0
        assert scalar_conj_functions(object()) is None

    def test_fold_uni_multiplicities(self):
        for name in supported_measures():
            measure = get_measure(name)
            multiplicities = [1.0, 4.0, 2.0, 3.0]
            expected = measure.unilateral(
                ("x%d" % i, m) for i, m in enumerate(multiplicities))
            assert fold_uni_multiplicities(measure, multiplicities) == expected

    def test_all_pairs_exact_intern_flag(self):
        multisets = self.corpus(seed=9)
        for name in supported_measures() + ["direct_ruzicka"]:
            assert (all_pairs_exact(multisets, name, 0.25, intern=True)
                    == all_pairs_exact(multisets, name, 0.25))


class TestSlottedRecords:
    """Satellite: the hot record dataclasses are slotted yet still pickle."""

    RECORDS = [
        InputTuple("m1", "x", 2.0),
        JoinedTuple("m1", (3.0,), "x", 2.0),
        PostingEntry("m1", (3.0,), 2.0),
        PairKey("a", "b", (1.0,), (2.0,)),
        PairContribution(1.0, 2.0),
        SimilarPair("a", "b", 0.75),
    ]

    @pytest.mark.parametrize("record", RECORDS, ids=lambda r: type(r).__name__)
    def test_no_instance_dict(self, record):
        assert not hasattr(record, "__dict__")
        with pytest.raises(AttributeError):
            object.__setattr__(record, "not_a_field", 1)

    @pytest.mark.parametrize("record", RECORDS, ids=lambda r: type(r).__name__)
    def test_pickle_roundtrip(self, record):
        for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(record, protocol))
            assert clone == record
            assert hash(clone) == hash(record)


class TestPipelineEquivalence:
    """Interned + pruned pipelines emit exactly the reference pair set."""

    def run_pairs(self, multisets, *, intern, prune, algorithm="online_aggregation",
                  threshold=0.5, backend="serial", measure="ruzicka"):
        config = VSmartJoinConfig(algorithm=algorithm, measure=measure,
                                  threshold=threshold, sharding_threshold=4,
                                  intern=intern, prune_candidates=prune)
        join = VSmartJoin(config, cluster=laptop_cluster(num_machines=3),
                          backend=backend)
        with join:
            return join.run(multisets)

    @pytest.mark.parametrize("algorithm", JOINING_ALGORITHMS)
    def test_intern_and_prune_bit_identical_pairs(self, small_multisets, algorithm):
        reference = self.run_pairs(small_multisets, intern=False, prune=False,
                                   algorithm=algorithm, threshold=0.3)
        for intern in (False, True):
            for prune in (False, True):
                result = self.run_pairs(small_multisets, intern=intern,
                                        prune=prune, algorithm=algorithm,
                                        threshold=0.3)
                assert result.pairs == reference.pairs, (intern, prune)

    def test_pruning_drops_candidates_at_high_threshold(self, small_multisets):
        unpruned = self.run_pairs(small_multisets, intern=True, prune=False,
                                  threshold=0.7)
        pruned = self.run_pairs(small_multisets, intern=True, prune=True,
                                threshold=0.7)
        assert pruned.pairs == unpruned.pairs
        assert (pruned.counters()["similarity1/candidate_records"]
                < unpruned.counters()["similarity1/candidate_records"])
        assert pruned.counters()["similarity1/candidates_pruned"] > 0

    def test_chunked_pipeline_prunes_identically(self, small_multisets):
        plain = self.run_pairs(small_multisets, intern=True, prune=True,
                               threshold=0.6)
        config = VSmartJoinConfig(threshold=0.6, chunk_size=3, intern=True,
                                  prune_candidates=True)
        chunked = VSmartJoin(config, cluster=laptop_cluster(num_machines=3)).run(
            small_multisets)
        assert chunked.pairs == plain.pairs
        assert chunked.counters().get("similarity1/chunked_elements", 0) > 0

    def test_mixed_identifier_types_survive_interning(self):
        multisets = [Multiset(1, {"x": 2, "y": 1}),
                     Multiset("one", {"x": 2, "y": 1}),
                     Multiset((2, "t"), {"x": 1, "z": 3})]
        result = self.run_pairs(multisets, intern=True, prune=True, threshold=0.4)
        expected = all_pairs_exact(multisets, "ruzicka", 0.4)
        assert {p.pair for p in result.pairs} == {p.pair for p in expected}

    def test_vcl_interned_kernel_matches(self, small_multisets):
        interned = join(small_multisets, threshold=0.3, algorithm="vcl",
                        intern=True).pairs
        reference = join(small_multisets, threshold=0.3, algorithm="vcl",
                         intern=False).pairs
        assert interned == reference

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           measure=st.sampled_from(supported_measures()),
           algorithm=st.sampled_from(JOINING_ALGORITHMS),
           backend=st.sampled_from(["serial", "thread", "process"]),
           threshold=st.sampled_from([0.25, 0.5, 0.75]))
    def test_property_interned_pruned_pipeline_matches_exact(
            self, seed, measure, algorithm, backend, threshold):
        multisets = make_random_multisets(9, alphabet_size=12, max_elements=6,
                                          seed=seed)
        expected = all_pairs_exact(multisets, measure, threshold)
        result = self.run_pairs(multisets, intern=True, prune=True,
                                algorithm=algorithm, backend=backend,
                                threshold=threshold, measure=measure)
        assert {p.pair for p in result.pairs} == {p.pair for p in expected}
        produced = {p.pair: p.similarity for p in result.pairs}
        for pair in expected:
            assert produced[pair.pair] == pytest.approx(pair.similarity)
