"""Tests for the online similarity-serving subsystem (repro.serving)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DatasetError, ServingError
from repro.core.multiset import Multiset
from repro.core.records import InputTuple, canonical_pair, explode_multisets
from repro.datasets.workload import (
    QueryWorkloadConfig,
    generate_query_workload,
    workload_statistics,
)
from repro.mapreduce.cluster import laptop_cluster
from repro.mapreduce.dfs import Dataset
from repro.serving.api import QueryRequest
from repro.serving.bootstrap import bootstrap_from_join, multisets_from_input
from repro.serving.cache import LRUResultCache
from repro.serving.index import QueryMatch, SimilarityIndex, sort_matches
from repro.serving.node import ServingNode, query_signature
from repro.serving.service import ShardedSimilarityService, shard_for
from repro.similarity.registry import get_measure, supported_measures
from repro.engine.engine import join
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig
from tests.conftest import make_random_multisets


def threshold_matches(target, query: Multiset, threshold: float) -> list:
    """Unified-API threshold query, unwrapped to the old list-of-matches."""
    return list(target.query(QueryRequest.threshold(query, threshold)).matches)


def topk_matches(target, query: Multiset, k: int) -> list:
    """Unified-API top-k query, unwrapped to the old list-of-matches."""
    return list(target.query(QueryRequest.topk(query, k)).matches)


def index_pair_dictionary(index: SimilarityIndex, threshold: float) -> dict:
    """All similar pairs the index finds by querying every member."""
    pairs: dict = {}
    for multiset_id in list(index.ids()):
        for match in index.neighbours(multiset_id, threshold):
            pairs[canonical_pair(multiset_id, match.multiset_id)] = match.similarity
    return pairs


class TestSimilarityIndexBasics:
    def test_add_remove_and_containment(self, overlapping_multisets):
        index = SimilarityIndex("ruzicka")
        assert index.bulk_load(overlapping_multisets) == 5
        assert len(index) == 5
        assert "a" in index and "nope" not in index
        assert index.get("a") == overlapping_multisets[0]
        index.remove("a")
        assert "a" not in index and len(index) == 4

    def test_duplicate_add_rejected_unless_replace(self):
        index = SimilarityIndex("ruzicka")
        index.add(Multiset("m", {"x": 1}))
        with pytest.raises(ServingError):
            index.add(Multiset("m", {"y": 2}))
        index.add(Multiset("m", {"y": 2}), replace=True)
        assert index.get("m").multiplicity("y") == 2
        assert index.get("m").multiplicity("x") == 0

    def test_remove_unknown_rejected(self):
        with pytest.raises(ServingError):
            SimilarityIndex("ruzicka").remove("ghost")

    def test_uni_of_unknown_rejected(self):
        with pytest.raises(ServingError):
            SimilarityIndex("ruzicka").uni("ghost")

    def test_version_bumps_on_writes(self):
        index = SimilarityIndex("ruzicka")
        assert index.version == 0
        index.add(Multiset("m", {"x": 1}))
        assert index.version == 1
        index.remove("m")
        assert index.version == 2

    def test_postings_are_retracted_on_remove(self, overlapping_multisets):
        index = SimilarityIndex("ruzicka")
        index.bulk_load(overlapping_multisets)
        before = index.num_postings
        index.remove("a")
        assert index.num_postings < before
        for multiset in overlapping_multisets[1:]:
            index.remove(multiset.id)
        assert index.num_postings == 0

    def test_disjunctive_measure_rejected(self):
        with pytest.raises(Exception):
            SimilarityIndex("direct_ruzicka")

    def test_invalid_stop_word_frequency_rejected(self):
        with pytest.raises(ServingError):
            SimilarityIndex("ruzicka", stop_word_frequency=0)

    def test_uni_matches_measure_unilateral(self, small_multisets):
        for name in ("ruzicka", "jaccard", "vector_cosine"):
            measure = get_measure(name)
            index = SimilarityIndex(name)
            index.bulk_load(small_multisets)
            for multiset in small_multisets:
                assert index.uni(multiset.id) == pytest.approx(
                    measure.unilateral(multiset))


class TestThresholdMatchesBatchJoin:
    """Acceptance: index threshold queries == the batch join on the same data."""

    @pytest.mark.parametrize("name", supported_measures())
    @pytest.mark.parametrize("threshold", [0.3, 0.7])
    def test_every_measure_agrees_with_batch_join(self, name, threshold):
        multisets = make_random_multisets(12, alphabet_size=15, max_elements=8,
                                          seed=42)
        expected = {pair.pair: pair.similarity
                    for pair in join(multisets, measure=name,
                                     threshold=threshold,
                                     algorithm="online_aggregation",
                                     cluster=laptop_cluster(num_machines=3))}
        index = SimilarityIndex(name)
        index.bulk_load(multisets)
        found = index_pair_dictionary(index, threshold)
        assert set(found) == set(expected)
        for pair, similarity in found.items():
            assert similarity == pytest.approx(expected[pair])

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([0.2, 0.5, 0.8]),
           st.sampled_from(supported_measures()))
    def test_generated_datasets_agree_with_batch_join(self, seed, threshold,
                                                      name):
        multisets = make_random_multisets(10, alphabet_size=12, max_elements=6,
                                          seed=seed)
        expected = {pair.pair: pair.similarity
                    for pair in join(multisets, measure=name,
                                     threshold=threshold,
                                     algorithm="online_aggregation",
                                     cluster=laptop_cluster(num_machines=3))}
        index = SimilarityIndex(name)
        index.bulk_load(multisets)
        found = index_pair_dictionary(index, threshold)
        assert set(found) == set(expected)
        for pair, similarity in found.items():
            assert similarity == pytest.approx(expected[pair])


class TestTopK:
    def test_topk_consistent_with_exact_scores(self, small_multisets):
        for name in ("ruzicka", "jaccard", "vector_cosine"):
            measure = get_measure(name)
            index = SimilarityIndex(name)
            index.bulk_load(small_multisets)
            query = small_multisets[0]
            for k in (1, 3, 10):
                matches = topk_matches(index, query, k)
                assert len(matches) <= k
                exact = sorted((measure.similarity(query, member)
                                for member in small_multisets), reverse=True)
                returned = [match.similarity for match in matches]
                assert returned == sorted(returned, reverse=True)
                for position, similarity in enumerate(returned):
                    assert similarity == pytest.approx(exact[position])

    def test_topk_scores_are_exact(self, small_multisets):
        measure = get_measure("ruzicka")
        index = SimilarityIndex("ruzicka")
        index.bulk_load(small_multisets)
        query = small_multisets[3]
        for match in topk_matches(index, query, 5):
            member = index.get(match.multiset_id)
            assert match.similarity == pytest.approx(
                measure.similarity(query, member))

    def test_topk_larger_than_candidates(self):
        index = SimilarityIndex("ruzicka")
        index.add(Multiset("m", {"x": 1}))
        matches = topk_matches(index, Multiset("q", {"x": 1, "y": 2}), 10)
        assert [match.multiset_id for match in matches] == ["m"]

    def test_topk_invalid_k_rejected(self):
        with pytest.raises(ServingError):
            topk_matches(SimilarityIndex("ruzicka"), Multiset("q", {"x": 1}), 0)

    def test_topk_early_termination_fires(self, small_multisets):
        index = SimilarityIndex("ruzicka")
        index.bulk_load(small_multisets)
        for query in small_multisets:
            topk_matches(index, query, 1)
        assert index.counters().get("serving/topk_early_terminations", 0) > 0


class TestUpperBoundPruning:
    @pytest.mark.parametrize("name", supported_measures())
    def test_upper_bound_dominates_similarity(self, name, small_multisets):
        measure = get_measure(name)
        for first in small_multisets[:10]:
            for second in small_multisets[10:20]:
                bound = measure.similarity_upper_bound(
                    measure.unilateral(first), measure.unilateral(second))
                assert bound >= measure.similarity(first, second) - 1e-9

    def test_vector_cosine_exact_at_threshold_one(self):
        # Parallel vectors have similarity exactly 1.0; a sqrt-based upper
        # bound can round one ulp below 1.0 and wrongly prune them.
        index = SimilarityIndex("vector_cosine")
        index.add(Multiset("y", {"e": 3 * 94906267}))
        query = Multiset("x", {"e": 94906267})
        matches = threshold_matches(index, query, 1.0)
        assert [match.multiset_id for match in matches] == ["y"]
        assert matches[0].similarity == pytest.approx(1.0)

    def test_threshold_queries_count_pruned_candidates(self, small_multisets):
        index = SimilarityIndex("ruzicka")
        index.bulk_load(small_multisets)
        for query in small_multisets:
            threshold_matches(index, query, 0.9)
        counters = index.counters()
        assert counters.get("serving/candidates_pruned", 0) > 0
        assert counters["serving/threshold_queries"] == len(small_multisets)


class TestStopWordPruning:
    def test_hot_postings_are_skipped(self):
        members = [Multiset(f"m{i}", {"hot": 1, f"rare{i}": 2})
                   for i in range(10)]
        exact = SimilarityIndex("ruzicka")
        exact.bulk_load(members)
        pruned = SimilarityIndex("ruzicka", stop_word_frequency=5)
        pruned.bulk_load(members)
        query = Multiset("q", {"hot": 1, "rare0": 2})
        exact_ids = {match.multiset_id
                     for match in threshold_matches(exact, query, 0.2)}
        pruned_ids = {match.multiset_id
                      for match in threshold_matches(pruned, query, 0.2)}
        # The hot element is the only link to m1..m9, so pruning drops them.
        assert pruned_ids == {"m0"}
        assert pruned_ids < exact_ids
        assert pruned.counters()["serving/stop_words_skipped"] == 1

    def test_generous_limit_stays_exact(self, small_multisets):
        exact = SimilarityIndex("ruzicka")
        exact.bulk_load(small_multisets)
        generous = SimilarityIndex("ruzicka",
                                   stop_word_frequency=len(small_multisets))
        generous.bulk_load(small_multisets)
        for query in small_multisets[:5]:
            assert (threshold_matches(generous, query, 0.3)
                    == threshold_matches(exact, query, 0.3))


class TestIncrementalMaintenance:
    """Acceptance: add/remove then re-query == fresh index on the final state."""

    @pytest.mark.parametrize("name", ["ruzicka", "jaccard", "vector_cosine"])
    def test_mutated_index_matches_fresh_build(self, name, small_multisets):
        churned = SimilarityIndex(name)
        churned.bulk_load(small_multisets)
        # Churn: drop a third of the members, re-add half of those dropped
        # with different contents, then drop a few of the re-added ones.
        dropped = small_multisets[::3]
        for member in dropped:
            churned.remove(member.id)
        readded = [member.scaled(2) for member in dropped[::2]]
        for member in readded:
            churned.add(member)
        for member in readded[::2]:
            churned.remove(member.id)

        final_state = {member.id: member for member in small_multisets
                       if member not in dropped}
        for member in readded:
            final_state[member.id] = member
        for member in readded[::2]:
            del final_state[member.id]
        fresh = SimilarityIndex(name)
        fresh.bulk_load(final_state.values())

        assert set(churned.ids()) == set(fresh.ids())
        query = small_multisets[1]
        assert (threshold_matches(churned, query, 0.3)
                == threshold_matches(fresh, query, 0.3))
        assert topk_matches(churned, query, 5) == topk_matches(fresh, query, 5)
        assert (index_pair_dictionary(churned, 0.4)
                == index_pair_dictionary(fresh, 0.4))


class TestLRUResultCache:
    def test_hit_miss_and_eviction(self):
        cache = LRUResultCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency
        cache.put("c", 3)           # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1
        assert cache.hits == 3 and cache.misses == 2

    def test_invalidate_clears_entries(self):
        cache = LRUResultCache(capacity=4)
        cache.put("a", 1)
        cache.invalidate()
        assert cache.get("a") is None
        assert cache.invalidations == 1

    def test_zero_capacity_disables_caching(self):
        cache = LRUResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServingError):
            LRUResultCache(capacity=-1)

    def test_hit_rate(self):
        cache = LRUResultCache(capacity=2)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == pytest.approx(0.5)


class TestServingNode:
    def test_cached_result_equals_fresh_result(self, small_multisets):
        node = ServingNode("ruzicka", cache_capacity=16)
        node.bulk_load(small_multisets)
        query = small_multisets[0]
        first = threshold_matches(node, query, 0.4)
        second = threshold_matches(node, query, 0.4)
        assert first == second
        assert node.cache.hits == 1
        # Only one index scan happened for the two calls.
        assert node.index.counters()["serving/threshold_queries"] == 1

    def test_writes_invalidate_the_cache(self, small_multisets):
        node = ServingNode("ruzicka", cache_capacity=16)
        node.bulk_load(small_multisets)
        query = small_multisets[0].with_id("query")
        before = threshold_matches(node, query, 0.4)
        node.add(small_multisets[0].with_id("twin"))
        after = threshold_matches(node, query, 0.4)
        assert {match.multiset_id for match in after} \
            == {match.multiset_id for match in before} | {"twin"}

    def test_direct_index_writes_cannot_serve_stale_results(
            self, overlapping_multisets):
        node = ServingNode("ruzicka", cache_capacity=16)
        node.bulk_load(overlapping_multisets)
        query = overlapping_multisets[0].with_id("probe")
        before = {match.multiset_id
                  for match in threshold_matches(node, query, 0.4)}
        # Bypass the node: write straight to the underlying index.
        node.index.remove("b")
        after = {match.multiset_id for match in threshold_matches(node, query, 0.4)}
        assert "b" in before and "b" not in after

    def test_failed_bulk_load_still_invalidates(self, overlapping_multisets):
        node = ServingNode("ruzicka", cache_capacity=16)
        node.bulk_load(overlapping_multisets[:1])
        query = overlapping_multisets[0].with_id("query")
        threshold_matches(node, query, 0.4)
        # The batch mutates the index ('b' lands) before the duplicate 'a'
        # is rejected — the stale cached answer must not survive.
        with pytest.raises(ServingError):
            node.bulk_load([overlapping_multisets[1], overlapping_multisets[0]])
        assert {match.multiset_id
                for match in threshold_matches(node, query, 0.4)} == {"a", "b"}

    def test_query_signature_ignores_identifier_and_order(self):
        first = Multiset("a", [("x", 1), ("y", 2)])
        second = Multiset("b", [("y", 2), ("x", 1)])
        assert query_signature(first) == query_signature(second)

    def test_batch_deduplicates_identical_queries(self, small_multisets):
        node = ServingNode("ruzicka", cache_capacity=0)  # cache disabled
        node.bulk_load(small_multisets)
        query = small_multisets[0]
        responses = node.batch(
            [QueryRequest.threshold(q, 0.4)
             for q in (query, query.with_id("copy"), query)])
        assert len(responses) == 3
        assert (responses[0].matches == responses[1].matches
                == responses[2].matches)
        assert node.index.counters()["serving/threshold_queries"] == 1

    def test_batch_topk(self, small_multisets):
        node = ServingNode("ruzicka")
        node.bulk_load(small_multisets)
        queries = small_multisets[:4]
        responses = node.batch([QueryRequest.topk(q, 3) for q in queries])
        assert [list(response.matches) for response in responses] \
            == [topk_matches(node, query, 3) for query in queries]

    def test_stats_merge_index_and_cache(self, small_multisets):
        node = ServingNode("ruzicka")
        node.bulk_load(small_multisets)
        threshold_matches(node, small_multisets[0], 0.5)
        stats = node.stats()
        assert stats["indexed_multisets"] == len(small_multisets)
        assert stats["serving/threshold_queries"] == 1
        assert "cache/hit_rate" in stats


class TestShardedService:
    def test_routing_is_stable_and_partitioning(self, small_multisets):
        service = ShardedSimilarityService("ruzicka", num_shards=4)
        service.bulk_load(small_multisets)
        assert len(service) == len(small_multisets)
        for multiset in small_multisets:
            shard = shard_for(multiset.id, 4)
            assert service.shard_for(multiset.id) == shard
            assert multiset.id in service.nodes[shard].index
        # Every shard owns a disjoint slice.
        assert sum(len(node) for node in service.nodes) == len(small_multisets)

    @pytest.mark.parametrize("num_shards", [1, 3, 4])
    def test_fan_out_matches_single_node(self, num_shards, small_multisets):
        single = ServingNode("ruzicka")
        single.bulk_load(small_multisets)
        service = ShardedSimilarityService("ruzicka", num_shards=num_shards)
        service.bulk_load(small_multisets)
        for query in small_multisets[:8]:
            expected = threshold_matches(single, query, 0.4)
            assert threshold_matches(service, query, 0.4) == expected
            expected_topk = [match.similarity
                             for match in topk_matches(single, query, 5)]
            found_topk = [match.similarity
                          for match in topk_matches(service, query, 5)]
            assert found_topk == pytest.approx(expected_topk)

    def test_batch_queries_match_loop(self, small_multisets):
        service = ShardedSimilarityService("ruzicka", num_shards=3)
        service.bulk_load(small_multisets)
        queries = small_multisets[:5]
        threshold_responses = service.batch(
            [QueryRequest.threshold(q, 0.4) for q in queries])
        assert [list(response.matches) for response in threshold_responses] \
            == [threshold_matches(service, query, 0.4) for query in queries]
        topk_responses = service.batch(
            [QueryRequest.topk(q, 4) for q in queries])
        assert [list(response.matches) for response in topk_responses] \
            == [topk_matches(service, query, 4) for query in queries]

    def test_writes_route_to_owning_shard(self, small_multisets):
        service = ShardedSimilarityService("ruzicka", num_shards=4)
        service.bulk_load(small_multisets)
        victim = small_multisets[0].id
        service.remove(victim)
        assert victim not in service
        assert len(service) == len(small_multisets) - 1

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ServingError):
            ShardedSimilarityService("ruzicka", num_shards=0)
        with pytest.raises(ServingError):
            shard_for("m", 0)

    def test_neighbours_excludes_self(self, overlapping_multisets):
        service = ShardedSimilarityService("ruzicka", num_shards=2)
        service.bulk_load(overlapping_multisets)
        matches = service.neighbours("a", 0.8)
        assert [match.multiset_id for match in matches] == ["b"]
        with pytest.raises(ServingError):
            service.neighbours("ghost", 0.8)


class TestBootstrap:
    def test_input_shapes(self, overlapping_multisets):
        tuples = explode_multisets(overlapping_multisets)
        as_dataset = Dataset("raw_input", tuples)
        for data in (overlapping_multisets, tuples, as_dataset,
                     {multiset.id: multiset
                      for multiset in overlapping_multisets}):
            assert {multiset.id for multiset in multisets_from_input(data)} \
                == {"a", "b", "c", "d", "e"}
        assert multisets_from_input([]) == []
        with pytest.raises(ServingError):
            multisets_from_input(["garbage"])

    def test_mixed_input_shapes_rejected(self, overlapping_multisets):
        mixed = [overlapping_multisets[0], InputTuple("z", "x", 1)]
        with pytest.raises(ServingError, match="mixed"):
            multisets_from_input(mixed)
        with pytest.raises(ServingError, match="mixed"):
            multisets_from_input(list(reversed(mixed)))

    def test_mapping_values_validated(self, overlapping_multisets):
        with pytest.raises(ServingError):
            multisets_from_input({"a": "not-a-multiset"})
        with pytest.raises(ServingError, match="mixed"):
            multisets_from_input({"a": overlapping_multisets[0],
                                  "z": InputTuple("z", "x", 1)})

    def test_bootstrap_without_join_result(self, small_multisets):
        service = bootstrap_from_join(small_multisets, num_shards=2)
        assert len(service) == len(small_multisets)
        assert service.measure.name == "ruzicka"

    def test_threshold_without_join_result_rejected(self, small_multisets):
        # The argument would have no effect; raising beats silent acceptance.
        with pytest.raises(ServingError, match="join_result"):
            bootstrap_from_join(small_multisets, threshold=0.9)

    def test_bootstrap_warms_member_queries(self, small_multisets, test_cluster):
        threshold = 0.4
        join = VSmartJoin(VSmartJoinConfig(threshold=threshold),
                          cluster=test_cluster).run(small_multisets)
        service = bootstrap_from_join(small_multisets, join, num_shards=2)

        fresh = ShardedSimilarityService("ruzicka", num_shards=2)
        fresh.bulk_load(small_multisets)
        hits_before = service.stats()["cache/hits"]
        for member in small_multisets:
            warmed = threshold_matches(service, member, threshold)
            expected = threshold_matches(fresh, member, threshold)
            assert [match.multiset_id for match in warmed] \
                == [match.multiset_id for match in expected]
            assert [match.similarity for match in warmed] \
                == pytest.approx([match.similarity for match in expected])
        # Every member query was answered from the warmed caches.
        hits = service.stats()["cache/hits"] - hits_before
        assert hits == len(small_multisets) * service.num_shards

    def test_bootstrap_from_pipeline_dataset(self, overlapping_multisets,
                                             test_cluster):
        join = VSmartJoin(VSmartJoinConfig(threshold=0.8),
                          cluster=test_cluster).run(overlapping_multisets)
        dataset = Dataset("raw_input", explode_multisets(overlapping_multisets))
        service = bootstrap_from_join(dataset, join)
        assert {match.multiset_id
                for match in service.neighbours("a", 0.8)} == {"b"}

    def test_mismatched_measure_or_threshold_rejected(self, overlapping_multisets,
                                                      test_cluster):
        join = VSmartJoin(VSmartJoinConfig(threshold=0.8),
                          cluster=test_cluster).run(overlapping_multisets)
        with pytest.raises(ServingError):
            bootstrap_from_join(overlapping_multisets, join, measure="jaccard")
        with pytest.raises(ServingError):
            bootstrap_from_join(overlapping_multisets, join, threshold=0.5)

    def test_warm_cache_capacity_guard(self, small_multisets, test_cluster):
        join = VSmartJoin(VSmartJoinConfig(threshold=0.4),
                          cluster=test_cluster).run(small_multisets)
        # Too small to retain the warm-up: rejected, not silently evicted.
        with pytest.raises(ServingError, match="cache_capacity"):
            bootstrap_from_join(small_multisets, join, cache_capacity=4)
        # Auto-sizing keeps every warmed entry resident.
        service = bootstrap_from_join(small_multisets, join)
        assert all(node.cache.capacity >= len(small_multisets)
                   for node in service.nodes)
        # A small explicit capacity is fine when nothing is warmed.
        cold = bootstrap_from_join(small_multisets, cache_capacity=4)
        assert all(node.cache.capacity == 4 for node in cold.nodes)

    def test_stale_join_result_rejected(self, overlapping_multisets,
                                        test_cluster):
        join = VSmartJoin(VSmartJoinConfig(threshold=0.8),
                          cluster=test_cluster).run(overlapping_multisets)
        # Drop a joined member from the bootstrap data: the warm-up would
        # cache matches pointing at an unindexed multiset.
        without_b = [multiset for multiset in overlapping_multisets
                     if multiset.id != "b"]
        with pytest.raises(ServingError, match="not in the bootstrap data"):
            bootstrap_from_join(without_b, join)

    def test_stop_word_join_cannot_warm(self, small_multisets, test_cluster):
        join = VSmartJoin(VSmartJoinConfig(threshold=0.4, stop_word_frequency=5),
                          cluster=test_cluster).run(small_multisets)
        with pytest.raises(ServingError):
            bootstrap_from_join(small_multisets, join)

    def test_run_join_warms_like_explicit_join(self, small_multisets, test_cluster):
        threshold = 0.4
        join = VSmartJoin(VSmartJoinConfig(threshold=threshold),
                          cluster=test_cluster).run(small_multisets)
        explicit = bootstrap_from_join(small_multisets, join, num_shards=2)
        inline = bootstrap_from_join(small_multisets, threshold=threshold,
                                     num_shards=2, run_join=True,
                                     cluster=test_cluster, backend="thread")
        for member in small_multisets:
            assert [(m.multiset_id, m.similarity)
                    for m in threshold_matches(inline, member, threshold)] \
                == [(m.multiset_id, m.similarity)
                    for m in threshold_matches(explicit, member, threshold)]
        # The inline join warmed the caches just like the explicit one.
        assert inline.stats()["cache/hits"] == explicit.stats()["cache/hits"]

    def test_run_join_accepts_one_shot_iterators(self, small_multisets, test_cluster):
        # The inline join and the index build must not consume `data` twice.
        service = bootstrap_from_join(iter(small_multisets), threshold=0.4,
                                      run_join=True, cluster=test_cluster)
        assert len(service) == len(small_multisets)

    def test_run_join_guards(self, small_multisets, test_cluster):
        join = VSmartJoin(VSmartJoinConfig(threshold=0.4),
                          cluster=test_cluster).run(small_multisets)
        with pytest.raises(ServingError, match="do not also pass join_result"):
            bootstrap_from_join(small_multisets, join, run_join=True)
        with pytest.raises(ServingError, match="threshold"):
            bootstrap_from_join(small_multisets, run_join=True)
        with pytest.raises(ServingError, match="run_join=True"):
            bootstrap_from_join(small_multisets, backend="process")

    def test_pruning_index_cannot_be_warmed(self, small_multisets, test_cluster):
        # Warmed exact answers would silently flip to pruned ones on the
        # first cache invalidation, so the combination is rejected.
        join = VSmartJoin(VSmartJoinConfig(threshold=0.4),
                          cluster=test_cluster).run(small_multisets)
        with pytest.raises(ServingError, match="stop-word pruning"):
            bootstrap_from_join(small_multisets, join, stop_word_frequency=3)
        # Without warm-up data the pruning knob remains available.
        service = bootstrap_from_join(small_multisets, stop_word_frequency=3)
        assert len(service) == len(small_multisets)


class TestQueryWorkload:
    def test_deterministic_and_well_formed(self, small_multisets):
        config = QueryWorkloadConfig(num_queries=50, zipf_exponent=1.4, seed=3)
        first = generate_query_workload(small_multisets, config)
        second = generate_query_workload(small_multisets, config)
        assert first == second
        assert len(first) == 50
        assert len({query.id for query in first}) == 50  # fresh identifiers
        member_signatures = {query_signature(member)
                             for member in small_multisets}
        assert all(query_signature(query) in member_signatures
                   for query in first)

    def test_zipf_skew_produces_repeats(self, small_multisets):
        queries = generate_query_workload(
            small_multisets, QueryWorkloadConfig(num_queries=200,
                                                 zipf_exponent=1.5, seed=1))
        stats = workload_statistics(queries)
        assert stats["num_queries"] == 200
        assert stats["repeat_rate"] > 0.3
        assert stats["distinct_queries"] < 200

    def test_perturbation_changes_contents(self, small_multisets):
        config = QueryWorkloadConfig(num_queries=100, zipf_exponent=1.2,
                                     perturbation_probability=1.0, seed=5)
        queries = generate_query_workload(small_multisets, config)
        member_signatures = {query_signature(member)
                             for member in small_multisets}
        assert any(query_signature(query) not in member_signatures
                   for query in queries)

    def test_perturbation_survives_tiny_multisets(self):
        config = QueryWorkloadConfig(num_queries=20,
                                     perturbation_probability=1.0, seed=2)
        singletons = [Multiset("s", {"only": 1}), Multiset("e", {})]
        queries = generate_query_workload(singletons, config)
        assert len(queries) == 20
        for query in queries:
            assert query.cardinality >= 0  # no crash, contents stay valid

    def test_invalid_parameters_rejected(self, small_multisets):
        with pytest.raises(DatasetError):
            generate_query_workload([], QueryWorkloadConfig(num_queries=5))
        with pytest.raises(DatasetError):
            QueryWorkloadConfig(num_queries=-1)
        with pytest.raises(DatasetError):
            QueryWorkloadConfig(zipf_exponent=0.0)
        with pytest.raises(DatasetError):
            QueryWorkloadConfig(perturbation_probability=1.5)


class TestSortMatches:
    def test_orders_by_similarity_then_id(self):
        matches = [QueryMatch("b", 0.5), QueryMatch("a", 0.5),
                   QueryMatch("c", 0.9)]
        assert [match.multiset_id for match in sort_matches(matches)] \
            == ["c", "a", "b"]

    def test_mixed_identifier_types_fall_back_to_repr(self):
        matches = [QueryMatch(2, 0.5), QueryMatch("a", 0.5)]
        ordered = sort_matches(matches)
        assert {match.multiset_id for match in ordered} == {2, "a"}


class TestInternedIndex:
    """The interned index answers exactly like the uninterned one."""

    def build(self, multisets, measure="ruzicka", intern=True):
        index = SimilarityIndex(measure, intern=intern)
        index.bulk_load(multisets)
        return index

    @pytest.mark.parametrize("measure", ["ruzicka", "jaccard", "vector_cosine",
                                         "overlap"])
    def test_threshold_and_topk_parity(self, small_multisets, measure):
        interned = self.build(small_multisets, measure=measure, intern=True)
        plain = self.build(small_multisets, measure=measure, intern=False)
        for query in small_multisets[:6]:
            assert (threshold_matches(interned, query, 0.4)
                    == threshold_matches(plain, query, 0.4))
            assert topk_matches(interned, query, 5) == topk_matches(plain, query, 5)

    def test_remove_retracts_interned_postings(self, overlapping_multisets):
        index = self.build(overlapping_multisets, intern=True)
        postings_before = index.num_postings
        index.remove("a")
        assert index.num_postings < postings_before
        assert "a" not in index
        matches = threshold_matches(index, overlapping_multisets[1], 0.9)
        assert all(match.multiset_id != "a" for match in matches)

    def test_unknown_query_elements_skip_scanning(self, overlapping_multisets):
        index = self.build(overlapping_multisets, intern=True)
        stranger = Multiset("query", {"never-indexed-1": 2, "never-indexed-2": 1})
        assert threshold_matches(index, stranger, 0.1) == []
        assert index.counters().get("serving/postings_scanned", 0) == 0

    @pytest.mark.parametrize("intern", [True, False])
    def test_literal_none_element_is_a_real_element(self, intern):
        # None is a legal multiset element; it must not be mistaken for the
        # "never indexed" marker on either index representation.
        index = SimilarityIndex("ruzicka", intern=intern)
        index.add(Multiset("a", {None: 3, "x": 1}))
        matches = threshold_matches(index, Multiset("q", {None: 3, "x": 1}), 0.9)
        assert [match.multiset_id for match in matches] == ["a"]
        assert matches[0].similarity == 1.0
        index.remove("a")
        assert index.num_postings == 0

    def test_upper_bound_pruning_still_counts(self, small_multisets):
        index = self.build(small_multisets, intern=True)
        threshold_matches(index, small_multisets[0], 0.95)
        counters = index.counters()
        assert counters["serving/candidates_examined"] > 0


class TestCacheCounterExposure:
    """Satellite: hit/miss/eviction counters surface on node and service."""

    def test_node_counter_properties(self, overlapping_multisets):
        node = ServingNode("ruzicka", cache_capacity=2)
        node.bulk_load(overlapping_multisets)
        query = overlapping_multisets[0]
        threshold_matches(node, query, 0.5)
        threshold_matches(node, query, 0.5)
        assert node.cache_hits == 1
        assert node.cache_misses == 1
        assert node.cache_evictions == 0
        # Two more content-distinct entries overflow the capacity-2 cache
        # (multisets "a" and "b" share a content signature, so index 1
        # would be a hit, not a new entry).
        threshold_matches(node, overlapping_multisets[2], 0.5)
        threshold_matches(node, overlapping_multisets[3], 0.5)
        assert node.cache_evictions == 1
        stats = node.stats()
        assert stats["cache/hits"] == node.cache_hits
        assert stats["cache/misses"] == node.cache_misses
        assert stats["cache/evictions"] == node.cache_evictions

    def test_service_per_node_stats(self, small_multisets):
        service = ShardedSimilarityService("ruzicka", num_shards=3,
                                           cache_capacity=8)
        service.bulk_load(small_multisets)
        for query in small_multisets[:4]:
            threshold_matches(service, query, 0.5)
            threshold_matches(service, query, 0.5)
        per_node = service.per_node_stats()
        assert set(per_node) == {"node0", "node1", "node2"}
        totals = service.stats()
        for stat in ("cache/hits", "cache/misses", "cache/evictions"):
            assert totals[stat] == sum(stats[stat] for stats in per_node.values())
        assert totals["cache/hits"] > 0


# ---------------------------------------------------------------------------
# Stateful model check of the mutable serving surface
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck, settings as hyp_settings  # noqa: E402
from hypothesis.stateful import (  # noqa: E402
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

#: Small universes so replaces, re-adds and duplicate rejections are common.
SERVING_IDS = tuple(f"i{index}" for index in range(8))
SERVING_ALPHABET = tuple(f"w{index}" for index in range(8))

SERVING_CONTENTS = st.dictionaries(st.sampled_from(SERVING_ALPHABET),
                                   st.integers(min_value=1, max_value=4),
                                   max_size=5)


class ServingNodeModelMachine(RuleBasedStateMachine):
    """A ServingNode stays in parity with a brute-force model under churn.

    Exercises the historically under-tested paths: ``remove``, ``replace``,
    duplicate-add rejection, the write-version counter, and result-cache
    correctness across invalidations (every query immediately follows
    arbitrary interleaved writes, so a stale cache entry would surface as a
    wrong answer).
    """

    def __init__(self):
        super().__init__()
        self.node = None
        self.model: dict = {}
        self.measure = None
        self.capacity = 0
        self.last_version = 0

    @initialize(measure=st.sampled_from(["ruzicka", "jaccard",
                                         "vector_cosine", "overlap"]),
                intern=st.booleans(),
                capacity=st.sampled_from([0, 2, 64]))
    def setup(self, measure, intern, capacity):
        self.measure = get_measure(measure)
        self.capacity = capacity
        self.node = ServingNode(measure, cache_capacity=capacity,
                                intern=intern)
        self.model = {}
        self.last_version = 0

    def _assert_write_bumped(self):
        assert self.node.index.version > self.last_version
        self.last_version = self.node.index.version

    def _expected_threshold(self, query, threshold):
        return sort_matches(
            QueryMatch(multiset_id, similarity)
            for multiset_id, member in self.model.items()
            if (similarity := self.measure.similarity(query, member))
            >= threshold)

    def _draw_query(self, data):
        if self.model and data.draw(st.booleans(), label="member query?"):
            source = self.model[data.draw(st.sampled_from(sorted(self.model)),
                                          label="query source")]
            return source.with_id("q")
        return Multiset("q", data.draw(SERVING_CONTENTS,
                                       label="query contents"))

    # -- writes ---------------------------------------------------------------

    @rule(data=st.data(), contents=SERVING_CONTENTS)
    def add(self, data, contents):
        target = data.draw(st.sampled_from(SERVING_IDS), label="add target")
        member = Multiset(target, contents)
        if target in self.model:
            with pytest.raises(ServingError):
                self.node.add(member)
            # The rejected write must not have mutated anything.
            assert self.node.index.version == self.last_version
            assert self.node.index.get(target) == self.model[target]
        else:
            self.node.add(member)
            self.model[target] = member
            self._assert_write_bumped()

    @precondition(lambda self: self.model)
    @rule(data=st.data(), contents=SERVING_CONTENTS)
    def replace(self, data, contents):
        target = data.draw(st.sampled_from(sorted(self.model)),
                           label="replace target")
        member = Multiset(target, contents)
        self.node.add(member, replace=True)
        self.model[target] = member
        self._assert_write_bumped()

    @rule(data=st.data())
    def remove(self, data):
        target = data.draw(st.sampled_from(SERVING_IDS), label="remove target")
        if target in self.model:
            self.node.remove(target)
            del self.model[target]
            self._assert_write_bumped()
        else:
            with pytest.raises(ServingError):
                self.node.remove(target)
            assert self.node.index.version == self.last_version

    # -- queries (always against a freshly mutated index) ---------------------

    @rule(data=st.data(), threshold=st.sampled_from([0.2, 0.5, 0.9]))
    def query_threshold_matches_brute_force(self, data, threshold):
        query = self._draw_query(data)
        expected = self._expected_threshold(query, threshold)
        found = threshold_matches(self.node, query, threshold)
        assert [match.multiset_id for match in found] \
            == [match.multiset_id for match in expected]
        assert [match.similarity for match in found] \
            == pytest.approx([match.similarity for match in expected])
        # Asking again returns the identical answer; with a cache it is a
        # hit, without one it recomputes — either way no drift.
        hits_before = self.node.cache_hits
        assert threshold_matches(self.node, query, threshold) == found
        if self.capacity > 0:
            assert self.node.cache_hits == hits_before + 1
        else:
            assert self.node.cache_hits == 0

    @rule(data=st.data(), k=st.integers(min_value=1, max_value=5))
    def query_topk_matches_brute_force(self, data, k):
        query = self._draw_query(data)
        # The index only scores candidates sharing an element; for every
        # supported measure those are exactly the positive similarities.
        expected = sort_matches(
            match for match in self._expected_threshold(query, 1e-12))[:k]
        found = topk_matches(self.node, query, k)
        assert [match.multiset_id for match in found] \
            == [match.multiset_id for match in expected]
        assert [match.similarity for match in found] \
            == pytest.approx([match.similarity for match in expected])

    # -- invariants -----------------------------------------------------------

    @invariant()
    def membership_matches_model(self):
        if self.node is None:
            return
        assert len(self.node) == len(self.model)
        assert set(self.node.index.ids()) == set(self.model)
        for multiset_id, member in self.model.items():
            assert multiset_id in self.node
            assert self.node.index.get(multiset_id) == member

    @invariant()
    def empty_index_has_no_postings(self):
        if self.node is not None and not self.model:
            assert self.node.index.num_postings == 0


ServingNodeModelMachine.TestCase.settings = hyp_settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])
TestServingNodeStateful = ServingNodeModelMachine.TestCase
