"""Unit and property tests for the pipeline record types."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiset import Multiset
from repro.core.records import (
    InputTuple,
    PairKey,
    SimilarPair,
    assemble_multisets,
    canonical_pair,
    explode_multisets,
)


class TestInputTuple:
    def test_valid(self):
        record = InputTuple("ip", "cookie", 3)
        assert record.multiset_id == "ip"
        assert record.multiplicity == 3

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            InputTuple("ip", "cookie", 0)

    def test_ordering_is_total(self):
        records = [InputTuple("b", "x", 1), InputTuple("a", "y", 2)]
        assert sorted(records)[0].multiset_id == "a"


class TestPairKey:
    def test_make_orders_identifiers(self):
        key = PairKey.make("zebra", (2.0,), "ant", (5.0,))
        assert key.first == "ant"
        assert key.second == "zebra"
        assert key.uni_first == (5.0,)
        assert key.uni_second == (2.0,)

    def test_make_preserves_order_when_already_canonical(self):
        key = PairKey.make("ant", (1.0,), "zebra", (2.0,))
        assert key.first == "ant"
        assert key.uni_first == (1.0,)

    def test_hashable(self):
        first = PairKey.make("a", (1.0,), "b", (2.0,))
        second = PairKey.make("b", (2.0,), "a", (1.0,))
        assert first == second
        assert len({first, second}) == 1


class TestSimilarPair:
    def test_make_canonicalises(self):
        pair = SimilarPair.make("z", "a", 0.7)
        assert pair.pair == ("a", "z")
        assert pair.similarity == 0.7

    def test_canonical_pair_with_mixed_types(self):
        assert canonical_pair(2, 10) == (2, 10)
        assert canonical_pair("b", "a") == ("a", "b")
        mixed = canonical_pair("x", 5)
        assert set(mixed) == {"x", 5}


class TestExplodeAssemble:
    def test_explode(self):
        records = explode_multisets([Multiset("m", {"a": 2, "b": 1})])
        assert sorted((r.multiset_id, r.element, r.multiplicity) for r in records) == [
            ("m", "a", 2), ("m", "b", 1)]

    def test_assemble_sums_duplicates(self):
        records = [InputTuple("m", "a", 1), InputTuple("m", "a", 2)]
        assembled = assemble_multisets(records)
        assert assembled["m"].counts() == {"a": 3}

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.dictionaries(st.sampled_from(["a", "b", "c", "d"]),
                        st.integers(min_value=1, max_value=5),
                        min_size=1, max_size=4),
        min_size=1, max_size=6))
    def test_roundtrip(self, count_dicts):
        multisets = [Multiset(f"m{i}", counts) for i, counts in enumerate(count_dicts)]
        assembled = assemble_multisets(explode_multisets(multisets))
        assert assembled == {m.id: m for m in multisets}
