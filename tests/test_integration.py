"""End-to-end integration tests on generated workloads.

These tests exercise the whole stack the way the paper's evaluation does:
generate a skewed IP/cookie workload with planted proxy groups, run every
algorithm (distributed and sequential), check that they all report the same
similar pairs, and post-process the pairs into proxy communities.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_algorithm
from repro.baselines.inverted_index import InvertedIndexJoin
from repro.baselines.ppjoin import PPJoin
from repro.communities.proxies import (
    discovered_proxy_groups,
    evaluate_proxy_discovery,
    filter_small_multisets,
)
from repro.datasets.documents import DocumentCorpusConfig, generate_document_corpus
from repro.datasets.ip_cookie import IPCookieConfig, generate_ip_cookie_dataset
from repro.mapreduce.cluster import laptop_cluster
from repro.similarity.exact import all_pairs_exact
from repro.vsmart.driver import VSmartJoin, VSmartJoinConfig


@pytest.fixture(scope="module")
def workload():
    """A small planted-proxy workload shared by the integration tests."""
    config = IPCookieConfig(num_ips=80, num_cookies=400,
                            max_cookies_per_ip=60, min_cookies_per_ip=3,
                            num_proxy_groups=4, ips_per_proxy_group=5,
                            cookies_per_proxy_pool=25, proxy_cookie_affinity=0.9,
                            seed=77)
    return generate_ip_cookie_dataset(config)


@pytest.fixture(scope="module")
def cluster():
    return laptop_cluster(num_machines=5)


class TestAlgorithmAgreement:
    @pytest.mark.parametrize("threshold", [0.2, 0.5])
    def test_all_algorithms_report_identical_pairs(self, workload, cluster, threshold):
        multisets = workload.multisets
        expected = {p.pair for p in all_pairs_exact(multisets, "ruzicka", threshold)}
        outcomes = {}
        for algorithm in ("online_aggregation", "lookup", "sharding", "vcl"):
            outcome = run_algorithm(algorithm, multisets, threshold=threshold,
                                    cluster=cluster, sharding_threshold=20)
            assert outcome.finished, outcome.detail
            outcomes[algorithm] = outcome
            assert {p.pair for p in outcome.pairs} == expected, algorithm
        sequential = {
            "inverted_index": InvertedIndexJoin("ruzicka", threshold).run(multisets),
            "ppjoin": PPJoin("ruzicka", threshold).run(multisets),
        }
        for name, pairs in sequential.items():
            assert {p.pair for p in pairs} == expected, name

    def test_pair_counts_decrease_with_threshold(self, workload, cluster):
        counts = []
        for threshold in (0.1, 0.4, 0.7):
            outcome = run_algorithm("online_aggregation", workload.multisets,
                                    threshold=threshold, cluster=cluster)
            counts.append(outcome.num_pairs)
        assert counts == sorted(counts, reverse=True)


class TestProxyDiscovery:
    def test_planted_groups_are_recovered(self, workload, cluster):
        config = VSmartJoinConfig(threshold=0.3, sharding_threshold=20)
        result = VSmartJoin(config, cluster=cluster).run(workload.multisets)
        evaluation = evaluate_proxy_discovery(result.pairs, workload.proxy_groups,
                                              threshold=0.3)
        assert evaluation.coverage > 0.7
        groups = discovered_proxy_groups(result.pairs)
        assert len(groups) >= len(workload.proxy_groups) * 0.5

    def test_small_ip_filter_improves_precision(self, workload, cluster):
        multisets = workload.multisets
        config = VSmartJoinConfig(threshold=0.2, sharding_threshold=20)
        unfiltered = VSmartJoin(config, cluster=cluster).run(multisets)
        baseline = evaluate_proxy_discovery(unfiltered.pairs, workload.proxy_groups,
                                            threshold=0.2)
        filtered_multisets = filter_small_multisets(multisets,
                                                    minimum_distinct_elements=15)
        filtered_ids = {m.id for m in filtered_multisets}
        filtered = VSmartJoin(config, cluster=cluster).run(filtered_multisets)
        evaluation = evaluate_proxy_discovery(filtered.pairs, workload.proxy_groups,
                                              threshold=0.2,
                                              restrict_to_ids=filtered_ids)
        assert evaluation.precision >= baseline.precision


class TestDocumentDeduplication:
    def test_near_duplicates_found_via_jaccard(self, cluster):
        corpus = generate_document_corpus(DocumentCorpusConfig(
            num_base_documents=6, words_per_document=80,
            duplicates_per_document=1, mutation_rate=0.05, seed=21))
        config = VSmartJoinConfig(measure="jaccard", threshold=0.5)
        result = VSmartJoin(config, cluster=cluster).run(corpus.multisets)
        found_pairs = {p.pair for p in result.pairs}
        for duplicate_cluster in corpus.duplicate_clusters:
            members = sorted(duplicate_cluster)
            assert (members[0], members[1]) in found_pairs

    def test_unrelated_documents_not_reported(self, cluster):
        corpus = generate_document_corpus(DocumentCorpusConfig(
            num_base_documents=6, words_per_document=80,
            duplicates_per_document=0, seed=22))
        config = VSmartJoinConfig(measure="jaccard", threshold=0.5)
        result = VSmartJoin(config, cluster=cluster).run(corpus.multisets)
        assert result.pairs == []


class TestMemoryPressureScenario:
    def test_lookup_fails_when_table_does_not_fit_but_sharding_survives(self, workload):
        from repro.mapreduce.cluster import Cluster

        # Budget sized between the sharded table (tiny: only multisets with
        # |U(Mi)| > C get entries) and the full interned lookup table.
        tight = Cluster(num_machines=4, memory_per_machine=2_600,
                        disk_per_machine=10 ** 9)
        lookup = run_algorithm("lookup", workload.multisets, threshold=0.5,
                               cluster=tight, sharding_threshold=30)
        sharding = run_algorithm("sharding", workload.multisets, threshold=0.5,
                                 cluster=tight, sharding_threshold=30)
        assert lookup.status == "out_of_memory"
        assert sharding.status == "ok"
