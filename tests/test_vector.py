"""Unit tests for the SparseVector data model."""

from __future__ import annotations

import math

import pytest

from repro.core.exceptions import InvalidVectorError
from repro.core.multiset import Multiset
from repro.core.vector import SparseVector


class TestConstruction:
    def test_basic(self):
        vector = SparseVector("v1", {"a": 2.0, "b": 1.5})
        assert vector.id == "v1"
        assert vector["a"] == 2.0
        assert vector.weight("missing") == 0.0

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector("v", {"a": 0.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector("v", {"a": -1.0})

    def test_non_finite_weight_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector("v", {"a": float("nan")})

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector("v", [("a", 1.0), ("a", 2.0)])

    def test_from_multiset(self):
        vector = SparseVector.from_multiset(Multiset("m", {"a": 3, "b": 1}))
        assert vector.id == "m"
        assert vector["a"] == 3.0

    def test_unit_normalisation(self):
        vector = SparseVector.unit("v", {"a": 3.0, "b": 4.0})
        assert vector.l2_norm == pytest.approx(1.0)
        assert vector["a"] == pytest.approx(0.6)


class TestNormsAndSupport:
    def test_l1_and_l2(self):
        vector = SparseVector("v", {"a": 3.0, "b": 4.0})
        assert vector.l1_norm == pytest.approx(7.0)
        assert vector.l2_norm == pytest.approx(5.0)

    def test_support(self):
        vector = SparseVector("v", {"a": 3.0, "b": 4.0})
        assert vector.support == frozenset({"a", "b"})
        assert vector.support_size == 2
        assert len(vector) == 2
        assert set(vector) == {"a", "b"}
        assert "a" in vector


class TestPairwise:
    def test_dot(self):
        first = SparseVector("a", {"x": 2.0, "y": 1.0})
        second = SparseVector("b", {"x": 3.0, "z": 5.0})
        assert first.dot(second) == pytest.approx(6.0)
        assert first.dot(second) == second.dot(first)

    def test_min_and_max_sums(self):
        first = SparseVector("a", {"x": 2.0, "y": 1.0})
        second = SparseVector("b", {"x": 3.0, "z": 5.0})
        assert first.min_sum(second) == pytest.approx(2.0)
        assert first.max_sum(second) == pytest.approx(3.0 + 1.0 + 5.0)

    def test_cosine(self):
        first = SparseVector("a", {"x": 1.0})
        second = SparseVector("b", {"x": 1.0})
        third = SparseVector("c", {"y": 1.0})
        assert first.cosine(second) == pytest.approx(1.0)
        assert first.cosine(third) == pytest.approx(0.0)

    def test_cosine_matches_manual_computation(self):
        first = SparseVector("a", {"x": 2.0, "y": 1.0})
        second = SparseVector("b", {"x": 1.0, "y": 3.0})
        expected = (2 * 1 + 1 * 3) / (math.sqrt(5) * math.sqrt(10))
        assert first.cosine(second) == pytest.approx(expected)


class TestConversions:
    def test_to_multiset_exact(self):
        vector = SparseVector("v", {"a": 2.0, "b": 1.0})
        assert vector.to_multiset().counts() == {"a": 2, "b": 1}

    def test_to_multiset_exact_rejects_fractional(self):
        with pytest.raises(InvalidVectorError):
            SparseVector("v", {"a": 1.5}).to_multiset()

    def test_to_multiset_round(self):
        assert SparseVector("v", {"a": 1.4}).to_multiset("round").counts() == {"a": 1}

    def test_to_multiset_unknown_mode(self):
        with pytest.raises(InvalidVectorError):
            SparseVector("v", {"a": 1.0}).to_multiset("banana")

    def test_to_tuples(self):
        vector = SparseVector("v", {"a": 2.0})
        assert vector.to_tuples() == [("v", "a", 2.0)]

    def test_roundtrip_with_multiset(self):
        multiset = Multiset("m", {"a": 3, "b": 1})
        assert SparseVector.from_multiset(multiset).to_multiset() == multiset

    def test_equality_and_hash(self):
        assert SparseVector("v", {"a": 1.0}) == SparseVector("v", {"a": 1.0})
        assert SparseVector("v", {"a": 1.0}) != SparseVector("w", {"a": 1.0})
        assert len({SparseVector("v", {"a": 1.0}), SparseVector("v", {"a": 1.0})}) == 1
