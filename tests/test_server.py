"""Tests for the network-facing serving tier (repro.server).

Covers the exception-to-wire error table, the coalescing queues, the app
dispatcher, the live HTTP end-to-end path (upsert → query → delete → query,
bit-identical with direct service calls), backpressure (429 + Retry-After
and recovery), graceful shutdown, admin persist/recover, the ASGI adapter
and the load generators.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import tempfile
import threading
import time

import pytest

from repro.core.exceptions import (
    InvalidMultisetError,
    QueueFullError,
    ReproError,
    ServerError,
    ServingError,
    StorageError,
    StreamingError,
)
from repro.core.multiset import Multiset
from repro.datasets.workload import (
    RequestWorkloadConfig,
    generate_open_loop_arrivals,
    generate_request_workload,
)
from repro.engine import JoinSpec
from repro.serving.api import QueryRequest, QueryResponse
from repro.serving.service import ShardedSimilarityService
from repro.server import (
    ERROR_TABLE,
    CoalescingQueue,
    InProcessServer,
    RemoteServerError,
    ServerConfig,
    SimilarityClient,
    SimilarityServerApp,
    asgi_app,
    classify,
    error_body,
    run_closed_loop,
    run_open_loop,
)
from repro.streaming.view import JoinView
from tests.conftest import make_random_multisets


def corpus(count=16, seed=5):
    return make_random_multisets(count=count, alphabet_size=12,
                                 max_elements=8, seed=seed)


def make_service(num_shards=2, members=None):
    service = ShardedSimilarityService("ruzicka", num_shards=num_shards)
    service.bulk_load(corpus() if members is None else members)
    return service


# ---------------------------------------------------------------------------
# The error table (satellite: one table, stable codes, tested per row)
# ---------------------------------------------------------------------------

class TestErrorTable:
    @pytest.mark.parametrize("exception_class,code,status", ERROR_TABLE)
    def test_every_row_maps_its_own_class(self, exception_class, code,
                                          status):
        error = exception_class.__new__(exception_class)
        Exception.__init__(error, "boom")
        assert classify(error) == (code, status)

    def test_most_specific_row_wins(self):
        assert classify(QueueFullError("full")) == ("queue_full", 429)
        assert classify(ServerError("bad")) == ("server_error", 400)
        assert classify(ServingError("conflict")) == ("serving_error", 409)
        assert classify(StreamingError("bad batch")) == ("streaming_error", 409)
        assert classify(StorageError("io")) == ("storage_error", 500)
        assert classify(InvalidMultisetError("neg")) == ("invalid_multiset", 400)

    def test_unlisted_repro_subclass_inherits_parent_row(self):
        class CustomServingError(ServingError):
            pass

        assert classify(CustomServingError("x")) == ("serving_error", 409)

    def test_base_repro_error_is_500(self):
        assert classify(ReproError("generic")) == ("repro_error", 500)

    def test_non_repro_exception_is_internal(self):
        assert classify(ValueError("nope")) == ("internal_error", 500)

    def test_error_body_shape(self):
        status, body = error_body(ServingError("already indexed"))
        assert status == 409
        assert body == {"error": {"code": "serving_error", "status": 409,
                                  "type": "ServingError",
                                  "message": "already indexed"}}

    def test_queue_full_body_carries_the_backoff_hint(self):
        status, body = error_body(
            QueueFullError("full", retry_after_seconds=2.5, queue="queries"))
        assert status == 429
        assert body["error"]["retry_after_seconds"] == 2.5
        assert body["error"]["queue"] == "queries"


# ---------------------------------------------------------------------------
# CoalescingQueue
# ---------------------------------------------------------------------------

def run_async(coroutine):
    return asyncio.run(coroutine)


class TestCoalescingQueue:
    def make_started(self, execute, **kwargs):
        from concurrent.futures import ThreadPoolExecutor

        queue = CoalescingQueue("test", execute, **kwargs)
        executor = ThreadPoolExecutor(max_workers=1)
        queue.start(executor=executor, lock=threading.Lock())
        return queue, executor

    def test_submits_coalesce_into_batches(self):
        async def scenario():
            batches = []

            def execute(items):
                batches.append(list(items))
                return [item * 10 for item in items]

            queue, executor = self.make_started(execute, max_batch=8)
            futures = [queue.submit(i) for i in range(5)]
            results = await asyncio.gather(*futures)
            await queue.close()
            executor.shutdown()
            assert results == [0, 10, 20, 30, 40]
            assert sum(len(batch) for batch in batches) == 5
            assert queue.stats()["executed_items"] == 5
            return batches

        batches = run_async(scenario())
        # The worker drains greedily: fewer batches than items.
        assert len(batches) < 5

    def test_full_queue_rejects_without_blocking(self):
        async def scenario():
            release = threading.Event()

            def execute(items):
                release.wait(10)
                return [f"ran-{item}" for item in items]

            queue, executor = self.make_started(execute, capacity=2,
                                                max_batch=1)
            first = queue.submit("executing")
            # Give the worker the first item, then fill the queue.
            while queue.stats()["depth"] > 0 \
                    or queue.stats()["executed_batches"] > 0:
                await asyncio.sleep(0.001)
            queued = [queue.submit("queued-a"), queue.submit("queued-b")]
            with pytest.raises(QueueFullError) as caught:
                queue.submit("rejected")
            assert caught.value.queue == "test"
            assert caught.value.retry_after_seconds > 0
            assert queue.stats()["rejected"] == 1
            release.set()
            results = await asyncio.gather(first, *queued)
            await queue.close()
            executor.shutdown()
            assert results == ["ran-executing", "ran-queued-a",
                               "ran-queued-b"]

        run_async(scenario())

    def test_execution_failure_fans_out_to_the_batch(self):
        async def scenario():
            def execute(items):
                raise ServingError("shard exploded")

            queue, executor = self.make_started(execute)
            futures = [queue.submit(i) for i in range(3)]
            for future in futures:
                with pytest.raises(ServingError, match="shard exploded"):
                    await future
            await queue.close()
            executor.shutdown()

        run_async(scenario())

    def test_close_without_drain_rejects_queued_items(self):
        async def scenario():
            release = threading.Event()

            def execute(items):
                release.wait(10)
                return [f"ran-{item}" for item in items]

            queue, executor = self.make_started(execute, max_batch=1)
            executing = queue.submit("executing")
            while queue.stats()["depth"] > 0:
                await asyncio.sleep(0.001)
            abandoned = queue.submit("abandoned")
            # Rejection runs before close's first await; the worker is still
            # blocked on "executing", so "abandoned" is deterministically
            # still queued when it happens.
            close_task = asyncio.ensure_future(queue.close(drain=False))
            await asyncio.sleep(0)
            release.set()
            await close_task
            executor.shutdown()
            assert await executing == "ran-executing"
            with pytest.raises(ServerError, match="shut down"):
                await abandoned
            with pytest.raises(QueueFullError):
                queue.submit("after close")

        run_async(scenario())


# ---------------------------------------------------------------------------
# App dispatch (no sockets)
# ---------------------------------------------------------------------------

async def started_app(**kwargs):
    app = SimilarityServerApp(make_service(), **kwargs)
    await app.startup()
    return app


class TestAppDispatch:
    def test_unknown_path_is_404(self):
        async def scenario():
            app = await started_app()
            status, body, _ = await app.handle("GET", "/nope", None)
            await app.shutdown()
            assert status == 404
            assert body["error"]["code"] == "not_found"

        run_async(scenario())

    def test_wrong_method_is_405_with_allow(self):
        async def scenario():
            app = await started_app()
            status, body, headers = await app.handle("DELETE", "/query", {})
            get_status, _, _ = await app.handle("POST", "/health", {})
            await app.shutdown()
            assert (status, headers["Allow"]) == (405, "POST")
            assert body["error"]["code"] == "method_not_allowed"
            assert get_status == 405

        run_async(scenario())

    def test_non_object_body_is_400(self):
        async def scenario():
            app = await started_app()
            status, body, _ = await app.handle("POST", "/query", [1, 2])
            await app.shutdown()
            assert status == 400
            assert body["error"]["code"] == "bad_request"

        run_async(scenario())

    def test_malformed_query_payload_is_400_server_error(self):
        async def scenario():
            app = await started_app()
            status, body, _ = await app.handle("POST", "/query",
                                               {"query": {"id": "q"}})
            await app.shutdown()
            assert status == 400
            assert body["error"]["code"] == "server_error"

        run_async(scenario())

    def test_trailing_slash_routes_too(self):
        async def scenario():
            app = await started_app()
            status, body, _ = await app.handle("GET", "/health/", None)
            await app.shutdown()
            assert status == 200 and body["status"] == "ok"

        run_async(scenario())

    def test_stats_merges_fleet_snapshot_and_queues(self):
        async def scenario():
            app = await started_app()
            status, body, _ = await app.handle("GET", "/stats", None)
            await app.shutdown()
            assert status == 200
            assert body["measure"] == "ruzicka"
            assert set(body["server"]["queues"]) \
                == {"queries", "writes-shard0", "writes-shard1"}
            assert body["server"]["mode"] == "direct"
            assert "cache/hit_rate" in body["totals"]

        run_async(scenario())

    def test_requests_after_shutdown_are_rejected(self):
        async def scenario():
            app = await started_app()
            await app.shutdown()
            request = QueryRequest.topk(Multiset("q", {"e0": 1}), 2)
            status, body, _ = await app.handle("POST", "/query",
                                               request.to_json_dict())
            assert status == 400
            assert "not accepting" in body["error"]["message"]

        run_async(scenario())

    def test_invalid_config_rejected(self):
        with pytest.raises(ServerError, match="query_queue_capacity"):
            ServerConfig(query_queue_capacity=0)
        with pytest.raises(ServerError, match="retry_after_seconds"):
            ServerConfig(retry_after_seconds=0.0)


# ---------------------------------------------------------------------------
# Live HTTP end-to-end (satellite: wire == direct, bit-identical)
# ---------------------------------------------------------------------------

class TestHttpEndToEnd:
    def test_upsert_query_delete_query_matches_direct_calls(self):
        members = corpus()
        service = make_service(members=members)
        # The twin executes the same operations directly, in process.
        twin = make_service(members=members)
        app = SimilarityServerApp(service)
        with InProcessServer(app) as server:
            with SimilarityClient(server.host, server.port) as client:
                newcomer = Multiset("fresh", {"e0": 3, "e1": 1, "zz": 2})
                probe = QueryRequest.threshold(
                    newcomer.with_id("probe"), 0.2)

                ack = client.upsert(newcomer)
                twin.add(newcomer)
                assert ack == {"indexed": "fresh", "replaced": False}

                assert client.query(probe) == twin.query(probe)
                assert "fresh" in client.query(probe).ids()

                assert client.delete("fresh") == {"deleted": "fresh"}
                twin.remove("fresh")
                assert client.query(probe) == twin.query(probe)
                assert "fresh" not in client.query(probe).ids()

                ranking = QueryRequest.topk(members[0].with_id("probe"), 5)
                assert client.query(ranking) == twin.query(ranking)

    def test_batch_endpoint_matches_direct_batch(self):
        service = make_service()
        app = SimilarityServerApp(service)
        requests = generate_request_workload(
            corpus(), RequestWorkloadConfig(num_requests=12, seed=9))
        with InProcessServer(app) as server:
            with SimilarityClient(server.host, server.port) as client:
                over_wire = client.query_batch(requests)
        assert over_wire == service.batch(requests)

    def test_replace_upsert_reports_replaced(self):
        app = SimilarityServerApp(make_service())
        with InProcessServer(app) as server:
            with SimilarityClient(server.host, server.port) as client:
                client.upsert(Multiset("twice", {"a": 1}))
                ack = client.upsert(Multiset("twice", {"b": 2}))
        assert ack == {"indexed": "twice", "replaced": True}

    def test_delete_of_unknown_id_is_409_serving_error(self):
        app = SimilarityServerApp(make_service())
        with InProcessServer(app) as server:
            with SimilarityClient(server.host, server.port) as client:
                with pytest.raises(RemoteServerError) as caught:
                    client.delete("ghost")
        assert caught.value.code == "serving_error"
        assert caught.value.status == 409

    def test_health_and_shard_stats(self):
        app = SimilarityServerApp(make_service(num_shards=3))
        with InProcessServer(app) as server:
            with SimilarityClient(server.host, server.port) as client:
                health = client.health()
                shards = client.shard_stats()
        assert health["status"] == "ok"
        assert health["num_shards"] == 3
        assert set(shards["per_node"]) == {"node0", "node1", "node2"}

    def test_malformed_json_body_is_400(self):
        app = SimilarityServerApp(make_service())
        with InProcessServer(app) as server:
            connection = http.client.HTTPConnection(server.host, server.port,
                                                    timeout=10)
            connection.request("POST", "/query", body=b"{nope",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            body = json.loads(response.read())
            connection.close()
        assert response.status == 400
        assert body["error"]["code"] == "bad_request"

    def test_admin_persist_and_recover_round_trip(self):
        members = corpus()
        app = SimilarityServerApp(make_service(members=members))
        probe = QueryRequest.threshold(members[0].with_id("probe"), 0.3)
        with tempfile.TemporaryDirectory() as directory:
            target = os.path.join(directory, "snap")
            with InProcessServer(app) as server:
                with SimilarityClient(server.host, server.port) as client:
                    before = client.query(probe)
                    persisted = client.persist(target)
                    assert persisted["num_shards"] == 2
                    assert all(os.path.exists(path)
                               for path in persisted["persisted"])
                    recovered = client.recover(target)
                    assert recovered == {"recovered": True, "num_shards": 2,
                                         "indexed_multisets": len(members)}
                    # The recovered fleet answers identically and still
                    # accepts writes through the rebuilt queues.
                    assert client.query(probe) == before
                    client.upsert(Multiset("fresh", {"e0": 1}))
                    assert client.delete("fresh") == {"deleted": "fresh"}

    def test_view_mode_routes_writes_through_the_join_view(self):
        members = corpus()
        view = JoinView(JoinSpec(measure="ruzicka", threshold=0.5,
                                 algorithm="exact"), members)
        service = ShardedSimilarityService("ruzicka", num_shards=2)
        app = SimilarityServerApp(service, view=view)
        with InProcessServer(app) as server:
            with SimilarityClient(server.host, server.port) as client:
                assert client.health()["mode"] == "view"
                newcomer = Multiset("vnew", dict(members[0].items()))
                ack = client.upsert(newcomer)
                assert ack["indexed"] == "vnew"
                assert "pair_deltas" in ack
                assert "vnew" in view
                assert "vnew" in service
                client.delete("vnew")
                assert "vnew" not in view
                assert "vnew" not in service
                # recover is a direct-mode operation.
                with pytest.raises(RemoteServerError) as caught:
                    client.recover("/nonexistent")
                assert caught.value.code == "server_error"


# ---------------------------------------------------------------------------
# Backpressure (satellite: fill the queue, 429 + Retry-After, recover)
# ---------------------------------------------------------------------------

class TestBackpressure:
    def test_full_queue_answers_429_then_recovers(self):
        service = make_service()
        config = ServerConfig(query_queue_capacity=2, query_max_batch=1,
                              max_in_flight=1, executor_threads=1,
                              retry_after_seconds=0.25)
        app = SimilarityServerApp(service, config=config)
        release = threading.Event()
        original = app._execute_queries

        def blocked_execute(requests):
            release.wait(30)
            return original(requests)

        app._execute_queries = blocked_execute
        request = QueryRequest.threshold(corpus()[0].with_id("probe"), 0.3)

        with InProcessServer(app) as server:
            stats_client = SimilarityClient(server.host, server.port)

            def queue_depth():
                queues = stats_client.stats()["server"]["queues"]
                return (queues["queries"]["admitted"],
                        queues["queries"]["depth"])

            answers = []
            workers = []
            # Admit three requests: one executing (blocked), two queued.
            for admitted_target, depth_target in ((1, 0), (2, 1), (3, 2)):
                worker = threading.Thread(
                    target=lambda: answers.append(
                        SimilarityClient(server.host,
                                         server.port).query(request)))
                worker.start()
                workers.append(worker)
                deadline = time.monotonic() + 10
                while queue_depth() != (admitted_target, depth_target):
                    assert time.monotonic() < deadline, \
                        f"queue never reached {admitted_target}/{depth_target}"
                    time.sleep(0.002)

            # The queue is full: the next request is shed at the door.
            connection = http.client.HTTPConnection(server.host, server.port,
                                                    timeout=10)
            connection.request(
                "POST", "/query",
                body=json.dumps(request.to_json_dict()).encode(),
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            rejected_body = json.loads(response.read())
            retry_after = response.getheader("Retry-After")
            connection.close()

            assert response.status == 429
            assert rejected_body["error"]["code"] == "queue_full"
            assert rejected_body["error"]["retry_after_seconds"] == 0.25
            assert float(retry_after) == pytest.approx(0.25)

            # Unblock: the admitted requests complete, new traffic flows.
            release.set()
            for worker in workers:
                worker.join(timeout=30)
            assert len(answers) == 3
            assert answers[0] == answers[1] == answers[2]
            recovered = stats_client.query(request)
            assert recovered == answers[0]
            queues = stats_client.stats()["server"]["queues"]
            assert queues["queries"]["rejected"] == 1
            stats_client.close()


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------

class TestGracefulShutdown:
    def test_drain_completes_queued_work(self):
        async def scenario():
            app = SimilarityServerApp(
                make_service(),
                config=ServerConfig(query_max_batch=1, executor_threads=1))
            await app.startup()
            request = QueryRequest.topk(corpus()[0].with_id("probe"), 3)
            direct = app.service.batch([request])[0]
            tasks = [asyncio.ensure_future(
                app.handle("POST", "/query", request.to_json_dict()))
                for _ in range(6)]
            # Let admissions land, then drain while work is still queued.
            await asyncio.sleep(0)
            await app.shutdown(drain=True)
            results = await asyncio.gather(*tasks)
            assert all(status == 200 for status, _, _ in results)
            for _, body, _ in results:
                assert QueryResponse.from_json_dict(body) == direct

        run_async(scenario())

    def test_persist_on_shutdown_writes_a_recoverable_fleet(self):
        members = corpus()
        with tempfile.TemporaryDirectory() as directory:
            target = os.path.join(directory, "final")

            async def scenario():
                app = SimilarityServerApp(
                    make_service(members=members),
                    config=ServerConfig(persist_on_shutdown=target))
                await app.startup()
                await app.shutdown(drain=True)

            run_async(scenario())
            recovered = ShardedSimilarityService.recover(target)
        twin = make_service(members=members)
        probe = QueryRequest.threshold(members[0].with_id("probe"), 0.3)
        assert recovered.query(probe) == twin.query(probe)


# ---------------------------------------------------------------------------
# ASGI adapter
# ---------------------------------------------------------------------------

class FakeASGIConnection:
    """Minimal ASGI receive/send pair; ``receive`` blocks until ``push``."""

    def __init__(self, messages=()):
        self.incoming: asyncio.Queue = asyncio.Queue()
        for message in messages:
            self.incoming.put_nowait(message)
        self.sent = []

    def push(self, message):
        self.incoming.put_nowait(message)

    async def receive(self):
        return await self.incoming.get()

    async def send(self, message):
        self.sent.append(message)


class TestASGIAdapter:
    def test_http_scope_answers_like_direct_calls(self):
        service = make_service()
        app = SimilarityServerApp(service)
        application = asgi_app(app)
        request = QueryRequest.topk(corpus()[0].with_id("probe"), 4)

        async def scenario():
            lifespan = FakeASGIConnection([{"type": "lifespan.startup"}])
            lifespan_task = asyncio.ensure_future(application(
                {"type": "lifespan"}, lifespan.receive, lifespan.send))
            while not lifespan.sent:
                await asyncio.sleep(0.001)
            assert lifespan.sent[0] == {"type": "lifespan.startup.complete"}

            http_connection = FakeASGIConnection([
                {"type": "http.request",
                 "body": json.dumps(request.to_json_dict()).encode(),
                 "more_body": False}])
            await application(
                {"type": "http", "method": "POST", "path": "/query"},
                http_connection.receive, http_connection.send)
            start, body = http_connection.sent
            assert start["status"] == 200
            assert (b"content-type", b"application/json") in start["headers"]
            parsed = QueryResponse.from_json_dict(json.loads(body["body"]))

            lifespan.push({"type": "lifespan.shutdown"})
            await lifespan_task
            assert lifespan.sent[-1] == {"type": "lifespan.shutdown.complete"}
            return parsed

        parsed = run_async(scenario())
        assert parsed == service.batch([request])[0]

    def test_http_scope_surfaces_errors_as_json(self):
        async def scenario():
            app = SimilarityServerApp(make_service())
            application = asgi_app(app)
            await app.startup()
            connection = FakeASGIConnection([
                {"type": "http.request", "body": b"{broken",
                 "more_body": False}])
            await application(
                {"type": "http", "method": "POST", "path": "/query"},
                connection.receive, connection.send)
            await app.shutdown()
            start, body = connection.sent
            assert start["status"] == 400
            assert json.loads(body["body"])["error"]["code"] == "bad_request"

        run_async(scenario())


# ---------------------------------------------------------------------------
# Load generators (tentpole: closed- and open-loop replay)
# ---------------------------------------------------------------------------

class TestLoadGenerators:
    def test_closed_loop_replays_everything(self):
        members = corpus()
        service = make_service(members=members)
        requests = generate_request_workload(
            members, RequestWorkloadConfig(num_requests=40, seed=21))
        app = SimilarityServerApp(service)
        with InProcessServer(app) as server:
            report = run_closed_loop(server.host, server.port, requests,
                                     concurrency=4)
        assert report.discipline == "closed_loop"
        assert report.num_requests == 40
        assert report.num_errors == 0
        assert report.num_rejected == 0
        assert report.qps > 0
        assert report.p50_latency_ms <= report.p95_latency_ms \
            <= report.p99_latency_ms <= report.max_latency_ms
        # Answer volume matches a direct replay exactly.
        direct = sum(len(response) for response in service.batch(requests))
        assert report.total_matches == direct

    def test_open_loop_replays_at_scheduled_arrivals(self):
        members = corpus()
        requests = generate_request_workload(
            members, RequestWorkloadConfig(num_requests=20, seed=22))
        arrivals = generate_open_loop_arrivals(20, 2000.0, seed=4)
        assert len(arrivals) == 20
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)
        app = SimilarityServerApp(make_service(members=members))
        with InProcessServer(app) as server:
            report = run_open_loop(server.host, server.port, requests,
                                   arrivals)
        assert report.discipline == "open_loop"
        assert report.num_requests + report.num_rejected == 20
        assert report.num_errors == 0

    def test_report_serialises_flat(self):
        members = corpus()
        app = SimilarityServerApp(make_service(members=members))
        requests = generate_request_workload(
            members, RequestWorkloadConfig(num_requests=5, seed=1))
        with InProcessServer(app) as server:
            report = run_closed_loop(server.host, server.port, requests,
                                     concurrency=1)
        payload = report.to_dict()
        assert json.dumps(payload)  # JSON-safe
        assert payload["num_requests"] == 5

    def test_request_workload_mix_and_determinism(self):
        members = corpus()
        config = RequestWorkloadConfig(num_requests=50,
                                       threshold_fraction=0.5, seed=33)
        first = generate_request_workload(members, config)
        second = generate_request_workload(members, config)
        assert first == second
        kinds = {request.options.kind for request in first}
        assert kinds == {"threshold", "topk"}
        # Same multiset stream for every mix: only the options differ.
        all_threshold = generate_request_workload(
            members, RequestWorkloadConfig(num_requests=50,
                                           threshold_fraction=1.0, seed=33))
        assert [request.query for request in first] \
            == [request.query for request in all_threshold]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCommandLine:
    def test_build_app_demo_and_persist_flags(self):
        from repro.server.__main__ import build_app, build_parser

        args = build_parser().parse_args(
            ["--shards", "2", "--measure", "jaccard", "--demo", "8"])
        app = build_app(args)
        assert app.service.num_shards == 2
        assert app.service.measure.name == "jaccard"
        assert len(app.service) == 8

    def test_build_app_recover_flag(self):
        members = corpus()
        with tempfile.TemporaryDirectory() as directory:
            make_service(members=members).persist(directory)
            from repro.server.__main__ import build_app, build_parser

            args = build_parser().parse_args(["--recover", directory])
            app = build_app(args)
        assert len(app.service) == len(members)
        assert app.service.num_shards == 2
