"""Smoke tests: every script under ``examples/`` must run cleanly.

The examples are the documentation users actually execute, so each one is
run as a real subprocess (fresh interpreter, ``PYTHONPATH=src``, no
deprecated entry points allowed) and must exit 0.  Output is captured and
attached on failure.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_every_example_is_covered():
    """A new example script is automatically picked up by this module."""
    assert EXAMPLE_SCRIPTS, "no examples found"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_cleanly(script):
    environment = dict(os.environ)
    source_path = os.path.join(REPO_ROOT, "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (f"{source_path}{os.pathsep}{existing}"
                                 if existing else source_path)
    completed = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning",
         os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, env=environment, cwd=REPO_ROOT,
        timeout=600)
    assert completed.returncode == 0, (
        f"{script} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout}\n"
        f"--- stderr ---\n{completed.stderr}")
    assert completed.stdout.strip(), f"{script} produced no output"
