"""Tests for the three joining-phase algorithms."""

from __future__ import annotations

import pytest

from repro.core.exceptions import MemoryBudgetExceeded, UnsupportedFeatureError
from repro.core.multiset import Multiset
from repro.core.records import JoinedTuple, explode_multisets
from repro.mapreduce.cluster import Cluster, GOOGLE_MAPREDUCE
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.runner import LocalJobRunner
from repro.similarity.registry import get_measure
from repro.vsmart.lookup import (
    build_lookup1_job,
    lookup_table_from_records,
)
from repro.vsmart.online_aggregation import build_online_aggregation_job
from repro.vsmart.preprocessing import build_stop_word_job, remove_small_multisets
from repro.vsmart.sharding import (
    build_sharding1_job,
    build_sharding2_job,
    element_fingerprint,
)

MEASURE = get_measure("ruzicka")


def expected_joined(multisets):
    """The joined tuples the joining phase must produce, as a set."""
    expected = set()
    for multiset in multisets:
        uni = MEASURE.unilateral(multiset)
        for element, multiplicity in multiset.items():
            expected.add((multiset.id, uni, element, float(multiplicity)))
    return expected


def as_set(joined_records):
    return {(r.multiset_id, r.uni, r.element, float(r.multiplicity))
            for r in joined_records if isinstance(r, JoinedTuple)}


class TestOnlineAggregation:
    def test_produces_correct_joined_tuples(self, small_multisets, test_cluster):
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        result = runner.run(build_online_aggregation_job(MEASURE), raw)
        assert as_set(result.output.records) == expected_joined(small_multisets)

    def test_requires_secondary_keys(self, small_multisets, hadoop_cluster):
        runner = LocalJobRunner(hadoop_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        with pytest.raises(UnsupportedFeatureError):
            runner.run(build_online_aggregation_job(MEASURE), raw)

    def test_combiner_does_not_change_output(self, small_multisets, test_cluster):
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        with_combiner = runner.run(
            build_online_aggregation_job(MEASURE, use_combiners=True), raw)
        without_combiner = runner.run(
            build_online_aggregation_job(MEASURE, use_combiners=False), raw)
        assert as_set(with_combiner.output.records) == as_set(without_combiner.output.records)
        assert (with_combiner.stats.shuffle_bytes
                <= without_combiner.stats.shuffle_bytes)

    def test_counts_multisets(self, small_multisets, test_cluster):
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        result = runner.run(build_online_aggregation_job(MEASURE), raw)
        assert (result.stats.counters["online_aggregation/multisets"]
                == len(small_multisets))


class TestLookup:
    def test_lookup1_builds_correct_table(self, small_multisets, test_cluster):
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        result = runner.run(build_lookup1_job(MEASURE), raw)
        table = lookup_table_from_records(result.output.records)
        assert len(table) == len(small_multisets)
        for multiset in small_multisets:
            assert table[multiset.id] == MEASURE.unilateral(multiset)

    def test_set_measure_table(self, small_multisets, test_cluster):
        measure = get_measure("jaccard")
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        result = runner.run(build_lookup1_job(measure), raw)
        table = lookup_table_from_records(result.output.records)
        for multiset in small_multisets:
            assert table[multiset.id] == (float(multiset.underlying_cardinality),)


class TestSharding:
    def test_sharding1_emits_only_large_multisets(self, test_cluster):
        multisets = [
            Multiset("big", {f"e{i}": 1 for i in range(20)}),
            Multiset("small", {"e1": 5, "e2": 5}),
        ]
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(multisets))
        result = runner.run(build_sharding1_job(MEASURE, cardinality_threshold=10), raw)
        table = lookup_table_from_records(result.output.records)
        assert set(table) == {"big"}
        assert table["big"] == (20.0,)
        assert result.stats.counters["sharding1/sharded_multisets"] == 1

    def test_sharding2_joins_both_kinds(self, small_multisets, test_cluster):
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        sharding1 = runner.run(build_sharding1_job(MEASURE, 10), raw)
        table = lookup_table_from_records(sharding1.output.records)
        sharding2 = runner.run(build_sharding2_job(MEASURE, table), raw)
        assert as_set(sharding2.output.records) == expected_joined(small_multisets)
        counters = sharding2.stats.counters
        assert counters.get("sharding2/sharded_tuples", 0) > 0
        assert counters.get("sharding2/unsharded_tuples", 0) > 0

    def test_extreme_thresholds_still_correct(self, small_multisets, test_cluster):
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        for threshold in (1, 10_000):
            sharding1 = runner.run(build_sharding1_job(MEASURE, threshold), raw)
            table = lookup_table_from_records(sharding1.output.records)
            sharding2 = runner.run(build_sharding2_job(MEASURE, table), raw)
            assert as_set(sharding2.output.records) == expected_joined(small_multisets)

    def test_invalid_parameter(self):
        with pytest.raises(ValueError):
            build_sharding1_job(MEASURE, cardinality_threshold=0)

    def test_fingerprint_deterministic_and_bounded(self):
        from repro.vsmart.sharding import FINGERPRINT_SPACE

        assert element_fingerprint("cookie") == element_fingerprint("cookie")
        assert 0 <= element_fingerprint("cookie") < FINGERPRINT_SPACE

    def test_huge_unsharded_multiset_exhausts_memory(self):
        # With C far above the largest multiset, an unsharded multiset's whole
        # element list lands on one reducer and must fit in memory — the
        # thrashing risk the paper warns about when C is set too high.
        cluster = Cluster(num_machines=2, memory_per_machine=1_500,
                          disk_per_machine=10 ** 9, profile=GOOGLE_MAPREDUCE)
        big = Multiset("huge", {f"element{i:04d}": 1 for i in range(200)})
        runner = LocalJobRunner(cluster)
        raw = Dataset.from_records(explode_multisets([big]))
        sharding2 = build_sharding2_job(MEASURE, {})
        with pytest.raises(MemoryBudgetExceeded):
            runner.run(sharding2, raw)


class TestStopWordPreprocessing:
    def test_drops_frequent_elements(self, test_cluster):
        multisets = [Multiset(f"m{i}", {"common": 1, f"own{i}": 2}) for i in range(5)]
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(multisets))
        result = runner.run(build_stop_word_job(frequency_threshold=3), raw)
        kept_elements = {record.element for record in result.output.records}
        assert "common" not in kept_elements
        assert len(kept_elements) == 5
        assert result.stats.counters["preprocess/stop_words_dropped"] == 1

    def test_keeps_everything_when_threshold_high(self, small_multisets, test_cluster):
        runner = LocalJobRunner(test_cluster)
        raw = Dataset.from_records(explode_multisets(small_multisets))
        result = runner.run(build_stop_word_job(frequency_threshold=10_000), raw)
        assert len(result.output) == len(raw)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            build_stop_word_job(0)

    def test_remove_small_multisets_helper(self):
        multisets = [Multiset("big", {f"e{i}": 1 for i in range(60)}),
                     Multiset("tiny", {"e0": 1})]
        records = explode_multisets(multisets)
        kept = remove_small_multisets(records, minimum_elements=50)
        assert {record.multiset_id for record in kept} == {"big"}
