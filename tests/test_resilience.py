"""Replicated fault-tolerant serving: the chaos and hardening suite (PR 8).

Four layers of coverage:

* unit tests of the resilience primitives — :class:`FaultPolicy`
  determinism, :class:`CircuitBreaker` state machine (fake clock),
  :class:`RetryPolicy`/:class:`RetrySchedule` backoff and deadlines;
* :class:`ReplicatedShard` / :class:`ReplicatedSimilarityService`
  semantics — fan-in, divergence detection, failover, kill/recover,
  persist/recover interchangeability with the unreplicated service, and
  bit-exact parity with an unreplicated oracle in every healthy and
  degraded configuration;
* a Hypothesis chaos state machine interleaving writes, queries, replica
  kills and recoveries, asserting that answers stay bit-identical to the
  unreplicated oracle whenever every shard keeps one healthy replica;
* wire-level hardening — client retry/timeout/breaker behaviour against a
  live :class:`InProcessServer`, brownout degradation, per-request 504s,
  the replica admin endpoints, and graceful drain under injected latency.
"""

from __future__ import annotations

import asyncio
import http.client
import logging
import pickle
import random
import threading
import time

import pytest
from hypothesis import HealthCheck, settings as hyp_settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    QueueFullError,
    ReplicaDivergenceError,
    ReplicaUnavailableError,
    ResilienceError,
    ServingError,
)
from repro.core.multiset import Multiset
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    RENDEZVOUS,
    CircuitBreaker,
    FaultPolicy,
    ReplicatedShard,
    ReplicatedSimilarityService,
    RetryPolicy,
    call_with_policy,
)
from repro.server.app import ServerConfig, SimilarityServerApp
from repro.server.client import (
    ClientTransportError,
    RemoteServerError,
    SimilarityClient,
)
from repro.server.errors import classify, error_body
from repro.server.http import InProcessServer
from repro.serving.api import QueryRequest
from repro.serving.node import ServingNode
from repro.serving.service import ShardedSimilarityService
from tests.conftest import make_random_multisets


def corpus(count: int = 36, seed: int = 11) -> list[Multiset]:
    return make_random_multisets(count, alphabet_size=40, max_elements=12,
                                 seed=seed)


def probe_request(members, kind: str = "threshold") -> QueryRequest:
    query = members[0].with_id("probe")
    if kind == "threshold":
        return QueryRequest.threshold(query, 0.3)
    return QueryRequest.topk(query, 5)


# ---------------------------------------------------------------------------
# FaultPolicy
# ---------------------------------------------------------------------------

class TestFaultPolicy:
    def test_same_seed_injects_the_same_fault_sequence(self):
        def run(seed):
            policy = FaultPolicy(seed=seed, error_probability=0.4,
                                 timeout_probability=0.2)
            outcomes = []
            for _ in range(50):
                try:
                    policy.on_call("op")
                    outcomes.append("ok")
                except InjectedFaultError:
                    outcomes.append("error")
                except DeadlineExceededError:
                    outcomes.append("timeout")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert {"ok", "error", "timeout"} <= set(run(7))

    def test_crash_after_calls_then_revive_consumes_the_trigger(self):
        policy = FaultPolicy(crash_after_calls=2)
        policy.on_call("op")
        policy.on_call("op")
        with pytest.raises(ReplicaUnavailableError):
            policy.on_call("op")
        assert policy.crashed
        policy.revive()
        assert not policy.crashed
        # The fired trigger is consumed: the revived target keeps serving.
        for _ in range(5):
            policy.on_call("op")

    def test_manual_crash_and_operation_filter(self):
        policy = FaultPolicy(error_probability=1.0,
                             operations=frozenset({"query"}))
        policy.on_call("add")  # unmatched: never faults, never counts
        assert policy.calls == 0
        with pytest.raises(InjectedFaultError):
            policy.on_call("query")
        policy = FaultPolicy()
        policy.crash()
        with pytest.raises(ReplicaUnavailableError):
            policy.on_call("anything")
        policy.revive()
        policy.on_call("anything")

    def test_latency_injection_sleeps_and_counts(self):
        policy = FaultPolicy(latency_seconds=0.02)
        start = time.monotonic()
        policy.on_call("op")
        assert time.monotonic() - start >= 0.015
        assert policy.stats()["injected_latency_calls"] == 1

    def test_validation(self):
        with pytest.raises(ResilienceError):
            FaultPolicy(error_probability=1.5)
        with pytest.raises(ResilienceError):
            FaultPolicy(latency_seconds=-1)
        with pytest.raises(ResilienceError):
            FaultPolicy(crash_after_calls=-1)

    def test_call_with_policy_wraps_and_passes_through(self):
        assert call_with_policy(None, "op", lambda a, b: a + b, 1, 2) == 3
        policy = FaultPolicy(error_probability=1.0)
        with pytest.raises(InjectedFaultError):
            call_with_policy(policy, "op", lambda: 1)


# ---------------------------------------------------------------------------
# CircuitBreaker (fake clock: no sleeping)
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker("t", failure_threshold=3,
                                 reset_timeout_seconds=10.0, clock=clock,
                                 **kwargs)
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as caught:
            breaker.allow()
        assert 0 < caught.value.retry_after_seconds <= 10.0

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(10.1)
        assert breaker.state == HALF_OPEN
        breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens_for_a_full_window(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(10.1)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        assert breaker.stats()["opens"] == 2

    def test_half_open_probe_quota_is_bounded(self):
        breaker, clock = self.make(half_open_max_probes=1)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(10.1)
        breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_validation(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(reset_timeout_seconds=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(half_open_max_probes=0)


# ---------------------------------------------------------------------------
# RetryPolicy / RetrySchedule
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(deadline_seconds=0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=10, base_backoff_seconds=0.1,
                             backoff_multiplier=2.0, max_backoff_seconds=0.5,
                             jitter=0.0)
        schedule = policy.schedule(random.Random(0))
        backoffs = []
        for _ in range(5):
            schedule.start_attempt()
            backoffs.append(schedule.backoff_seconds())
        assert backoffs == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_stays_within_the_band_and_is_seeded(self):
        policy = RetryPolicy(max_attempts=50, base_backoff_seconds=1.0,
                             backoff_multiplier=1.0, max_backoff_seconds=1.0,
                             jitter=0.25)
        schedule = policy.schedule(random.Random(42))
        draws = []
        for _ in range(20):
            schedule.start_attempt()
            draws.append(schedule.backoff_seconds())
        assert all(0.75 <= value <= 1.25 for value in draws)
        assert len(set(round(value, 6) for value in draws)) > 1
        replay = policy.schedule(random.Random(42))
        for expected in draws:
            replay.start_attempt()
            assert replay.backoff_seconds() == pytest.approx(expected)

    def test_server_hint_raises_never_lowers_the_backoff(self):
        policy = RetryPolicy(base_backoff_seconds=0.1, jitter=0.0)
        schedule = policy.schedule(random.Random(0))
        schedule.start_attempt()
        assert schedule.backoff_seconds(server_hint=2.0) == 2.0
        assert schedule.backoff_seconds(server_hint=0.001) == \
            pytest.approx(0.1)

    def test_attempt_budget_is_enforced(self):
        schedule = RetryPolicy(max_attempts=2).schedule(random.Random(0))
        schedule.start_attempt()
        schedule.start_attempt()
        assert schedule.attempts_left == 0
        with pytest.raises(ResilienceError, match="budget exhausted"):
            schedule.start_attempt()

    def test_deadline_check_and_refusal_to_oversleep(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=10, base_backoff_seconds=5.0,
                             max_backoff_seconds=5.0, jitter=0.0,
                             deadline_seconds=3.0)
        schedule = policy.schedule(random.Random(0), clock=clock)
        schedule.start_attempt()
        # The 5s backoff does not fit the 3s deadline: raise, don't sleep.
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError) as caught:
            schedule.sleep_before_retry()
        assert time.monotonic() - start < 1.0
        assert caught.value.retry_after_seconds == pytest.approx(5.0)
        clock.advance(3.1)
        with pytest.raises(DeadlineExceededError):
            schedule.check_deadline("probe")
        with pytest.raises(DeadlineExceededError):
            schedule.start_attempt()

    def test_exceptions_pickle_round_trip(self):
        for error in (ReplicaUnavailableError("down", 2.5),
                      CircuitOpenError("open", 0.5),
                      DeadlineExceededError("late", 1.0, 0.25)):
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert str(clone) == str(error)
            assert clone.retry_after_seconds == error.retry_after_seconds


# ---------------------------------------------------------------------------
# ReplicatedShard
# ---------------------------------------------------------------------------

class TestReplicatedShard:
    def test_parity_with_a_single_node_under_churn(self):
        members = corpus()
        shard = ReplicatedShard("ruzicka", 3)
        node = ServingNode("ruzicka")
        shard.bulk_load(members[:20])
        node.bulk_load(members[:20])
        shard.add(members[20])
        node.add(members[20])
        shard.remove(members[3].id)
        node.remove(members[3].id)
        for kind in ("threshold", "topk"):
            request = probe_request(members, kind)
            # Every replica answers identically, so spreading cannot show.
            for _ in range(shard.replication_factor + 1):
                assert shard.query(request) == node.query(request)
        batch = [probe_request(members, "threshold"),
                 probe_request(members, "topk")]
        assert shard.batch(batch) == node.batch(batch)

    def test_deterministic_serving_errors_propagate_without_eject(self):
        shard = ReplicatedShard("ruzicka", 2)
        shard.bulk_load(corpus()[:5])
        with pytest.raises(ServingError):
            shard.add(corpus()[0])  # duplicate add
        with pytest.raises(ServingError):
            shard.remove("ghost")
        assert shard.num_healthy() == 2
        shard.check_divergence()

    def test_bulk_load_rejects_bad_batches_before_any_replica_mutates(self):
        members = corpus()
        shard = ReplicatedShard("ruzicka", 2)
        shard.bulk_load(members[:5])
        # Node bulk loads apply incrementally, so a duplicate rejected
        # mid-batch on the first replica would leave it partially loaded
        # while its peers got nothing.  The shard validates up front: no
        # replica mutates, none diverges, none is ejected.
        with pytest.raises(ServingError, match="already indexed"):
            shard.bulk_load([members[5], members[2], members[6]])
        with pytest.raises(ServingError, match="twice"):
            shard.bulk_load([members[7], members[8], members[7]])
        assert shard.num_healthy() == 2
        assert all(len(replica.node) == 5 for replica in shard.replicas)
        shard.check_divergence()
        # Clean batches and replace-mode collisions still load everywhere.
        assert shard.bulk_load(members[5:8]) == 3
        assert shard.bulk_load(members[:8], replace=True) == 8
        shard.check_divergence()
        assert all(len(replica.node) == 8 for replica in shard.replicas)

    def test_write_fault_ejects_the_replica_and_survivors_stay_exact(self):
        members = corpus()
        policies = [None, FaultPolicy(crash_after_calls=10)]
        shard = ReplicatedShard("ruzicka", 2, fault_policies=policies)
        node = ServingNode("ruzicka")
        for member in members[:15]:
            shard.add(member)
            node.add(member)
        # Replica 1 crashed mid-stream (after its 10th call) and was
        # ejected; replica 0 kept every write.
        assert shard.num_healthy() == 1
        assert not shard.replicas[1].healthy
        assert "crash" in shard.replicas[1].down_reason
        request = probe_request(members)
        assert shard.query(request) == node.query(request)
        assert shard.stats()["ejections"] == 1

    def test_read_fault_fails_over_and_the_answer_is_exact(self):
        members = corpus()
        policies = [FaultPolicy(error_probability=1.0,
                                operations=frozenset({"query"})), None]
        shard = ReplicatedShard("ruzicka", 2, fault_policies=policies)
        node = ServingNode("ruzicka")
        shard.bulk_load(members[:10])
        node.bulk_load(members[:10])
        request = probe_request(members)
        # Whichever replica round-robin prefers, the faulty one ejects and
        # the healthy one answers.
        assert shard.query(request) == node.query(request)
        assert shard.query(request) == node.query(request)
        assert not shard.replicas[0].healthy
        assert shard.stats()["failovers"] == 1

    def test_all_replicas_down_raises_replica_unavailable(self):
        shard = ReplicatedShard("ruzicka", 2)
        shard.bulk_load(corpus()[:5])
        shard.kill(0)
        shard.kill(1)
        with pytest.raises(ReplicaUnavailableError):
            shard.query(probe_request(corpus()))
        with pytest.raises(ReplicaUnavailableError):
            shard.add(Multiset("new", {"a": 1}))
        with pytest.raises(ReplicaUnavailableError):
            len(shard)

    def test_kill_loses_state_and_peer_recovery_rebuilds_exactly(self):
        members = corpus()
        shard = ReplicatedShard("ruzicka", 2)
        shard.bulk_load(members[:20])
        killed = shard.kill(1)
        assert len(killed.node) == 0  # the crash lost its memory
        # Writes continue against the survivor.
        shard.add(members[20])
        shard.remove(members[0].id)
        shard.recover(1)
        assert shard.num_healthy() == 2
        assert len(shard.replicas[0].node) == len(shard.replicas[1].node)
        request = probe_request(members)
        answers = {shard.query(request) for _ in range(4)}
        assert len(answers) == 1  # both replicas answer identically
        assert shard.stats()["recoveries"] == 1

    def test_recovery_from_storage_source(self, tmp_path):
        members = corpus()
        shard = ReplicatedShard("ruzicka", 2)
        shard.bulk_load(members[:12])
        path = str(tmp_path / "replica.sqlite")
        shard.replicas[0].node.persist(path)
        shard.kill(1)
        shard.recover(1, source=path)
        assert shard.num_healthy() == 2
        shard.check_divergence()

    def test_recovering_a_healthy_replica_is_refused(self):
        shard = ReplicatedShard("ruzicka", 2)
        with pytest.raises(ResilienceError, match="healthy"):
            shard.recover(0)
        with pytest.raises(ResilienceError, match="no replica"):
            shard.kill(9)

    def test_out_of_band_write_is_divergence(self):
        members = corpus()
        shard = ReplicatedShard("ruzicka", 2)
        shard.bulk_load(members[:5])
        # Sneak a write past the fan-in path.
        shard.replicas[0].node.add(members[30])
        with pytest.raises(ReplicaDivergenceError, match="outside the fan-in"):
            shard.check_divergence()

    def test_rendezvous_routes_a_query_to_one_stable_replica(self):
        members = corpus()
        shard = ReplicatedShard("ruzicka", 3, read_strategy=RENDEZVOUS)
        shard.bulk_load(members[:10])
        request = probe_request(members)
        for _ in range(6):
            shard.query(request)
        served = [replica.reads_served for replica in shard.replicas]
        assert sorted(served) == [0, 0, 6]  # same replica every time
        # A different query may land elsewhere; identical content must not.
        other = QueryRequest.threshold(members[5].with_id("probe2"), 0.3)
        first = shard._read_candidates(other)[0]
        assert shard._read_candidates(other)[0] is first

    def test_round_robin_spreads_reads(self):
        members = corpus()
        shard = ReplicatedShard("ruzicka", 2)
        shard.bulk_load(members[:10])
        request = probe_request(members)
        for _ in range(6):
            shard.query(request)
        served = [replica.reads_served for replica in shard.replicas]
        assert served == [3, 3]

    def test_validation(self):
        with pytest.raises(ResilienceError):
            ReplicatedShard(replication_factor=0)
        with pytest.raises(ResilienceError):
            ReplicatedShard(read_strategy="random")
        with pytest.raises(ResilienceError):
            ReplicatedShard(replication_factor=2, fault_policies=[None])


# ---------------------------------------------------------------------------
# ReplicatedSimilarityService
# ---------------------------------------------------------------------------

class TestReplicatedService:
    def make_pair(self, members, *, num_shards=3, replication_factor=2,
                  **kwargs):
        replicated = ReplicatedSimilarityService(
            "ruzicka", num_shards, replication_factor=replication_factor,
            **kwargs)
        oracle = ShardedSimilarityService("ruzicka", num_shards)
        replicated.bulk_load(members)
        oracle.bulk_load(members)
        return replicated, oracle

    def assert_parity(self, replicated, oracle, members):
        requests = [probe_request(members, "threshold"),
                    probe_request(members, "topk"),
                    QueryRequest.threshold(members[7].with_id("p2"), 0.5),
                    QueryRequest.topk(members[9].with_id("p3"), 3)]
        for request in requests:
            assert replicated.query(request) == oracle.query(request)
        assert replicated.batch(requests) == oracle.batch(requests)

    def test_parity_healthy_and_after_killing_one_replica_per_shard(self):
        members = corpus(60)
        replicated, oracle = self.make_pair(members)
        assert len(replicated) == len(oracle) == len(members)
        assert replicated.shard_for("anything") == oracle.shard_for("anything")
        self.assert_parity(replicated, oracle, members)
        for shard in range(replicated.num_shards):
            replicated.kill_replica(shard, shard % 2)
        self.assert_parity(replicated, oracle, members)
        # Writes still apply in degraded mode; parity holds after them.
        extra = Multiset("extra", dict(members[0].items()))
        replicated.add(extra)
        oracle.add(extra)
        replicated.remove(members[1].id)
        oracle.remove(members[1].id)
        self.assert_parity(replicated, oracle, members)
        # Recover everyone and check again.
        for shard in range(replicated.num_shards):
            replicated.recover_replica(shard, shard % 2)
        self.assert_parity(replicated, oracle, members)
        assert replicated.neighbours(members[0].id, 0.3) == \
            oracle.neighbours(members[0].id, 0.3)

    def test_health_check_ejects_crashed_and_readmits_down(self):
        members = corpus()
        policy = FaultPolicy()
        replicated = ReplicatedSimilarityService(
            "ruzicka", 2, replication_factor=2,
            fault_policy_factory=lambda shard, replica: (
                policy if (shard, replica) == (0, 1) else None))
        replicated.bulk_load(members)
        policy.crash()  # the replica will fail its next probe
        report = replicated.health_check(readmit=False)
        assert "shard0/replica1" in report["ejected"]
        assert "shard0/replica1" in \
            replicated.health_check(readmit=False)["down"]
        report = replicated.health_check()
        assert "shard0/replica1" in report["readmitted"]
        assert len(replicated.health_check()["healthy"]) == 4

    def test_persist_recover_interchangeable_with_unreplicated(self, tmp_path):
        members = corpus()
        replicated, oracle = self.make_pair(members, num_shards=2)
        replicated_dir = str(tmp_path / "replicated")
        oracle_dir = str(tmp_path / "oracle")
        replicated.persist(replicated_dir)
        oracle.persist(oracle_dir)
        # Each class recovers the other's directory; answers stay exact.
        cross_replicated = ReplicatedSimilarityService.recover(
            oracle_dir, replication_factor=3)
        cross_plain = ShardedSimilarityService.recover(replicated_dir)
        assert cross_replicated.replication_factor == 3
        self.assert_parity(cross_replicated, oracle, members)
        self.assert_parity(replicated, cross_plain, members)

    def test_to_unreplicated_is_the_parity_oracle(self):
        members = corpus()
        replicated, _ = self.make_pair(members)
        mirror = replicated.to_unreplicated()
        assert isinstance(mirror, ShardedSimilarityService)
        self.assert_parity(replicated, mirror, members)

    def test_stats_and_snapshot_shape(self):
        members = corpus()
        replicated, _ = self.make_pair(members, num_shards=2)
        replicated.query(probe_request(members))
        replicated.kill_replica(0, 1)
        stats = replicated.stats()
        assert stats["replication_factor"] == 2
        assert stats["resilience/ejections"] == 1
        assert stats["indexed_multisets"] == len(members)
        snapshot = replicated.snapshot()
        assert snapshot["replica_health"]["shard0"]["healthy"] == 1
        per_node = replicated.per_node_stats()
        assert set(per_node) == {"shard0/replica0", "shard0/replica1",
                                 "shard1/replica0", "shard1/replica1"}
        assert "ReplicatedSimilarityService" in repr(replicated)

    def test_invalid_shard_index_and_neighbours_of_unknown(self):
        members = corpus()
        replicated, _ = self.make_pair(members)
        with pytest.raises(ResilienceError):
            replicated.kill_replica(99, 0)
        with pytest.raises(ServingError):
            replicated.neighbours("ghost", 0.5)


# ---------------------------------------------------------------------------
# Chaos: Hypothesis state machine against the unreplicated oracle
# ---------------------------------------------------------------------------

CHAOS_IDS = [f"c{index}" for index in range(12)]
CHAOS_CONTENTS = st.dictionaries(
    st.sampled_from([f"e{index}" for index in range(10)]),
    st.integers(min_value=1, max_value=4), min_size=1, max_size=4)


class ReplicatedChaosMachine(RuleBasedStateMachine):
    """Replicated answers stay bit-exact under interleaved faults.

    The replicated fleet (2 shards x RF 2, with a fault policy injecting
    latency on one replica) tracks a plain unreplicated
    :class:`ShardedSimilarityService` through upserts, deletes, threshold
    and top-k queries, replica kills and recoveries.  Kills respect the
    promise's precondition — at least one healthy replica per shard — and
    under it every answer must equal the oracle's bit-for-bit, with no
    error ever surfacing to the caller.
    """

    def __init__(self):
        super().__init__()
        self.replicated = None
        self.oracle = None
        self.model: dict[str, Multiset] = {}

    @initialize(seed=st.integers(min_value=0, max_value=2 ** 16))
    def build(self, seed):
        # A little injected latency on one replica per shard keeps the
        # fault seam engaged without ever breaking exactness.
        self.replicated = ReplicatedSimilarityService(
            "ruzicka", 2, replication_factor=2,
            fault_policy_factory=lambda shard, replica: (
                FaultPolicy(seed=seed + shard, latency_seconds=0.0005)
                if replica == 1 else None))
        self.oracle = ShardedSimilarityService("ruzicka", 2)
        self.model = {}

    # -- writes ---------------------------------------------------------------

    @rule(data=st.data(), contents=CHAOS_CONTENTS)
    def upsert(self, data, contents):
        target = data.draw(st.sampled_from(CHAOS_IDS), label="upsert target")
        member = Multiset(target, contents)
        replace = target in self.model
        self.replicated.add(member, replace=replace)
        self.oracle.add(member, replace=replace)
        self.model[target] = member

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        target = data.draw(st.sampled_from(sorted(self.model)),
                           label="delete target")
        self.replicated.remove(target)
        self.oracle.remove(target)
        del self.model[target]

    # -- faults ---------------------------------------------------------------

    @rule(data=st.data())
    def kill_a_replica(self, data):
        candidates = [
            (shard_index, replica_index)
            for shard_index, shard in enumerate(self.replicated.shards)
            if shard.num_healthy() >= 2
            for replica_index, replica in enumerate(shard.replicas)
            if replica.healthy
        ]
        if not candidates:
            return
        shard, replica = data.draw(st.sampled_from(candidates),
                                   label="kill target")
        self.replicated.kill_replica(shard, replica)

    @rule(data=st.data())
    def recover_a_replica(self, data):
        candidates = [
            (shard_index, replica_index)
            for shard_index, shard in enumerate(self.replicated.shards)
            if shard.num_healthy() >= 1
            for replica_index, replica in enumerate(shard.replicas)
            if not replica.healthy
        ]
        if not candidates:
            return
        shard, replica = data.draw(st.sampled_from(candidates),
                                   label="recover target")
        self.replicated.recover_replica(shard, replica)

    # -- reads ----------------------------------------------------------------

    @rule(threshold=st.sampled_from([0.2, 0.5, 0.8]),
          contents=CHAOS_CONTENTS)
    def query_threshold(self, threshold, contents):
        request = QueryRequest.threshold(Multiset("q", contents), threshold)
        assert self.replicated.query(request) == self.oracle.query(request)

    @rule(k=st.integers(min_value=1, max_value=6),
          contents=CHAOS_CONTENTS)
    def query_topk(self, k, contents):
        request = QueryRequest.topk(Multiset("q", contents), k)
        assert self.replicated.query(request) == self.oracle.query(request)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), k=st.integers(min_value=1, max_value=4))
    def query_batch(self, data, k):
        member = self.model[data.draw(st.sampled_from(sorted(self.model)),
                                      label="batch anchor")]
        requests = [QueryRequest.topk(member.with_id("q"), k),
                    QueryRequest.threshold(member.with_id("q"), 0.4)]
        assert self.replicated.batch(requests) == self.oracle.batch(requests)

    # -- invariants -----------------------------------------------------------

    @invariant()
    def membership_and_health_contract(self):
        if self.replicated is None:
            return
        assert len(self.replicated) == len(self.model)
        for shard in self.replicated.shards:
            assert shard.num_healthy() >= 1
            shard.check_divergence()


ReplicatedChaosMachine.TestCase.settings = hyp_settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])
TestReplicatedChaos = ReplicatedChaosMachine.TestCase


# ---------------------------------------------------------------------------
# Error table additions
# ---------------------------------------------------------------------------

class TestErrorTable:
    def test_resilience_errors_have_stable_codes(self):
        assert classify(ReplicaUnavailableError("x")) == \
            ("replica_unavailable", 503)
        assert classify(CircuitOpenError("x")) == ("circuit_open", 503)
        assert classify(DeadlineExceededError("x")) == \
            ("deadline_exceeded", 504)
        assert classify(ReplicaDivergenceError("x")) == \
            ("replica_divergence", 500)
        assert classify(ResilienceError("x")) == ("resilience_error", 500)
        assert classify(InjectedFaultError("x")) == ("resilience_error", 500)

    def test_retry_after_surfaces_in_bodies(self):
        status, body = error_body(ReplicaUnavailableError("down", 2.5))
        assert status == 503
        assert body["error"]["retry_after_seconds"] == 2.5
        status, body = error_body(DeadlineExceededError("late", 1.0, 0.75))
        assert status == 504
        assert body["error"]["retry_after_seconds"] == 0.75
        status, body = error_body(ReplicaDivergenceError("diverged"))
        assert "retry_after_seconds" not in body["error"]


# ---------------------------------------------------------------------------
# Wire hardening: client retries, timeouts, breaker, reconnect
# ---------------------------------------------------------------------------

def make_app(members=None, *, replicated=False, **config_kwargs):
    if replicated:
        service = ReplicatedSimilarityService("ruzicka", 2,
                                              replication_factor=2)
    else:
        service = ShardedSimilarityService("ruzicka", 2)
    if members:
        service.bulk_load(members)
    config = ServerConfig(**config_kwargs) if config_kwargs else None
    return SimilarityServerApp(service, config=config)


FAST_RETRIES = RetryPolicy(max_attempts=3, base_backoff_seconds=0.01,
                           max_backoff_seconds=0.05, jitter=0.0, seed=1)


class TestClientHardening:
    def test_idempotent_query_retries_transient_503_then_succeeds(self):
        members = corpus()
        app = make_app(members)
        original = app._execute_queries
        failures = iter([True, False])

        def flaky(requests):
            if next(failures, False):
                raise ReplicaUnavailableError("transient", 0.01)
            return original(requests)

        app._execute_queries = flaky
        request = probe_request(members)
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            answer = client.query(request)
        assert client.retries == 1
        assert answer == app.service.query(request)

    def test_write_does_not_retry_after_the_request_was_sent(self):
        members = corpus()
        app = make_app(members)

        def always_down(writes):
            raise ReplicaUnavailableError("shard down", 0.01)

        app._execute_direct_writes = always_down
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            with pytest.raises(RemoteServerError) as caught:
                client.upsert(Multiset("new", {"a": 1}))
        assert caught.value.code == "replica_unavailable"
        assert caught.value.status == 503
        assert client.retries == 0

    def test_writes_retry_when_the_connection_never_opened(self):
        # Nothing listens on this socket: every attempt fails at connect,
        # which is provably-unsent and therefore retryable even for writes.
        client = SimilarityClient("127.0.0.1", 1, connect_timeout=0.25,
                                  retry_policy=FAST_RETRIES,
                                  breaker_failure_threshold=100)
        with pytest.raises(ClientTransportError) as caught:
            client.upsert(Multiset("new", {"a": 1}))
        assert not caught.value.sent
        assert client.retries == FAST_RETRIES.max_attempts - 1

    def test_circuit_breaker_opens_and_fails_locally(self):
        client = SimilarityClient(
            "127.0.0.1", 1, connect_timeout=0.25,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_failure_threshold=2,
            breaker_reset_timeout_seconds=60.0)
        for _ in range(2):
            with pytest.raises(ClientTransportError):
                client.health()
        with pytest.raises(CircuitOpenError) as caught:
            client.health()
        assert caught.value.retry_after_seconds > 0
        stats = client.breaker_stats()["/health"]
        assert stats["state"] == OPEN
        assert stats["calls_refused"] == 1
        # Breakers are per endpoint: /stats is still closed (and fails on
        # transport, not on the breaker).
        with pytest.raises(ClientTransportError):
            client.stats()

    def test_client_deadline_bounds_the_whole_logical_request(self):
        client = SimilarityClient(
            "127.0.0.1", 1, connect_timeout=0.25,
            retry_policy=RetryPolicy(max_attempts=100,
                                     base_backoff_seconds=0.2, jitter=0.0,
                                     deadline_seconds=0.5),
            breaker_failure_threshold=1000)
        start = time.monotonic()
        with pytest.raises((DeadlineExceededError, ClientTransportError)):
            client.health()
        assert time.monotonic() - start < 5.0

    def test_dropped_keep_alive_is_resent_once(self):
        members = corpus()
        app = make_app(members)
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            first = client.health()
            assert first["status"] == "ok"
            # Simulate the server dropping the idle kept-alive socket.
            client._connection.sock.close()
            assert client.health() == first
        assert client.reconnects == 1
        assert client.retries == 0

    def test_dropped_keep_alive_write_is_not_resent_after_sending(self):
        members = corpus()
        app = make_app(members)
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            assert client.health()["status"] == "ok"
            # The reused socket dies *after* the request went out: the
            # server may already have applied the write, so transparently
            # resending it could double-apply.  The client must surface
            # the ambiguity (sent=True) instead.
            connection = client._connection

            def dropped_mid_flight():
                raise http.client.RemoteDisconnected(
                    "server closed the connection mid-response")

            connection.getresponse = dropped_mid_flight
            with pytest.raises(ClientTransportError) as caught:
                client.upsert(Multiset("new", {"a": 1}))
        assert caught.value.sent
        assert client.reconnects == 0
        assert client.retries == 0

    def test_client_fault_policy_seam(self):
        client = SimilarityClient(
            "127.0.0.1", 1, retry_policy=RetryPolicy(max_attempts=1),
            fault_policy=FaultPolicy(error_probability=1.0))
        with pytest.raises(InjectedFaultError):
            client.health()


# ---------------------------------------------------------------------------
# Server hardening: timeouts, brownout, admin endpoints, drain
# ---------------------------------------------------------------------------

class TestServerHardening:
    def test_server_config_validation(self):
        with pytest.raises(Exception, match="request_timeout_seconds"):
            ServerConfig(request_timeout_seconds=0)
        with pytest.raises(Exception, match="health_check_interval_seconds"):
            ServerConfig(health_check_interval_seconds=-1)
        with pytest.raises(Exception, match="brownout_queue_depth"):
            ServerConfig(brownout_queue_depth=0)
        with pytest.raises(Exception, match="brownout_topk_cap"):
            ServerConfig(brownout_topk_cap=0)

    def test_slow_request_fails_with_504_and_retry_after(self):
        members = corpus()
        app = make_app(members, request_timeout_seconds=0.1,
                       query_max_batch=1, max_in_flight=1,
                       executor_threads=1, retry_after_seconds=0.05)
        release = threading.Event()
        original = app._execute_queries

        def slow(requests):
            release.wait(10)
            return original(requests)

        app._execute_queries = slow
        request = probe_request(members)
        try:
            with InProcessServer(app, drain_on_close=False) as server:
                connection = http.client.HTTPConnection(
                    server.host, server.port, timeout=10)
                import json as json_module

                connection.request(
                    "POST", "/query",
                    body=json_module.dumps(request.to_json_dict()).encode(),
                    headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                body = json_module.loads(response.read())
                retry_after = response.getheader("Retry-After")
                connection.close()
                assert response.status == 504
                assert body["error"]["code"] == "deadline_exceeded"
                assert body["error"]["retry_after_seconds"] == 0.05
                assert float(retry_after) == pytest.approx(0.05)
                assert app.deadline_failures == 1
                release.set()
        finally:
            release.set()

    def test_brownout_degrades_queued_topk_requests(self):
        members = corpus()
        app = make_app(members, query_queue_capacity=32, query_max_batch=1,
                       max_in_flight=1, executor_threads=1,
                       brownout_queue_depth=1, brownout_topk_cap=2,
                       brownout_threshold_floor=0.6)
        release = threading.Event()
        original = app._execute_queries

        def blocked(requests):
            release.wait(20)
            return original(requests)

        app._execute_queries = blocked
        request = QueryRequest.topk(members[0].with_id("probe"), 10)
        answers = []
        try:
            with InProcessServer(app) as server:
                def ask():
                    client = SimilarityClient(server.host, server.port)
                    answers.append(client.query(request))

                first = threading.Thread(target=ask)
                first.start()
                # Wait until the first query is executing (blocked).
                deadline = time.monotonic() + 10
                while app._query_queue.stats()["admitted"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                # Queue two more: one fills the queue (depth 1), the next
                # is admitted during brownout and degrades.
                rest = [threading.Thread(target=ask) for _ in range(3)]
                for worker in rest:
                    worker.start()
                    time.sleep(0.1)
                release.set()
                for worker in [first, *rest]:
                    worker.join(timeout=20)
        finally:
            release.set()
        assert len(answers) == 4
        sizes = sorted(len(answer) for answer in answers)
        assert sizes[0] <= 2, sizes  # somebody got the degraded answer
        assert sizes[-1] == 10, sizes  # and somebody got the full one
        assert app.degraded_served >= 1
        # The degraded answer is a truncation of the full one.
        full = max(answers, key=len)
        for answer in answers:
            assert list(answer)[:len(answer)] == list(full)[:len(answer)]

    def test_admin_endpoints_drive_kill_revive_and_health(self):
        members = corpus()
        app = make_app(members, replicated=True)
        request = probe_request(members)
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            before = client.query(request)
            replicas = client.replicas()
            assert replicas["replication_factor"] == 2
            assert all(entry["healthy"] == 2
                       for entry in replicas["replicas"].values())
            ack = client.kill_replica(0, 1)
            assert ack["killed"]["shard"] == 0
            assert client.replicas()["replicas"]["shard0"]["healthy"] == 1
            assert client.query(request) == before
            client.revive_replica(0, 1)
            assert client.replicas()["replicas"]["shard0"]["healthy"] == 2
            assert client.query(request) == before
            with pytest.raises(RemoteServerError) as caught:
                client.kill_replica(99, 0)
            assert caught.value.code == "resilience_error"
            with pytest.raises(RemoteServerError) as caught:
                client._request("POST", "/admin/kill",
                                {"shard": "zero", "replica": 0},
                                idempotent=False)
            assert caught.value.code == "server_error"

    def test_admin_endpoints_refuse_unreplicated_fleets(self):
        app = make_app(corpus())
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            for call in (client.replicas,
                         lambda: client.kill_replica(0, 0),
                         lambda: client.revive_replica(0, 0)):
                with pytest.raises(RemoteServerError) as caught:
                    call()
                assert caught.value.code == "server_error"
                assert "--replication" in str(caught.value)

    def test_health_loop_readmits_a_killed_replica(self):
        members = corpus()
        service = ReplicatedSimilarityService("ruzicka", 2,
                                              replication_factor=2)
        service.bulk_load(members)
        app = SimilarityServerApp(
            service, config=ServerConfig(health_check_interval_seconds=0.05))
        request = probe_request(members)
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            before = client.query(request)
            client.kill_replica(1, 0)
            deadline = time.monotonic() + 10
            while True:
                replicas = client.replicas()
                if all(entry["healthy"] == 2
                       for entry in replicas["replicas"].values()):
                    break
                assert time.monotonic() < deadline, \
                    f"health loop never readmitted: {replicas}"
                time.sleep(0.05)
            assert client.query(request) == before
            assert replicas["last_health_report"] is not None

    def test_replicated_persist_recover_over_the_wire(self, tmp_path):
        members = corpus()
        app = make_app(members, replicated=True)
        request = probe_request(members)
        directory = str(tmp_path / "snap")
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            before = client.query(request)
            client.persist(directory)
            recovered = client.recover(directory)
            assert recovered["recovered"] is True
            # The recovered fleet is still replicated.
            assert app.service.replication_factor == 2
            assert client.query(request) == before
            assert client.replicas()["replication_factor"] == 2

    def test_recover_preserves_fleet_tuning(self, tmp_path):
        members = corpus()
        service = ReplicatedSimilarityService(
            "ruzicka", 2, replication_factor=3, cache_capacity=7,
            read_strategy=RENDEZVOUS)
        service.bulk_load(members)
        app = SimilarityServerApp(service)
        directory = str(tmp_path / "snap")
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            client.persist(directory)
            client.recover(directory)
        # /admin/recover must not silently reset the running fleet's
        # tuning to the constructor defaults.
        assert app.service.replication_factor == 3
        assert app.service.read_strategy == RENDEZVOUS
        assert app.service.cache_capacity == 7
        # The unreplicated fleet keeps its cache size too.
        unreplicated = ShardedSimilarityService("ruzicka", 2,
                                                cache_capacity=9)
        unreplicated.bulk_load(members)
        app = SimilarityServerApp(unreplicated)
        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port,
                                      retry_policy=FAST_RETRIES)
            client.persist(directory)
            client.recover(directory)
        assert app.service.cache_capacity == 9

    def test_orphaned_deadline_task_failure_is_logged(self, caplog):
        app = make_app(corpus(), request_timeout_seconds=0.05)

        async def scenario():
            async def late_failure():
                await asyncio.sleep(0.2)
                raise QueueFullError("failed after the caller gave up", 0.1)

            with pytest.raises(DeadlineExceededError):
                await app._with_deadline(late_failure(), "probe")
            # The orphan keeps running past the deadline; its failure must
            # be consumed and logged, never "exception was never retrieved".
            await asyncio.sleep(0.3)

        with caplog.at_level(logging.WARNING, logger="repro.server.app"):
            asyncio.run(scenario())
        assert "deadline-orphaned" in caplog.text
        assert "failed after the caller gave up" in caplog.text

    def test_graceful_drain_answers_every_admitted_request_under_latency(self):
        """SIGTERM-equivalent close() during an injected-latency batch.

        Every request admitted before the drain begins must be answered —
        none dropped, none errored — even though each replica call pays
        injected latency and one replica per shard is killed mid-drain.
        """
        members = corpus()
        service = ReplicatedSimilarityService(
            "ruzicka", 2, replication_factor=2,
            fault_policy_factory=lambda shard, replica: FaultPolicy(
                seed=shard * 31 + replica, latency_seconds=0.02))
        service.bulk_load(members)
        oracle = ShardedSimilarityService("ruzicka", 2)
        oracle.bulk_load(members)
        app = SimilarityServerApp(
            service, config=ServerConfig(query_max_batch=2, max_in_flight=2,
                                         executor_threads=2))
        requests = [QueryRequest.topk(member.with_id(f"q{index}"), 4)
                    for index, member in enumerate(members[:10])]
        answers: dict[int, object] = {}
        errors: list[BaseException] = []
        server = InProcessServer(app)
        server.start()
        try:
            def ask(index):
                try:
                    client = SimilarityClient(server.host, server.port,
                                              retry_policy=FAST_RETRIES)
                    answers[index] = client.query(requests[index])
                except BaseException as error:  # noqa: BLE001 — recorded
                    errors.append(error)

            workers = [threading.Thread(target=ask, args=(index,))
                       for index in range(len(requests))]
            for worker in workers:
                worker.start()
            # Let the batch get in flight, then kill a replica per shard
            # mid-stream and drain.
            time.sleep(0.05)
            service.kill_replica(0, 1)
            service.kill_replica(1, 0)
            for worker in workers:
                worker.join(timeout=30)
        finally:
            server.close()  # drains: joins the loop thread
        assert not errors, errors
        assert len(answers) == len(requests)
        for index, answer in answers.items():
            assert answer == oracle.query(requests[index])

    def test_classify_queue_full_unchanged(self):
        # The 429 path keeps its code and hint shape after the table grew.
        assert classify(QueueFullError("full")) == ("queue_full", 429)
