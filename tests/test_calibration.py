"""Tests for the self-tuning cost-model calibration (`repro.engine.calibration`)."""

from __future__ import annotations

import math

import pytest

from repro.core.exceptions import StorageError
from repro.engine.calibration import (
    COMPONENTS,
    CalibrationProfile,
    ComponentEstimate,
)
from repro.engine.planner import Planner
from repro.engine.spec import JoinSpec
from repro.engine.engine import SimilarityEngine
from repro.mapreduce.costmodel import CostParameters


class TestComponentEstimate:
    def test_unobserved_factor_is_identity(self):
        assert ComponentEstimate().factor == 1.0

    def test_factor_is_geometric_mean(self):
        estimate = ComponentEstimate()
        estimate.observe(2.0)
        estimate.observe(8.0)
        assert estimate.factor == pytest.approx(4.0)
        assert estimate.count == 2

    def test_rejects_degenerate_ratios(self):
        estimate = ComponentEstimate()
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ValueError):
                estimate.observe(bad)


class TestCalibrationProfile:
    def test_fresh_profile_reproduces_base_parameters(self):
        base = CostParameters(machine_throughput=1234.0)
        profile = CalibrationProfile(base=base)
        assert profile.calibrated_parameters() == base
        assert profile.runs == 0 and profile.version == 0

    def test_slower_measurement_lowers_the_calibrated_rate(self):
        profile = CalibrationProfile(base=CostParameters())
        # Measured compute took 2x the predicted seconds: the learned
        # throughput must halve (rates divide by the factor).
        profile.components["compute"].observe(2.0)
        calibrated = profile.calibrated_parameters()
        assert calibrated.machine_throughput == pytest.approx(
            profile.base.machine_throughput / 2.0)

    def test_overheads_multiply_instead_of_divide(self):
        profile = CalibrationProfile(base=CostParameters())
        profile.components["overhead"].observe(1.5)
        profile.components["records"].observe(0.5)
        calibrated = profile.calibrated_parameters()
        assert calibrated.job_overhead_seconds == pytest.approx(
            profile.base.job_overhead_seconds * 1.5)
        assert calibrated.record_overhead_bytes == pytest.approx(
            profile.base.record_overhead_bytes * 0.5)

    def test_disk_rate_calibrates_only_when_priced(self):
        profile = CalibrationProfile(base=CostParameters())
        profile.components["disk"].observe(3.0)
        assert profile.calibrated_parameters().disk_bandwidth is None
        priced = CalibrationProfile(
            base=CostParameters(disk_bandwidth=1000.0))
        priced.components["disk"].observe(2.0)
        assert priced.calibrated_parameters().disk_bandwidth == pytest.approx(
            500.0)


class TestObservation:
    def test_engine_run_feeds_the_profile(self, small_multisets, test_cluster):
        profile = CalibrationProfile(base=CostParameters())
        with SimilarityEngine(small_multisets, cluster=test_cluster,
                              calibration=profile) as engine:
            engine.run(JoinSpec(algorithm="online_aggregation",
                                threshold=0.5))
        assert profile.runs == 1
        assert profile.version == 1
        assert any(profile.components[name].count
                   for name in ("compute", "shuffle"))

    def test_sequential_runs_do_not_observe(self, small_multisets,
                                            test_cluster):
        # In-memory algorithms report no measured job stats; there is
        # nothing to calibrate against.
        profile = CalibrationProfile(base=CostParameters())
        with SimilarityEngine(small_multisets, cluster=test_cluster,
                              calibration=profile) as engine:
            engine.run(JoinSpec(algorithm="exact", threshold=0.5))
        assert profile.runs == 0

    def test_calibration_tightens_the_prediction(self, small_multisets,
                                                 test_cluster):
        spec = JoinSpec(algorithm="online_aggregation", threshold=0.5)
        profile = CalibrationProfile(base=CostParameters())
        with SimilarityEngine(small_multisets, cluster=test_cluster,
                              calibration=profile) as engine:
            result = engine.run(spec)
            measured = result.simulated_seconds
            default_predicted = Planner(CostParameters()).plan(
                spec, small_multisets, test_cluster).predicted_seconds
            calibrated_predicted = engine.plan(spec).predicted_seconds

        def deviation(predicted: float) -> float:
            ratio = predicted / measured
            return max(ratio, 1.0 / ratio)

        assert deviation(calibrated_predicted) < deviation(default_predicted)

    def test_planner_follows_a_learning_profile(self, small_multisets,
                                                test_cluster):
        profile = CalibrationProfile(base=CostParameters())
        planner = Planner(CostParameters(), calibration=profile)
        spec = JoinSpec(algorithm="online_aggregation", threshold=0.5)
        before = planner.plan(spec, small_multisets,
                              test_cluster).predicted_seconds
        profile.components["compute"].observe(4.0)
        profile.version += 1
        after = planner.plan(spec, small_multisets,
                             test_cluster).predicted_seconds
        assert after > before


class TestPersistence:
    def test_round_trip_preserves_learned_state(self, small_multisets,
                                                test_cluster, storage_path):
        profile = CalibrationProfile(base=CostParameters())
        with SimilarityEngine(small_multisets, cluster=test_cluster,
                              calibration=profile) as engine:
            engine.run(JoinSpec(algorithm="online_aggregation",
                                threshold=0.5))
        profile.save(storage_path)
        loaded = CalibrationProfile.load(storage_path)
        assert loaded.runs == profile.runs
        assert loaded.version == profile.version
        assert loaded.calibrated_parameters() == profile.calibrated_parameters()
        for name in COMPONENTS:
            assert loaded.components[name].count == profile.components[name].count

    def test_load_without_stored_profile_raises(self, storage_path):
        from repro.storage import StorageEngine

        StorageEngine(storage_path).close()  # valid database, no profile
        with pytest.raises(StorageError, match="no calibration profile"):
            CalibrationProfile.load(storage_path)

    def test_load_or_create_starts_fresh(self, storage_path):
        base = CostParameters(machine_throughput=777.0)
        profile = CalibrationProfile.load_or_create(storage_path, base=base)
        assert profile.base == base and profile.runs == 0

    def test_path_backed_engine_learns_across_sessions(self, small_multisets,
                                                       test_cluster,
                                                       storage_path):
        spec = JoinSpec(algorithm="online_aggregation", threshold=0.5)
        with SimilarityEngine(small_multisets, cluster=test_cluster,
                              calibration=storage_path) as engine:
            engine.run(spec)
        # A second session constructed from the same path resumes the
        # profile the first one saved.
        with SimilarityEngine(small_multisets, cluster=test_cluster,
                              calibration=storage_path) as engine:
            assert engine.calibration.runs == 1
            engine.run(spec)
        assert CalibrationProfile.load(storage_path).runs == 2
