"""The durable persistence tier: engine, codecs, stores and crash recovery.

The contract under test everywhere here is *exactness*: whatever goes into
a storage file comes back equal — dictionaries with their ids, indexes
with their maintained structures (and therefore identical query answers),
results with their pair order, and views whose snapshot + mutation-log
recovery lands on the bit-identical pair set an uninterrupted replica
holds.  The stateful machine at the bottom drives that last property
through arbitrary interleavings of mutation batches and simulated
crashes.
"""

from __future__ import annotations

import math
import os
import shutil
import sqlite3
import tempfile

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import (
    JoinResult,
    JoinSpec,
    JoinView,
    Multiset,
    ResultStore,
    SimilarityEngine,
    SimilarityIndex,
    StorageEngine,
    StoredPairSequence,
    ViewStore,
    bootstrap_from_join,
)
from repro.core.exceptions import StorageError
from repro.core.interning import ElementDictionary
from repro.serving.api import QueryRequest
from repro.serving.node import ServingNode
from repro.storage import (
    SCHEMA_VERSION,
    decode_value,
    encode_value,
    load_dictionary,
    load_index,
    save_dictionary,
    save_index,
)
from repro.storage.codecs import describe_spec, spec_from_description
from repro.streaming.changes import Change, ChangeBatch
from repro.streaming.view import INCREMENTAL
from tests.conftest import make_random_multisets

#: Fixed universes for the crash-recovery machine, mirroring the streaming
#: parity machine: small enough that replaces and shared elements are common.
MACHINE_IDS = tuple(f"s{index}" for index in range(8))
MACHINE_ALPHABET = tuple(f"e{index}" for index in range(8))
CONTENTS = st.dictionaries(st.sampled_from(MACHINE_ALPHABET),
                           st.integers(min_value=1, max_value=4),
                           max_size=5)


def corpus(count=10, seed=3):
    return make_random_multisets(count, alphabet_size=15, max_elements=8,
                                 seed=seed)


# ---------------------------------------------------------------------------
# StorageEngine
# ---------------------------------------------------------------------------

class TestStorageEngine:
    def test_connect_applies_the_discipline_pragmas(self, storage_path):
        with StorageEngine(storage_path) as engine:
            assert engine.query_one("PRAGMA journal_mode")[0] == "wal"
            assert engine.query_one("PRAGMA foreign_keys")[0] == 1
            assert engine.query_one("PRAGMA synchronous")[0] == 1  # NORMAL
            assert engine.query_one("PRAGMA busy_timeout")[0] == 30_000
            assert engine.schema_version == SCHEMA_VERSION

    def test_reopen_preserves_schema_and_data(self, storage_path):
        with StorageEngine(storage_path) as engine:
            with engine.transaction():
                engine.set_meta("store", "probe", "42")
        with StorageEngine(storage_path) as engine:
            assert engine.schema_version == SCHEMA_VERSION
            assert engine.get_meta("store", "probe") == "42"
            assert engine.get_meta("store", "absent") is None
            assert engine.meta_section("store") == {"probe": "42"}

    def test_transaction_rolls_back_on_exception(self, storage_path):
        with StorageEngine(storage_path) as engine:
            with pytest.raises(RuntimeError):
                with engine.transaction():
                    engine.set_meta("store", "doomed", "1")
                    raise RuntimeError("boom")
            assert engine.get_meta("store", "doomed") is None

    def test_nested_transactions_join_the_outer(self, storage_path):
        with StorageEngine(storage_path) as engine:
            with engine.transaction():
                engine.set_meta("store", "outer", "1")
                with engine.transaction():
                    engine.set_meta("store", "inner", "2")
            assert engine.meta_section("store") == {"outer": "1",
                                                    "inner": "2"}

    def test_uncommitted_writes_are_invisible_to_other_connections(
            self, storage_path):
        with StorageEngine(storage_path) as writer:
            with writer.transaction():
                writer.set_meta("store", "pending", "1")
                with StorageEngine(storage_path) as reader:
                    assert reader.get_meta("store", "pending") is None
            with StorageEngine(storage_path) as reader:
                assert reader.get_meta("store", "pending") == "1"

    def test_refuses_databases_from_a_newer_release(self, storage_path):
        with StorageEngine(storage_path):
            pass
        raw = sqlite3.connect(storage_path)
        raw.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 7}")
        raw.close()
        with pytest.raises(StorageError, match="newer"):
            StorageEngine(storage_path)

    def test_closed_engine_raises_not_crashes(self, storage_path):
        engine = StorageEngine(storage_path)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(StorageError, match="closed"):
            engine.query("SELECT 1")

    def test_unopenable_path_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="cannot open"):
            StorageEngine(str(tmp_path / "no" / "such" / "dir" / "x.sqlite"))


# ---------------------------------------------------------------------------
# The tagged value codec
# ---------------------------------------------------------------------------

class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 10**40, 0.5, -1e-300, float("inf"),
        "", "ip-1", "ünïcødé", b"", b"\x00\xff\x7f",
        (), ("a", 3, None), (("nested",), (1.5, b"x")),
        frozenset(), frozenset({1, "x", (2.5, None)}),
    ])
    def test_round_trips_exactly(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_nan_round_trips(self):
        assert math.isnan(decode_value(encode_value(float("nan"))))

    def test_bool_does_not_collapse_into_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert encode_value(True) != encode_value(1)

    def test_equal_frozensets_encode_identically(self):
        a = frozenset(["x", "y", "z"])
        b = frozenset(["z", "x", "y"])
        assert encode_value(a) == encode_value(b)

    @pytest.mark.parametrize("value", [[1, 2], {"a": 1}, {1, 2}, object()])
    def test_unstorable_values_fail_at_save_time(self, value):
        with pytest.raises(StorageError, match="cannot persist"):
            encode_value(value)

    @pytest.mark.parametrize("text", ["not json", "{}", "[]", '["?",1]'])
    def test_corrupted_encodings_raise(self, text):
        with pytest.raises(StorageError):
            decode_value(text)


# ---------------------------------------------------------------------------
# Dictionary and spec codecs
# ---------------------------------------------------------------------------

class TestDictionaryPersistence:
    def test_round_trips_ids_and_frequencies(self, storage_path):
        dictionary = ElementDictionary.from_multisets(corpus())
        save_dictionary(storage_path, dictionary)
        loaded = load_dictionary(storage_path)
        assert loaded.to_records() == dictionary.to_records()
        assert len(loaded) == len(dictionary)

    def test_loading_an_empty_database_raises(self, storage_path):
        with StorageEngine(storage_path):
            pass
        with pytest.raises(StorageError, match="no element dictionary"):
            load_dictionary(storage_path)


class TestSpecDescription:
    def test_round_trips_every_persisted_field(self):
        spec = JoinSpec(measure="jaccard", threshold=0.35,
                        algorithm="sharding", sharding_threshold=77,
                        chunk_size=50, use_combiners=False, intern=False,
                        prune_candidates=False, vcl_element_order="hash")
        restored = spec_from_description(describe_spec(spec))
        assert restored == spec

    def test_session_infrastructure_is_not_persisted(self, test_cluster):
        spec = JoinSpec(cluster=test_cluster, backend="thread",
                        enforce_budgets=True)
        restored = spec_from_description(describe_spec(spec))
        assert restored.cluster is None
        assert restored.backend is None
        assert restored.enforce_budgets is None
        assert restored.threshold == spec.threshold

    def test_corrupted_description_raises(self):
        with pytest.raises(StorageError, match="not valid JSON"):
            spec_from_description("{nope")


# ---------------------------------------------------------------------------
# SimilarityIndex save/load
# ---------------------------------------------------------------------------

class TestIndexPersistence:
    @pytest.mark.parametrize("measure", ["ruzicka", "jaccard", "dice",
                                         "vector_cosine"])
    @pytest.mark.parametrize("intern", [True, False])
    def test_loaded_index_is_structurally_identical(self, storage_path,
                                                    measure, intern):
        index = SimilarityIndex(measure, intern=intern)
        index.bulk_load(corpus(seed=11))
        index.save(storage_path)
        loaded = SimilarityIndex.load(storage_path)
        assert loaded._multisets == index._multisets
        assert loaded._uni == index._uni  # bit-exact Uni partials
        assert loaded._postings == index._postings
        assert loaded.version == index.version
        assert loaded.stop_word_frequency == index.stop_word_frequency
        assert (loaded._interner is None) == (index._interner is None)

    @pytest.mark.parametrize("intern", [True, False])
    def test_loaded_index_answers_queries_identically(self, storage_path,
                                                      intern):
        index = SimilarityIndex("ruzicka", intern=intern)
        members = corpus(count=15, seed=23)
        index.bulk_load(members)
        index.save(storage_path)
        loaded = SimilarityIndex.load(storage_path)
        for query in members[:5]:
            threshold_request = QueryRequest.threshold(query, 0.3)
            assert loaded.query(threshold_request) \
                == index.query(threshold_request)
            topk_request = QueryRequest.topk(query, 4)
            assert loaded.query(topk_request) == index.query(topk_request)

    def test_loaded_index_keeps_accepting_writes(self, storage_path):
        index = SimilarityIndex("ruzicka")
        members = corpus(seed=5)
        index.bulk_load(members)
        index.save(storage_path)
        loaded = SimilarityIndex.load(storage_path)
        newcomer = Multiset("fresh", {"e0": 2, "zz": 1})
        index.add(newcomer)
        loaded.add(newcomer)
        assert loaded._postings == index._postings
        assert loaded._uni == index._uni
        loaded.remove(members[0].id)
        index.remove(members[0].id)
        assert loaded._postings == index._postings

    def test_save_replaces_the_previous_index(self, storage_path):
        first = SimilarityIndex("ruzicka")
        first.bulk_load(corpus(seed=1))
        first.save(storage_path)
        second = SimilarityIndex("jaccard", intern=False)
        second.bulk_load(corpus(count=3, seed=2))
        second.save(storage_path)
        loaded = SimilarityIndex.load(storage_path)
        assert loaded.measure.name == "jaccard"
        assert loaded._multisets == second._multisets

    def test_stop_word_frequency_survives(self, storage_path):
        index = SimilarityIndex("ruzicka", stop_word_frequency=3)
        index.bulk_load(corpus(seed=9))
        index.save(storage_path)
        assert SimilarityIndex.load(storage_path).stop_word_frequency == 3

    def test_loading_a_database_without_an_index_raises(self, storage_path):
        with StorageEngine(storage_path):
            pass
        with pytest.raises(StorageError, match="no similarity index"):
            load_index(storage_path)

    def test_unstorable_member_fails_at_save_time(self, storage_path):
        index = SimilarityIndex("ruzicka", intern=False)
        index.add(Multiset(("ok",), {("el", 1): 2}))
        index.save(storage_path)  # tuples are storable
        bad = SimilarityIndex("ruzicka", intern=False)

        class Odd:
            def __hash__(self):
                return 7

        bad.add(Multiset("m", {Odd(): 1}))
        with pytest.raises(StorageError, match="cannot persist"):
            save_index(storage_path, bad)

    def test_serving_node_persist_round_trips(self, storage_path):
        node = ServingNode("ruzicka", name="n0")
        members = corpus(seed=31)
        node.bulk_load(members)
        node.persist(storage_path)
        restarted = ServingNode("ruzicka", name="n0-restarted")
        restarted.index = SimilarityIndex.load(storage_path)
        for query in members[:3]:
            request = QueryRequest.threshold(query, 0.4)
            assert restarted.query(request) == node.query(request)


# ---------------------------------------------------------------------------
# ViewStore: snapshot + mutation log + recovery
# ---------------------------------------------------------------------------

def make_view(threshold=0.3, measure="ruzicka", seed=3, count=10):
    spec = JoinSpec(measure=measure, threshold=threshold, algorithm="exact")
    return JoinView(spec, corpus(count=count, seed=seed))


BATCHES = [
    ChangeBatch.of(Change.upsert(Multiset("m3", {"e0": 5, "e9": 1}))),
    ChangeBatch.of(Change.delete("m7"),
                   Change.upsert(Multiset("new-1", {"e1": 2, "e2": 2}))),
    ChangeBatch.of(Change.upsert(Multiset("m0", {"eX": 1}))),
]


class TestViewStore:
    def test_recover_replays_to_the_exact_pair_set(self, storage_path):
        view, replica = make_view(), make_view()
        subscription = view.persist(storage_path)
        for batch in BATCHES:
            view.apply(batch, strategy=INCREMENTAL)
            replica.apply(batch, strategy=INCREMENTAL)
        expected = view.pairs()
        del view  # the crash: nothing survives but the file
        recovered = JoinView.recover(storage_path)
        assert recovered.pairs() == expected  # bit-identical, == not approx
        assert recovered.pairs() == replica.pairs()
        assert recovered.version == replica.version
        assert {m.id for m in recovered.members()} \
            == {m.id for m in replica.members()}
        assert subscription.active
        subscription.detach()
        assert not subscription.active

    def test_recovered_view_keeps_maintaining(self, storage_path):
        view, replica = make_view(), make_view()
        view.persist(storage_path)
        view.apply(BATCHES[0], strategy=INCREMENTAL)
        replica.apply(BATCHES[0], strategy=INCREMENTAL)
        recovered = JoinView.recover(storage_path)
        for batch in BATCHES[1:]:
            recovered.apply(batch, strategy=INCREMENTAL)
            replica.apply(batch, strategy=INCREMENTAL)
        assert recovered.pairs() == replica.pairs()

    def test_snapshot_every_folds_the_log(self, storage_path):
        view = make_view()
        subscription = view.persist(storage_path, snapshot_every=2)
        with ViewStore(storage_path) as store:
            for batch in BATCHES:
                view.apply(batch, strategy=INCREMENTAL)
            # Three batches, folded at the second: at most one residual.
            assert len(store.log_batches()) == 1
            assert store.load().pairs() == view.pairs()
        subscription.detach()

    def test_detach_stops_logging(self, storage_path):
        view = make_view()
        subscription = view.persist(storage_path)
        view.apply(BATCHES[0], strategy=INCREMENTAL)
        durable_pairs = view.pairs()
        subscription.detach()
        subscription.detach()  # idempotent
        view.apply(BATCHES[1], strategy=INCREMENTAL)  # not logged
        assert JoinView.recover(storage_path).pairs() == durable_pairs

    def test_rejoin_applied_batches_recover_identically(self, storage_path):
        # The log replays incrementally even for batches originally applied
        # through the re-join strategy — the two are bit-identical.
        view, replica = make_view(), make_view()
        subscription = view.persist(storage_path)
        view.apply(BATCHES[0], strategy="rejoin")
        replica.apply(BATCHES[0], strategy="rejoin")
        subscription.detach()
        assert JoinView.recover(storage_path).pairs() == replica.pairs()

    def test_gap_in_the_log_is_refused(self, storage_path):
        view = make_view()
        subscription = view.persist(storage_path)
        for batch in BATCHES:
            view.apply(batch, strategy=INCREMENTAL)
        subscription.detach()
        with StorageEngine(storage_path) as engine:
            with engine.transaction():
                engine.execute("DELETE FROM mutation_log WHERE batch_seq = 2")
        with pytest.raises(StorageError, match="not contiguous"):
            JoinView.recover(storage_path)

    def test_recovering_a_database_without_a_view_raises(self, storage_path):
        with StorageEngine(storage_path):
            pass
        with pytest.raises(StorageError, match="no join view"):
            JoinView.recover(storage_path)

    def test_bad_snapshot_every_is_rejected(self, storage_path):
        with pytest.raises(StorageError, match="snapshot_every"):
            make_view().persist(storage_path, snapshot_every=0)


# ---------------------------------------------------------------------------
# ResultStore and lazy pair iteration
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def joined():
    spec = JoinSpec(measure="ruzicka", threshold=0.25, algorithm="exact")
    with SimilarityEngine() as engine:
        return engine.run(spec, corpus(count=20, seed=13))


class TestResultStore:
    def test_sqlite_round_trip_preserves_everything_relevant(
            self, joined, storage_path):
        written = joined.to_sqlite(storage_path)
        assert written == len(joined.pairs) > 0
        loaded = JoinResult.from_sqlite(storage_path)
        assert list(loaded.pairs) == list(joined.pairs)  # order + scores
        assert loaded.spec == joined.spec
        assert loaded.algorithm == joined.algorithm
        assert [m.id for m in loaded.multisets] \
            == [m.id for m in joined.multisets]
        assert loaded.multisets == joined.multisets
        assert loaded.simulated_seconds == 0.0

    def test_lazy_pairs_stream_without_materializing(self, joined,
                                                     storage_path):
        joined.to_sqlite(storage_path)
        loaded = JoinResult.from_sqlite(storage_path)
        pairs = loaded.pairs
        assert isinstance(pairs, StoredPairSequence)
        assert len(pairs) == len(joined.pairs)
        assert pairs[0] == joined.pairs[0]
        assert pairs[-1] == joined.pairs[-1]
        assert pairs[1:3] == joined.pairs[1:3]
        with pytest.raises(IndexError):
            pairs[len(pairs)]
        assert pairs == joined.pairs  # sequence equality, both ways
        assert joined.pairs[2] in list(pairs)
        # Partial iteration then a fresh full pass: independent cursors.
        iterator = iter(pairs)
        next(iterator)
        assert list(pairs) == joined.pairs

    def test_eager_load_returns_a_plain_list(self, joined, storage_path):
        joined.to_sqlite(storage_path)
        loaded = JoinResult.from_sqlite(storage_path, lazy=False)
        assert isinstance(loaded.pairs, list)
        assert loaded.pairs == joined.pairs

    def test_score_is_a_point_lookup(self, joined, storage_path):
        joined.to_sqlite(storage_path)
        with ResultStore(storage_path) as store:
            assert len(store) == len(joined.pairs)
            probe = joined.pairs[0]
            assert store.score(probe.first, probe.second) == probe.similarity
            # Order-insensitive, like JoinView.score.
            assert store.score(probe.second, probe.first) == probe.similarity
            assert store.score("nope-a", "nope-b") is None

    def test_loaded_result_feeds_the_serving_handoffs(self, joined,
                                                      storage_path):
        joined.to_sqlite(storage_path)
        loaded = JoinResult.from_sqlite(storage_path)
        index = loaded.to_index()
        assert len(index) == len(joined.multisets)
        view = loaded.to_view()
        assert view.pairs() == {pair.pair: pair.similarity
                                for pair in joined.pairs}

    def test_loading_a_database_without_a_result_raises(self, storage_path):
        with StorageEngine(storage_path):
            pass
        with pytest.raises(StorageError, match="no join result"):
            JoinResult.from_sqlite(storage_path)


class TestBootstrapFromStorage:
    def test_bootstrap_accepts_a_stored_result_path(self, joined,
                                                    storage_path):
        joined.to_sqlite(storage_path)
        from_path = bootstrap_from_join(storage_path, num_shards=2)
        from_memory = bootstrap_from_join(joined.multisets, joined,
                                          num_shards=2)
        member = joined.multisets[0]
        request = QueryRequest.threshold(member, joined.spec.threshold)
        assert from_path.query(request) == from_memory.query(request)
        # The stored pairs warmed the caches: member queries never scan.
        assert sum(node.cache_hits for node in from_path.nodes) > 0

    def test_explicit_join_result_still_wins(self, joined, storage_path):
        joined.to_sqlite(storage_path)
        service = bootstrap_from_join(storage_path, joined)
        assert len(service.nodes[0]) + sum(
            len(node) for node in service.nodes[1:]) == len(joined.multisets)

    def test_run_join_from_a_path_recomputes(self, joined, storage_path):
        joined.to_sqlite(storage_path)
        service = bootstrap_from_join(
            storage_path, run_join=True, join_algorithm="exact",
            threshold=joined.spec.threshold)
        member = joined.multisets[0]
        expected = bootstrap_from_join(joined.multisets, joined)
        request = QueryRequest.threshold(member, joined.spec.threshold)
        assert service.query(request) == expected.query(request)


# ---------------------------------------------------------------------------
# Stateful crash recovery: mutations × crashes == uninterrupted replica
# ---------------------------------------------------------------------------

class CrashRecoveryMachine(RuleBasedStateMachine):
    """Interleave mutation batches with simulated crashes.

    ``durable`` is a view persisted through a :class:`ViewStore`;
    ``replica`` is an identical view that is never persisted and never
    crashes.  A crash discards the durable view object mid-stream (no
    clean shutdown, no final snapshot) and recovers from the file alone.
    The invariant demands *exact* equality — pair sets, scores
    (``==``, not approx) and versions — after every step, across
    measures × interning.
    """

    def __init__(self):
        super().__init__()
        self.tmpdir = None
        self.durable = None
        self.replica = None
        self.subscription = None

    @initialize(measure=st.sampled_from(["ruzicka", "jaccard", "dice",
                                         "vector_cosine"]),
                intern=st.booleans(),
                threshold=st.sampled_from([0.3, 0.5, 0.8]),
                snapshot_every=st.sampled_from([None, 1, 2, 5]),
                seed=st.integers(min_value=0, max_value=10_000))
    def setup(self, measure, intern, threshold, snapshot_every, seed):
        self.tmpdir = tempfile.mkdtemp(prefix="repro-storage-")
        self.path = os.path.join(self.tmpdir, "view.sqlite")
        initial = make_random_multisets(5, alphabet_size=8, max_elements=5,
                                        seed=seed)
        spec = JoinSpec(measure=measure, threshold=threshold,
                        algorithm="exact", intern=intern)
        self.durable = JoinView(spec, initial)
        self.replica = JoinView(spec, initial)
        self.subscription = self.durable.persist(
            self.path, snapshot_every=snapshot_every)
        self.snapshot_every = snapshot_every

    def teardown(self):
        if self.subscription is not None:
            self.subscription.detach()
        if self.tmpdir is not None:
            shutil.rmtree(self.tmpdir, ignore_errors=True)

    def _apply(self, batch):
        self.durable.apply(batch, strategy=INCREMENTAL)
        self.replica.apply(batch, strategy=INCREMENTAL)

    @rule(data=st.data(), contents=CONTENTS)
    def upsert(self, data, contents):
        target = data.draw(st.sampled_from(MACHINE_IDS), label="upsert target")
        self._apply(ChangeBatch.of(Change.upsert(Multiset(target, contents))))

    @precondition(lambda self: self.replica is not None
                  and self.replica.num_members > 1)
    @rule(data=st.data())
    def delete(self, data):
        live = sorted(member.id for member in self.replica.members())
        target = data.draw(st.sampled_from(live), label="delete target")
        self._apply(ChangeBatch.of(Change.delete(target)))

    @rule(data=st.data())
    def apply_mixed_batch(self, data):
        live = {member.id for member in self.replica.members()}
        changes = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=4),
                                 label="batch size")):
            if len(live) > 1 and data.draw(st.booleans(), label="delete?"):
                target = data.draw(st.sampled_from(sorted(live)),
                                   label="batch delete target")
                changes.append(Change.delete(target))
                live.discard(target)
            else:
                target = data.draw(st.sampled_from(MACHINE_IDS),
                                   label="batch upsert target")
                contents = data.draw(CONTENTS, label="batch contents")
                changes.append(Change.upsert(Multiset(target, contents)))
                live.add(target)
        self._apply(ChangeBatch(changes))

    @rule()
    def crash_and_recover(self):
        # A hard stop: the live view and its subscription object vanish
        # without any final snapshot; only the database file survives.
        self.subscription.detach()  # detach ≡ process death after last commit
        self.durable = None
        recovered = JoinView.recover(self.path)
        assert recovered.pairs() == self.replica.pairs()
        assert recovered.version == self.replica.version
        self.durable = recovered
        self.subscription = self.durable.persist(
            self.path, snapshot_every=self.snapshot_every)

    @invariant()
    def durable_is_bit_identical_to_the_replica(self):
        if self.durable is None:
            return
        assert self.durable.pairs() == self.replica.pairs()
        assert self.durable.version == self.replica.version
        assert {m.id for m in self.durable.members()} \
            == {m.id for m in self.replica.members()}


CrashRecoveryMachine.TestCase.settings = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])
TestCrashRecovery = CrashRecoveryMachine.TestCase
