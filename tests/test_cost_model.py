"""Tests for the cost model, cluster descriptions and size estimation."""

from __future__ import annotations

import pytest

from repro.core.exceptions import JobConfigurationError
from repro.mapreduce.cluster import (
    GIGABYTE,
    GOOGLE_MAPREDUCE,
    HADOOP,
    Cluster,
    laptop_cluster,
    paper_cluster,
)
from repro.mapreduce.costmodel import CostModel, CostParameters
from repro.mapreduce.counters import Counters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.job import JobSpec
from repro.mapreduce.partitioner import (
    first_component_partitioner,
    hash_partitioner,
    round_robin_assigner,
    stable_hash,
)
from repro.mapreduce.runner import LocalJobRunner
from repro.mapreduce.types import JobStats, KeyValue, PhaseStats, estimate_record_bytes
from tests.test_mapreduce_runner import WordCountMapper, WordCountReducer


class TestCostModel:
    def make_stats(self) -> JobStats:
        stats = JobStats(job_name="test")
        stats.map.add_machine_work(0, 1_000_000)
        stats.map.add_machine_work(1, 500_000)
        stats.reduce.add_machine_work(0, 2_000_000)
        stats.shuffle_bytes = 4_000_000
        stats.max_group_bytes = 100_000
        stats.side_data_bytes = 1_000_000
        return stats

    def test_breakdown_components_positive(self):
        model = CostModel()
        breakdown = model.job_cost(self.make_stats(), Cluster(num_machines=10))
        assert breakdown.overhead_seconds > 0
        assert breakdown.map_seconds > 0
        assert breakdown.reduce_seconds > 0
        assert breakdown.shuffle_seconds > 0
        assert breakdown.side_data_seconds > 0
        assert breakdown.total_seconds == pytest.approx(
            breakdown.overhead_seconds + breakdown.side_data_seconds
            + breakdown.map_seconds + breakdown.shuffle_seconds
            + breakdown.reduce_seconds)

    def test_more_machines_never_slower_for_shuffle(self):
        model = CostModel()
        small = model.job_cost(self.make_stats(), Cluster(num_machines=10))
        large = model.job_cost(self.make_stats(), Cluster(num_machines=100))
        assert large.shuffle_seconds <= small.shuffle_seconds

    def test_side_data_cost_independent_of_machines(self):
        model = CostModel()
        small = model.job_cost(self.make_stats(), Cluster(num_machines=10))
        large = model.job_cost(self.make_stats(), Cluster(num_machines=1000))
        assert small.side_data_seconds == pytest.approx(large.side_data_seconds)

    def test_critical_path_lower_bounded_by_max_unit(self):
        stats = JobStats(job_name="skewed")
        stats.map.add_machine_work(0, 100.0)
        stats.map.max_unit_work = 1_000_000.0
        model = CostModel()
        breakdown = model.job_cost(stats, Cluster(num_machines=1000))
        assert breakdown.map_seconds >= 1_000_000.0 / model.parameters.machine_throughput

    def test_annotate_fills_simulated_seconds(self):
        stats = self.make_stats()
        CostModel().annotate(stats, Cluster(num_machines=10))
        assert stats.simulated_seconds > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(machine_throughput=0)
        with pytest.raises(ValueError):
            CostParameters(job_overhead_seconds=-1)


class TestPhaseStats:
    def test_machine_work_accounting(self):
        stats = PhaseStats()
        stats.add_machine_work(0, 10.0)
        stats.add_machine_work(0, 5.0)
        stats.add_machine_work(1, 3.0)
        assert stats.max_machine_work == 15.0
        assert stats.work_units == 18.0
        assert stats.max_unit_work == 10.0
        assert stats.skew == pytest.approx(15.0 / 9.0)

    def test_empty_phase(self):
        stats = PhaseStats()
        assert stats.max_machine_work == 0.0
        assert stats.skew == 0.0


class TestCluster:
    def test_paper_cluster_defaults(self):
        cluster = paper_cluster()
        assert cluster.num_machines == 500
        assert cluster.memory_per_machine == GIGABYTE
        assert cluster.profile is GOOGLE_MAPREDUCE

    def test_with_methods_return_copies(self):
        cluster = laptop_cluster()
        bigger = cluster.with_machines(64)
        assert bigger.num_machines == 64
        assert cluster.num_machines != 64
        assert cluster.with_profile(HADOOP).profile is HADOOP
        assert cluster.with_memory(123).memory_per_machine == 123
        assert cluster.with_scheduler_limit(5.0).scheduler_limit_seconds == 5.0

    def test_totals(self):
        cluster = Cluster(num_machines=4, memory_per_machine=10, disk_per_machine=20)
        assert cluster.total_memory == 40
        assert cluster.total_disk == 80

    @pytest.mark.parametrize("kwargs", [
        {"num_machines": 0},
        {"memory_per_machine": 0},
        {"disk_per_machine": -1},
        {"scheduler_limit_seconds": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(JobConfigurationError):
            Cluster(**kwargs)

    def test_profiles(self):
        assert GOOGLE_MAPREDUCE.supports_secondary_keys
        assert not HADOOP.supports_secondary_keys


class TestSizeEstimation:
    def test_primitives(self):
        assert estimate_record_bytes(None) == 1
        assert estimate_record_bytes(True) == 1
        assert estimate_record_bytes(7) == 8
        assert estimate_record_bytes(3.14) == 8
        assert estimate_record_bytes("abcd") == 8

    def test_containers_grow_with_content(self):
        assert estimate_record_bytes([1, 2, 3]) > estimate_record_bytes([1])
        assert estimate_record_bytes({"a": 1, "b": 2}) > estimate_record_bytes({"a": 1})

    def test_dataclass_estimates(self):
        record = KeyValue("key", (1.0, 2.0))
        assert estimate_record_bytes(record) > 0

    def test_size_hint_protocol(self):
        class Hinted:
            def estimated_bytes(self):
                return 12345

        assert estimate_record_bytes(Hinted()) == 12345


class TestPartitioners:
    def test_stable_hash_is_process_independent(self):
        assert stable_hash("cookie") == stable_hash("cookie")
        assert stable_hash("cookie", salt="a") != stable_hash("cookie", salt="b")

    def test_hash_partitioner_in_range(self):
        for key in ("a", ("tuple", 1), 42):
            assert 0 <= hash_partitioner(key, 7) < 7

    def test_hash_partitioner_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            hash_partitioner("a", 0)

    def test_first_component_partitioner_groups_by_first_element(self):
        assert (first_component_partitioner(("k", 1), 13)
                == first_component_partitioner(("k", 2), 13))

    def test_round_robin(self):
        assert [round_robin_assigner(i, 3) for i in range(5)] == [0, 1, 2, 0, 1]
        with pytest.raises(ValueError):
            round_robin_assigner(1, 0)


class TestDataset:
    def test_basic_properties(self):
        dataset = Dataset.from_records([1, 2, 3], name="numbers")
        assert dataset.name == "numbers"
        assert len(dataset) == 3
        assert dataset[1] == 2
        assert list(dataset) == [1, 2, 3]
        assert dataset.total_bytes > 0

    def test_map_filter_concat(self):
        dataset = Dataset.from_records([1, 2, 3])
        doubled = dataset.map_records(lambda value: value * 2)
        assert list(doubled) == [2, 4, 6]
        evens = dataset.filter_records(lambda value: value % 2 == 0)
        assert list(evens) == [2]
        combined = dataset.concat(doubled)
        assert len(combined) == 6


class TestCountersAndPipelineStats:
    def test_counters_merge(self):
        first = Counters()
        first.increment("a", 2)
        second = Counters()
        second.increment("a", 3)
        second.increment("b")
        first.merge(second)
        assert first.as_dict() == {"a": 5, "b": 1}
        assert "a" in first
        assert len(first) == 2

    def test_pipeline_result_aggregation(self, test_cluster):
        runner = LocalJobRunner(test_cluster)
        job = JobSpec("wc", WordCountMapper(), WordCountReducer())
        first = runner.run(job, Dataset.from_records(["a b"]))
        second = runner.run(job, Dataset.from_records(["c d"]))
        from repro.mapreduce.runner import PipelineResult

        pipeline = PipelineResult(name="p", output=second.output,
                                  job_stats=[first.stats, second.stats])
        assert pipeline.simulated_seconds == pytest.approx(
            first.stats.simulated_seconds + second.stats.simulated_seconds)
        assert pipeline.stats_for("wc") is first.stats
        with pytest.raises(KeyError):
            pipeline.stats_for("missing")
        assert pipeline.counters()["words_seen"] == 4
