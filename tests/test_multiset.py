"""Unit and property tests for the Multiset data model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import InvalidMultisetError
from repro.core.multiset import Multiset, multiset_collection_statistics


def multiset_strategy(identifier: str = "m"):
    """Hypothesis strategy generating small multisets."""
    return st.dictionaries(
        st.sampled_from([f"e{i}" for i in range(12)]),
        st.integers(min_value=1, max_value=6),
        min_size=1, max_size=8,
    ).map(lambda counts: Multiset(identifier, counts))


class TestConstruction:
    def test_from_mapping(self):
        multiset = Multiset("ip1", {"a": 2, "b": 1})
        assert multiset.id == "ip1"
        assert multiset["a"] == 2
        assert multiset.multiplicity("b") == 1
        assert multiset.multiplicity("missing") == 0

    def test_from_pairs(self):
        multiset = Multiset("ip1", [("a", 2), ("b", 3)])
        assert multiset.cardinality == 5

    def test_from_iterable_counts_occurrences(self):
        multiset = Multiset.from_iterable("ip", ["a", "b", "a", "a"])
        assert multiset["a"] == 3
        assert multiset["b"] == 1

    def test_from_set_gives_unit_multiplicities(self):
        multiset = Multiset.from_set("ip", ["a", "b", "a"])
        assert multiset.counts() == {"a": 1, "b": 1}

    def test_from_counts_classmethod(self):
        assert Multiset.from_counts("x", {"a": 1}) == Multiset("x", {"a": 1})

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(InvalidMultisetError):
            Multiset("ip", {"a": 0})

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(InvalidMultisetError):
            Multiset("ip", {"a": -1})

    def test_non_integer_multiplicity_rejected(self):
        with pytest.raises(InvalidMultisetError):
            Multiset("ip", {"a": 1.5})

    def test_boolean_multiplicity_rejected(self):
        with pytest.raises(InvalidMultisetError):
            Multiset("ip", {"a": True})

    def test_duplicate_elements_in_pairs_rejected(self):
        with pytest.raises(InvalidMultisetError):
            Multiset("ip", [("a", 1), ("a", 2)])

    def test_empty_multiset_allowed(self):
        multiset = Multiset("ip", {})
        assert multiset.cardinality == 0
        assert multiset.underlying_cardinality == 0


class TestCardinalities:
    def test_cardinality_is_sum_of_multiplicities(self):
        multiset = Multiset("ip", {"a": 2, "b": 3, "c": 1})
        assert multiset.cardinality == 6

    def test_underlying_cardinality_counts_distinct_elements(self):
        multiset = Multiset("ip", {"a": 10, "b": 1})
        assert multiset.underlying_cardinality == 2

    def test_underlying_set(self):
        multiset = Multiset("ip", {"a": 2, "b": 1})
        assert multiset.underlying_set == frozenset({"a", "b"})

    def test_mapping_protocol(self):
        multiset = Multiset("ip", {"a": 2, "b": 1})
        assert len(multiset) == 2
        assert set(multiset) == {"a", "b"}
        assert "a" in multiset
        assert "z" not in multiset


class TestPairwiseOperations:
    def test_intersection_cardinality(self):
        first = Multiset("a", {"x": 3, "y": 1})
        second = Multiset("b", {"x": 1, "y": 4, "z": 2})
        assert first.intersection_cardinality(second) == 1 + 1

    def test_union_cardinality(self):
        first = Multiset("a", {"x": 3, "y": 1})
        second = Multiset("b", {"x": 1, "y": 4, "z": 2})
        assert first.union_cardinality(second) == 3 + 4 + 2

    def test_symmetric_difference(self):
        first = Multiset("a", {"x": 3, "y": 1})
        second = Multiset("b", {"x": 1, "y": 4, "z": 2})
        assert first.symmetric_difference_cardinality(second) == 2 + 3 + 2

    def test_dot_product(self):
        first = Multiset("a", {"x": 3, "y": 1})
        second = Multiset("b", {"x": 2, "z": 5})
        assert first.dot_product(second) == 6

    def test_underlying_intersection_and_union(self):
        first = Multiset("a", {"x": 3, "y": 1})
        second = Multiset("b", {"x": 1, "z": 2})
        assert first.underlying_intersection_cardinality(second) == 1
        assert first.underlying_union_cardinality(second) == 3

    def test_common_elements(self):
        first = Multiset("a", {"x": 3, "y": 1})
        second = Multiset("b", {"y": 1, "z": 2})
        assert first.common_elements(second) == ["y"]

    def test_operations_are_symmetric(self):
        first = Multiset("a", {"x": 3, "y": 1, "w": 2})
        second = Multiset("b", {"x": 1, "z": 2})
        assert (first.intersection_cardinality(second)
                == second.intersection_cardinality(first))
        assert first.union_cardinality(second) == second.union_cardinality(first)
        assert first.dot_product(second) == second.dot_product(first)


class TestTransformations:
    def test_restrict(self):
        multiset = Multiset("ip", {"a": 2, "b": 1, "c": 4})
        restricted = multiset.restrict({"a", "c"})
        assert restricted.counts() == {"a": 2, "c": 4}
        assert restricted.id == "ip"

    def test_without_elements(self):
        multiset = Multiset("ip", {"a": 2, "b": 1})
        assert multiset.without_elements({"a"}).counts() == {"b": 1}

    def test_underlying_multiset(self):
        multiset = Multiset("ip", {"a": 5, "b": 2})
        assert multiset.underlying_multiset().counts() == {"a": 1, "b": 1}

    def test_set_expansion(self):
        multiset = Multiset("ip", {"a": 2, "b": 1})
        assert multiset.set_expansion() == frozenset({("a", 1), ("a", 2), ("b", 1)})

    def test_set_expansion_jaccard_equals_ruzicka(self):
        first = Multiset("a", {"x": 3, "y": 1})
        second = Multiset("b", {"x": 1, "y": 2, "z": 1})
        expansion_first = first.set_expansion()
        expansion_second = second.set_expansion()
        jaccard = (len(expansion_first & expansion_second)
                   / len(expansion_first | expansion_second))
        intersection = first.intersection_cardinality(second)
        ruzicka = intersection / first.union_cardinality(second)
        assert jaccard == pytest.approx(ruzicka)

    def test_scaled(self):
        multiset = Multiset("ip", {"a": 2})
        assert multiset.scaled(3).counts() == {"a": 6}

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(InvalidMultisetError):
            Multiset("ip", {"a": 2}).scaled(0)

    def test_with_id(self):
        multiset = Multiset("ip", {"a": 2})
        renamed = multiset.with_id("other")
        assert renamed.id == "other"
        assert renamed.counts() == multiset.counts()

    def test_to_tuples(self):
        multiset = Multiset("ip", {"a": 2, "b": 1})
        assert sorted(multiset.to_tuples()) == [("ip", "a", 2), ("ip", "b", 1)]


class TestEqualityAndRepr:
    def test_equality_includes_id(self):
        assert Multiset("a", {"x": 1}) != Multiset("b", {"x": 1})
        assert Multiset("a", {"x": 1}) == Multiset("a", {"x": 1})

    def test_hashable(self):
        collection = {Multiset("a", {"x": 1}), Multiset("a", {"x": 1})}
        assert len(collection) == 1

    def test_repr_mentions_id_and_sizes(self):
        text = repr(Multiset("ip9", {"a": 2, "b": 1}))
        assert "ip9" in text
        assert "|M|=3" in text

    def test_estimated_bytes_positive_and_cached(self):
        multiset = Multiset("ip", {"abc": 2, "de": 1})
        first = multiset.estimated_bytes()
        assert first > 0
        assert multiset.estimated_bytes() == first


class TestCollectionStatistics:
    def test_statistics_on_collection(self):
        stats = multiset_collection_statistics([
            Multiset("a", {"x": 1, "y": 2}),
            Multiset("b", {"x": 4}),
        ])
        assert stats["num_multisets"] == 2
        assert stats["num_elements"] == 2
        assert stats["num_incidences"] == 3
        assert stats["total_cardinality"] == 7
        assert stats["max_underlying_cardinality"] == 2
        assert stats["min_underlying_cardinality"] == 1

    def test_statistics_empty(self):
        stats = multiset_collection_statistics([])
        assert stats["num_multisets"] == 0
        assert stats["mean_underlying_cardinality"] == 0.0


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(multiset_strategy("a"), multiset_strategy("b"))
    def test_inclusion_exclusion(self, first, second):
        assert (first.intersection_cardinality(second)
                + first.union_cardinality(second)
                == first.cardinality + second.cardinality)

    @settings(max_examples=60, deadline=None)
    @given(multiset_strategy("a"), multiset_strategy("b"))
    def test_intersection_bounded_by_cardinalities(self, first, second):
        intersection = first.intersection_cardinality(second)
        assert 0 <= intersection <= min(first.cardinality, second.cardinality)

    @settings(max_examples=60, deadline=None)
    @given(multiset_strategy("a"))
    def test_self_operations(self, multiset):
        assert multiset.intersection_cardinality(multiset) == multiset.cardinality
        assert multiset.union_cardinality(multiset) == multiset.cardinality
        assert multiset.symmetric_difference_cardinality(multiset) == 0

    @settings(max_examples=60, deadline=None)
    @given(multiset_strategy("a"), multiset_strategy("b"))
    def test_set_expansion_sizes(self, first, second):
        assert len(first.set_expansion()) == first.cardinality
        expansion_intersection = len(first.set_expansion() & second.set_expansion())
        assert expansion_intersection == first.intersection_cardinality(second)
