"""Tests for the VCL baseline: prefix filtering, kernel, dedup, grouping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import JobConfigurationError, MemoryBudgetExceeded
from repro.core.multiset import Multiset
from repro.mapreduce.cluster import Cluster, laptop_cluster
from repro.similarity.exact import all_pairs_exact, pair_dictionary
from repro.similarity.registry import get_measure
from repro.vcl.driver import VCLConfig, VCLJoin, vcl_join
from repro.vcl.grouping import SuperElementGrouping
from repro.vcl.kernel import build_kernel_job
from repro.vcl.prefix import (
    frequency_rank_function,
    hash_rank_function,
    ordered_elements,
    prefix_elements,
    prefix_length_classic,
)
from tests.conftest import make_random_multisets

RUZICKA = get_measure("ruzicka")
JACCARD = get_measure("jaccard")


class TestPrefixComputation:
    def test_suffix_weight_below_bound(self):
        multiset = Multiset("m", {f"e{i}": i + 1 for i in range(10)})
        rank = hash_rank_function()
        for threshold in (0.1, 0.5, 0.9):
            prefix = prefix_elements(multiset, rank, RUZICKA, threshold)
            suffix = [e for e in ordered_elements(multiset, rank) if e not in set(prefix)]
            suffix_weight = sum(multiset.multiplicity(e) for e in suffix)
            assert suffix_weight < RUZICKA.size_lower_bound(multiset.cardinality, threshold)

    def test_prefix_is_leading_portion_of_canonical_order(self):
        multiset = Multiset("m", {f"e{i}": 2 for i in range(8)})
        rank = hash_rank_function()
        ordered = ordered_elements(multiset, rank)
        prefix = prefix_elements(multiset, rank, RUZICKA, 0.6)
        assert prefix == ordered[:len(prefix)]

    def test_unit_multiplicities_match_classic_length(self):
        multiset = Multiset("m", {f"e{i}": 1 for i in range(10)})
        rank = hash_rank_function()
        for threshold in (0.3, 0.5, 0.8):
            prefix = prefix_elements(multiset, rank, JACCARD, threshold)
            assert len(prefix) == prefix_length_classic(10, JACCARD, threshold)

    def test_higher_threshold_means_shorter_prefix(self):
        multiset = Multiset("m", {f"e{i}": 1 for i in range(20)})
        rank = hash_rank_function()
        low = prefix_elements(multiset, rank, RUZICKA, 0.1)
        high = prefix_elements(multiset, rank, RUZICKA, 0.9)
        assert len(high) <= len(low)

    def test_frequency_rank_puts_rare_elements_first(self):
        frequencies = {"common": 100, "rare": 1}
        rank = frequency_rank_function(frequencies)
        multiset = Multiset("m", {"common": 1, "rare": 1})
        assert ordered_elements(multiset, rank) == ["rare", "common"]

    def test_measure_without_bound_indexes_everything(self):
        measure = get_measure("vector_cosine")
        multiset = Multiset("m", {f"e{i}": 1 for i in range(5)})
        prefix = prefix_elements(multiset, hash_rank_function(), measure, 0.5)
        assert len(prefix) == 5

    def test_single_element_multiset_keeps_its_element(self):
        multiset = Multiset("m", {"only": 3})
        prefix = prefix_elements(multiset, hash_rank_function(), RUZICKA, 0.9)
        assert prefix == ["only"]


class TestVCLCorrectness:
    @pytest.mark.parametrize("measure", ["ruzicka", "jaccard", "dice", "cosine"])
    @pytest.mark.parametrize("threshold", [0.3, 0.6])
    def test_matches_exact_join(self, small_multisets, test_cluster, measure, threshold):
        config = VCLConfig(measure=measure, threshold=threshold)
        result = VCLJoin(config, cluster=test_cluster).run(small_multisets)
        expected = pair_dictionary(all_pairs_exact(small_multisets, measure, threshold))
        produced = pair_dictionary(result.pairs)
        assert set(produced) == set(expected)
        for key in produced:
            assert produced[key] == pytest.approx(expected[key])

    def test_hash_order_matches_frequency_order(self, small_multisets, test_cluster):
        frequency = VCLJoin(VCLConfig(threshold=0.4, element_order="frequency"),
                            cluster=test_cluster).run(small_multisets)
        hashed = VCLJoin(VCLConfig(threshold=0.4, element_order="hash"),
                         cluster=test_cluster).run(small_multisets)
        assert pair_dictionary(frequency.pairs) == pair_dictionary(hashed.pairs)

    def test_grouping_does_not_lose_pairs(self, small_multisets, test_cluster):
        plain = VCLJoin(VCLConfig(threshold=0.4), cluster=test_cluster).run(small_multisets)
        grouped = VCLJoin(VCLConfig(threshold=0.4, super_element_groups=16),
                          cluster=test_cluster).run(small_multisets)
        assert pair_dictionary(plain.pairs) == pair_dictionary(grouped.pairs)

    def test_grouping_verifies_more_candidates(self, small_multisets, test_cluster):
        plain = VCLJoin(VCLConfig(threshold=0.4), cluster=test_cluster).run(small_multisets)
        grouped = VCLJoin(VCLConfig(threshold=0.4, super_element_groups=8),
                          cluster=test_cluster).run(small_multisets)
        assert (grouped.counters()["vcl/pairs_verified"]
                >= plain.counters()["vcl/pairs_verified"])

    def test_deduplication(self, small_multisets, test_cluster):
        result = VCLJoin(VCLConfig(threshold=0.2), cluster=test_cluster).run(small_multisets)
        pairs = [p.pair for p in result.pairs]
        assert len(pairs) == len(set(pairs))

    def test_pipeline_structure(self, small_multisets, test_cluster):
        result = VCLJoin(cluster=test_cluster).run(small_multisets)
        names = [stats.job_name for stats in result.pipeline.job_stats]
        assert names == ["vcl_frequencies", "vcl_kernel", "vcl_dedup"]
        hash_result = VCLJoin(VCLConfig(element_order="hash"),
                              cluster=test_cluster).run(small_multisets)
        hash_names = [stats.job_name for stats in hash_result.pipeline.job_stats]
        assert hash_names == ["vcl_kernel", "vcl_dedup"]

    @pytest.mark.filterwarnings("default::DeprecationWarning")
    def test_convenience_function(self, overlapping_multisets):
        # Dedicated deprecation-shim coverage; see also
        # tests/test_engine.py::TestDeprecatedShims.
        with pytest.warns(DeprecationWarning):
            pairs = vcl_join(overlapping_multisets, threshold=0.8,
                             cluster=laptop_cluster())
        assert {p.pair for p in pairs} == {("a", "b"), ("d", "e")}

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.sampled_from([0.3, 0.7]))
    def test_random_collections_match_exact(self, seed, threshold):
        multisets = make_random_multisets(12, alphabet_size=15, max_elements=8, seed=seed)
        cluster = laptop_cluster(num_machines=3)
        result = VCLJoin(VCLConfig(threshold=threshold), cluster=cluster).run(multisets)
        expected = {p.pair for p in all_pairs_exact(multisets, "ruzicka", threshold)}
        assert {p.pair for p in result.pairs} == expected


class TestVCLScalabilityLimits:
    def test_alphabet_side_data_can_exhaust_memory(self):
        cluster = Cluster(num_machines=2, memory_per_machine=2_000,
                          disk_per_machine=10 ** 9)
        multisets = [Multiset(f"m{i}", {f"element{j:05d}": 1 for j in range(30)})
                     for i in range(10)]
        with pytest.raises(MemoryBudgetExceeded):
            VCLJoin(VCLConfig(threshold=0.5), cluster=cluster).run(multisets)

    def test_whole_multiset_records_can_exhaust_memory(self):
        cluster = Cluster(num_machines=2, memory_per_machine=2_500,
                          disk_per_machine=10 ** 9)
        big = [Multiset("big1", {f"e{i:05d}": 1 for i in range(200)}),
               Multiset("big2", {f"e{i:05d}": 1 for i in range(200)})]
        with pytest.raises(MemoryBudgetExceeded):
            VCLJoin(VCLConfig(threshold=0.5, element_order="hash"),
                    cluster=cluster).run(big)


class TestGroupingAndConfig:
    def test_grouping_validation(self):
        with pytest.raises(ValueError):
            SuperElementGrouping(0)

    def test_group_multiset_preserves_cardinality(self):
        grouping = SuperElementGrouping(4)
        multiset = Multiset("m", {f"e{i}": i + 1 for i in range(10)})
        grouped = grouping.group_multiset(multiset)
        assert grouped.cardinality == multiset.cardinality
        assert grouped.underlying_cardinality <= 4

    def test_grouped_similarity_never_underestimates(self):
        grouping = SuperElementGrouping(3)
        first = Multiset("a", {f"e{i}": 2 for i in range(6)})
        second = Multiset("b", {f"e{i}": 1 for i in range(3, 9)})
        original = RUZICKA.similarity(first, second)
        grouped = RUZICKA.similarity(grouping.group_multiset(first),
                                     grouping.group_multiset(second))
        assert grouped >= original - 1e-12

    def test_config_validation(self):
        with pytest.raises(JobConfigurationError):
            VCLConfig(element_order="alphabetical")
        with pytest.raises(JobConfigurationError):
            VCLConfig(super_element_groups=0)
        with pytest.raises(ValueError):
            VCLConfig(threshold=2.0)

    def test_kernel_job_side_data_only_for_frequency_order(self):
        job = build_kernel_job(RUZICKA, 0.5, {"a": 1}, use_frequency_order=True)
        assert job.side_data == {"a": 1}
        job = build_kernel_job(RUZICKA, 0.5, {"a": 1}, use_frequency_order=False)
        assert job.side_data is None
