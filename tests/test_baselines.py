"""Tests for the sequential baseline algorithms."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import BruteForceJoin
from repro.baselines.inverted_index import InvertedIndexJoin
from repro.baselines.minhash import (
    LSHParameters,
    MinHashLSHJoin,
    derive_banding,
    estimate_similarity,
    minhash_signature,
)
from repro.baselines.ppjoin import PPJoin
from repro.baselines.sampled import SampledJoin, sample_rate_for_recall
from repro.core.exceptions import DatasetError, MeasureNotApplicableError
from repro.core.multiset import Multiset
from repro.similarity.exact import all_pairs_exact, pair_dictionary
from tests.conftest import make_random_multisets


class TestBruteForce:
    def test_matches_exact_helper(self, small_multisets):
        join = BruteForceJoin("ruzicka", 0.3)
        assert join.run(small_multisets) == all_pairs_exact(small_multisets, "ruzicka", 0.3)


class TestInvertedIndex:
    @pytest.mark.parametrize("measure", ["ruzicka", "jaccard", "dice", "cosine"])
    def test_matches_brute_force(self, small_multisets, measure):
        join = InvertedIndexJoin(measure, 0.3)
        expected = pair_dictionary(all_pairs_exact(small_multisets, measure, 0.3))
        produced = pair_dictionary(join.run(small_multisets))
        assert produced.keys() == expected.keys()

    def test_size_filter_does_not_change_results(self, small_multisets):
        filtered = InvertedIndexJoin("ruzicka", 0.4, use_size_filter=True)
        unfiltered = InvertedIndexJoin("ruzicka", 0.4, use_size_filter=False)
        assert pair_dictionary(filtered.run(small_multisets)) == pair_dictionary(
            unfiltered.run(small_multisets))

    def test_stop_word_skipping_loses_only_stop_word_pairs(self):
        multisets = [Multiset(f"m{i}", {"shared": 1, f"own{i}": 1}) for i in range(5)]
        join = InvertedIndexJoin("jaccard", 0.3, stop_word_frequency=3)
        assert join.run(multisets) == []
        assert join.last_candidates == 0

    def test_candidate_counter(self, small_multisets):
        join = InvertedIndexJoin("ruzicka", 0.3)
        join.run(small_multisets)
        assert join.last_candidates > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_random_agreement(self, seed):
        multisets = make_random_multisets(15, alphabet_size=20, max_elements=10, seed=seed)
        produced = {p.pair for p in InvertedIndexJoin("ruzicka", 0.4).run(multisets)}
        expected = {p.pair for p in all_pairs_exact(multisets, "ruzicka", 0.4)}
        assert produced == expected


class TestPPJoin:
    @pytest.mark.parametrize("measure", ["ruzicka", "jaccard", "dice", "cosine"])
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_matches_brute_force(self, small_multisets, measure, threshold):
        join = PPJoin(measure, threshold)
        expected = pair_dictionary(all_pairs_exact(small_multisets, measure, threshold))
        produced = pair_dictionary(join.run(small_multisets))
        assert produced.keys() == expected.keys()
        for key in produced:
            assert produced[key] == pytest.approx(expected[key])

    def test_prunes_candidates_compared_to_inverted_index(self, small_multisets):
        inverted = InvertedIndexJoin("ruzicka", 0.7, use_size_filter=False)
        prefix = PPJoin("ruzicka", 0.7)
        inverted.run(small_multisets)
        prefix.run(small_multisets)
        assert prefix.last_candidates <= inverted.last_candidates

    def test_filters_can_be_disabled(self, small_multisets):
        loose = PPJoin("ruzicka", 0.5, use_positional_filter=False, use_size_filter=False)
        strict = PPJoin("ruzicka", 0.5)
        assert pair_dictionary(loose.run(small_multisets)) == pair_dictionary(
            strict.run(small_multisets))
        assert strict.last_candidates <= loose.last_candidates

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000), st.sampled_from([0.3, 0.5, 0.8]))
    def test_random_agreement(self, seed, threshold):
        multisets = make_random_multisets(15, alphabet_size=18, max_elements=10, seed=seed)
        produced = {p.pair for p in PPJoin("ruzicka", threshold).run(multisets)}
        expected = {p.pair for p in all_pairs_exact(multisets, "ruzicka", threshold)}
        assert produced == expected


class TestMinHash:
    def test_signature_deterministic(self):
        multiset = Multiset("m", {"a": 2, "b": 1})
        assert minhash_signature(multiset, 16, True) == minhash_signature(multiset, 16, True)

    def test_identical_multisets_have_identical_signatures(self):
        first = Multiset("a", {"x": 2, "y": 1})
        second = Multiset("b", {"x": 2, "y": 1})
        assert (minhash_signature(first, 32, True)
                == minhash_signature(second, 32, True))
        assert estimate_similarity(minhash_signature(first, 32, True),
                                   minhash_signature(second, 32, True)) == 1.0

    def test_estimate_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            estimate_similarity((1, 2), (1,))

    def test_signature_validation(self):
        with pytest.raises(ValueError):
            minhash_signature(Multiset("m", {"a": 1}), 0, True)

    def test_lsh_parameters(self):
        params = LSHParameters(num_bands=4, rows_per_band=2)
        assert params.num_hashes == 8
        assert params.collision_probability(1.0) == pytest.approx(1.0)
        assert params.collision_probability(0.0) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            LSHParameters(num_bands=0)

    def test_unsupported_measure_rejected(self):
        with pytest.raises(MeasureNotApplicableError):
            MinHashLSHJoin(measure="vector_cosine")

    def test_finds_near_duplicates(self):
        base = {f"e{i}": 1 for i in range(40)}
        nearly = dict(base)
        nearly["extra"] = 1
        multisets = [Multiset("orig", base), Multiset("copy", nearly),
                     Multiset("other", {f"z{i}": 1 for i in range(40)})]
        join = MinHashLSHJoin("jaccard", 0.8, LSHParameters(8, 4), verify_exact=True)
        pairs = {p.pair for p in join.run(multisets)}
        assert ("copy", "orig") in pairs
        assert all("other" not in pair for pair in pairs)

    def test_verify_exact_gives_exact_similarities(self):
        first = Multiset("a", {"x": 1, "y": 1})
        second = Multiset("b", {"x": 1, "y": 1, "z": 1})
        join = MinHashLSHJoin("jaccard", 0.5, LSHParameters(16, 2), verify_exact=True)
        produced = pair_dictionary(join.run([first, second]))
        assert produced[("a", "b")] == pytest.approx(2 / 3)

    def test_ruzicka_mode_uses_set_expansion(self):
        first = Multiset("a", {"x": 4})
        second = Multiset("b", {"x": 2})
        join = MinHashLSHJoin("ruzicka", 0.3, LSHParameters(16, 2), verify_exact=True)
        produced = pair_dictionary(join.run([first, second]))
        assert produced[("a", "b")] == pytest.approx(0.5)

    def test_candidate_counter_updated(self, small_multisets):
        join = MinHashLSHJoin("ruzicka", 0.5, LSHParameters(8, 2))
        join.run(small_multisets)
        assert join.last_candidates >= 0

    def test_empty_multisets_never_pair(self):
        # Regression: two empty multisets share the all-zero signature, so
        # they used to band-collide and report similarity=1.0 while the
        # exact Ruzicka similarity of two empty multisets is 0.0.
        empties = [Multiset("e1", {}), Multiset("e2", {}),
                   Multiset("full", {"x": 1, "y": 2})]
        for verify_exact in (False, True):
            join = MinHashLSHJoin("ruzicka", 0.1, LSHParameters(4, 2),
                                  verify_exact=verify_exact)
            assert join.run(empties) == []
            assert join.last_candidates == 0

    def test_empty_multisets_do_not_shadow_real_pairs(self):
        multisets = [Multiset("e", {}),
                     Multiset("a", {"x": 2, "y": 1}),
                     Multiset("b", {"x": 2, "y": 1})]
        join = MinHashLSHJoin("ruzicka", 0.9, verify_exact=True)
        pairs = {pair.pair for pair in join.run(multisets)}
        assert pairs == {("a", "b")}

    def test_duplicate_ids_rejected(self):
        # Regression: the entity dict silently kept only the last multiset
        # per id, so the join answered for a corpus nobody supplied.
        duplicated = [Multiset("m", {"x": 1}), Multiset("m", {"y": 1})]
        with pytest.raises(DatasetError, match="duplicate multiset id"):
            MinHashLSHJoin("ruzicka", 0.5).run(duplicated)

    def test_estimate_similarity_empty_signatures(self):
        assert estimate_similarity((), ()) == 0.0

    def test_collision_probability_edges(self):
        params = LSHParameters(num_bands=7, rows_per_band=3)
        assert params.collision_probability(0.0) == pytest.approx(0.0)
        assert params.collision_probability(1.0) == pytest.approx(1.0)


class TestDeriveBanding:
    @settings(max_examples=60, deadline=None)
    @given(threshold=st.floats(min_value=0.05, max_value=1.0),
           recall=st.floats(min_value=0.5, max_value=0.999))
    def test_derived_banding_meets_recall_at_threshold(self, threshold, recall):
        params = derive_banding(threshold, recall)
        assert params.collision_probability(threshold) >= recall
        assert params.num_hashes <= 256

    def test_tighter_recall_never_loosens_collision_probability(self):
        loose = derive_banding(0.5, 0.8)
        tight = derive_banding(0.5, 0.99)
        assert (tight.collision_probability(0.5)
                >= loose.collision_probability(0.5))

    def test_exactness_demands_rejected(self):
        with pytest.raises(ValueError):
            derive_banding(0.5, 1.0)
        with pytest.raises(ValueError):
            derive_banding(0.5, 0.0)

    def test_threshold_one_still_collides_surely(self):
        params = derive_banding(1.0, 0.95)
        assert params.collision_probability(1.0) == pytest.approx(1.0)


class TestSampledJoin:
    def test_pairs_are_a_subset_of_exact(self, small_multisets):
        sampled = SampledJoin("ruzicka", 0.3, recall=0.9)
        exact = {pair.pair for pair in
                 all_pairs_exact(small_multisets, "ruzicka", 0.3)}
        produced = {pair.pair for pair in sampled.run(small_multisets)}
        assert produced <= exact

    def test_deterministic_across_runs(self, small_multisets):
        first = SampledJoin("ruzicka", 0.3, recall=0.9).run(small_multisets)
        second = SampledJoin("ruzicka", 0.3, recall=0.9).run(small_multisets)
        assert first == second

    def test_recall_one_keeps_everything(self, small_multisets):
        sampled = SampledJoin("ruzicka", 0.3, recall=1.0)
        assert (sampled.run(small_multisets)
                == all_pairs_exact(small_multisets, "ruzicka", 0.3))
        assert sampled.last_sampled == len(small_multisets)

    def test_duplicate_ids_rejected(self):
        duplicated = [Multiset("m", {"x": 1}), Multiset("m", {"y": 1})]
        with pytest.raises(DatasetError, match="duplicate multiset id"):
            SampledJoin("ruzicka", 0.5, recall=0.9).run(duplicated)

    def test_sample_rate_targets_midpoint(self):
        rate = sample_rate_for_recall(0.9)
        assert rate ** 2 == pytest.approx(0.95)
        assert sample_rate_for_recall(1.0) == 1.0
        with pytest.raises(ValueError):
            sample_rate_for_recall(0.0)
