"""Tests for the high-level V-SMART-Join driver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import (
    JobConfigurationError,
    MeasureNotApplicableError,
    MemoryBudgetExceeded,
)
from repro.core.multiset import Multiset
from repro.core.records import InputTuple, explode_multisets
from repro.mapreduce.cluster import Cluster, laptop_cluster
from repro.mapreduce.costmodel import CostParameters
from repro.mapreduce.dfs import Dataset
from repro.similarity.exact import all_pairs_exact, pair_dictionary
from repro.vsmart.driver import (
    JOINING_ALGORITHMS,
    VSmartJoin,
    VSmartJoinConfig,
    normalise_input,
    vsmart_join,
)
from tests.conftest import make_random_multisets


class TestConfig:
    def test_defaults(self):
        config = VSmartJoinConfig()
        assert config.algorithm == "online_aggregation"
        assert config.threshold == 0.5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(JobConfigurationError):
            VSmartJoinConfig(algorithm="magic")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            VSmartJoinConfig(threshold=0.0)

    def test_invalid_sharding_threshold_rejected(self):
        with pytest.raises(JobConfigurationError):
            VSmartJoinConfig(sharding_threshold=0)

    def test_disjunctive_measure_rejected_at_run_time(self):
        config = VSmartJoinConfig(measure="direct_ruzicka")
        with pytest.raises(MeasureNotApplicableError):
            config.resolved_measure()


class TestNormaliseInput:
    def test_multisets(self, overlapping_multisets):
        dataset = normalise_input(overlapping_multisets)
        assert len(dataset) == sum(m.underlying_cardinality for m in overlapping_multisets)

    def test_input_tuples(self):
        records = [InputTuple("a", "x", 1)]
        assert list(normalise_input(records)) == records

    def test_dataset_passthrough(self):
        dataset = Dataset.from_records([InputTuple("a", "x", 1)])
        assert normalise_input(dataset) is dataset

    def test_empty_input(self):
        assert len(normalise_input([])) == 0

    def test_garbage_rejected(self):
        with pytest.raises(JobConfigurationError):
            normalise_input(["not a record"])

    def test_unknown_record_type_message_names_the_type(self):
        with pytest.raises(JobConfigurationError, match="str"):
            normalise_input(["not a record"])

    def test_mixed_tuples_and_multisets_rejected(self):
        mixed = [InputTuple("a", "x", 1), Multiset("b", {"y": 1})]
        with pytest.raises(JobConfigurationError, match="mixed"):
            normalise_input(mixed)

    def test_mixed_multisets_and_garbage_rejected(self):
        mixed = [Multiset("b", {"y": 1}), "not a record"]
        with pytest.raises(JobConfigurationError, match="mixed"):
            normalise_input(mixed)

    def test_empty_input_yields_named_empty_dataset(self):
        dataset = normalise_input(iter(()))
        assert len(dataset) == 0
        assert dataset.name == "raw_input"


class TestDriverCorrectness:
    @pytest.mark.parametrize("algorithm", JOINING_ALGORITHMS)
    @pytest.mark.parametrize("measure", ["ruzicka", "jaccard", "cosine"])
    def test_matches_exact_join(self, algorithm, measure, small_multisets, test_cluster):
        threshold = 0.3
        config = VSmartJoinConfig(algorithm=algorithm, measure=measure,
                                  threshold=threshold, sharding_threshold=10)
        result = VSmartJoin(config, cluster=test_cluster).run(small_multisets)
        expected = pair_dictionary(all_pairs_exact(small_multisets, measure, threshold))
        produced = pair_dictionary(result.pairs)
        assert set(produced) == set(expected)
        for key in produced:
            assert produced[key] == pytest.approx(expected[key])

    def test_all_algorithms_agree(self, small_multisets, test_cluster):
        results = {}
        for algorithm in JOINING_ALGORITHMS:
            config = VSmartJoinConfig(algorithm=algorithm, threshold=0.25,
                                      sharding_threshold=12)
            results[algorithm] = pair_dictionary(
                VSmartJoin(config, cluster=test_cluster).run(small_multisets).pairs)
        baseline = results["online_aggregation"]
        for algorithm, produced in results.items():
            assert produced.keys() == baseline.keys(), algorithm

    def test_empty_input_returns_no_pairs(self, test_cluster):
        result = VSmartJoin(cluster=test_cluster).run([])
        assert result.pairs == []

    def test_duplicate_free_output(self, small_multisets, test_cluster):
        result = VSmartJoin(VSmartJoinConfig(threshold=0.2),
                            cluster=test_cluster).run(small_multisets)
        pairs = [p.pair for p in result.pairs]
        assert len(pairs) == len(set(pairs))

    def test_accepts_raw_tuples_and_dataset(self, overlapping_multisets, test_cluster):
        records = explode_multisets(overlapping_multisets)
        from_multisets = VSmartJoin(cluster=test_cluster).run(overlapping_multisets)
        from_tuples = VSmartJoin(cluster=test_cluster).run(records)
        from_dataset = VSmartJoin(cluster=test_cluster).run(Dataset.from_records(records))
        assert pair_dictionary(from_multisets.pairs) == pair_dictionary(from_tuples.pairs)
        assert pair_dictionary(from_tuples.pairs) == pair_dictionary(from_dataset.pairs)

    def test_stop_word_preprocessing_runs_extra_job(self, small_multisets, test_cluster):
        config = VSmartJoinConfig(stop_word_frequency=50)
        result = VSmartJoin(config, cluster=test_cluster).run(small_multisets)
        job_names = [stats.job_name for stats in result.pipeline.job_stats]
        assert job_names[0] == "stop_word_filter"

    def test_chunked_similarity_phase_same_results(self, small_multisets, test_cluster):
        plain = VSmartJoin(VSmartJoinConfig(threshold=0.25),
                           cluster=test_cluster).run(small_multisets)
        chunked = VSmartJoin(VSmartJoinConfig(threshold=0.25, chunk_size=4),
                             cluster=test_cluster).run(small_multisets)
        assert pair_dictionary(plain.pairs) == pair_dictionary(chunked.pairs)


class TestDriverReporting:
    def test_phase_split_and_job_names(self, small_multisets, test_cluster):
        result = VSmartJoin(VSmartJoinConfig(algorithm="sharding", sharding_threshold=8),
                            cluster=test_cluster).run(small_multisets)
        names = [stats.job_name for stats in result.pipeline.job_stats]
        assert names == ["sharding1", "sharding2", "similarity1", "similarity2"]
        assert result.joining_seconds > 0
        assert result.similarity_seconds > 0
        assert result.simulated_seconds == pytest.approx(
            result.joining_seconds + result.similarity_seconds)

    def test_lookup_pipeline_has_three_jobs(self, small_multisets, test_cluster):
        result = VSmartJoin(VSmartJoinConfig(algorithm="lookup"),
                            cluster=test_cluster).run(small_multisets)
        names = [stats.job_name for stats in result.pipeline.job_stats]
        assert names == ["lookup1", "lookup2+similarity1", "similarity2"]

    def test_counters_merged(self, small_multisets, test_cluster):
        result = VSmartJoin(cluster=test_cluster).run(small_multisets)
        counters = result.counters()
        assert counters["similarity2/pairs_evaluated"] > 0

    def test_artifacts(self, small_multisets, test_cluster):
        result = VSmartJoin(VSmartJoinConfig(algorithm="lookup", threshold=0.4),
                            cluster=test_cluster).run(small_multisets)
        artifacts = result.pipeline.artifacts
        assert artifacts["algorithm"] == "lookup"
        assert artifacts["measure"] == "ruzicka"
        assert artifacts["threshold"] == 0.4


@pytest.mark.filterwarnings("default::DeprecationWarning")
class TestConvenienceFunction:
    """Dedicated deprecation-shim coverage for the legacy one-call API.

    The ``filterwarnings`` mark keeps these alive under the CI run that
    escalates ``DeprecationWarning`` to an error everywhere else.
    """

    def test_vsmart_join_emits_a_deprecation_warning(self,
                                                     overlapping_multisets):
        with pytest.warns(DeprecationWarning, match="vsmart_join"):
            vsmart_join(overlapping_multisets, threshold=0.8,
                        cluster=laptop_cluster())

    def test_vsmart_join_still_rejects_non_joining_algorithms(
            self, overlapping_multisets):
        # Historical contract: the function only ran the V-SMART-Join
        # joining algorithms; engine-only names must keep erroring.
        for algorithm in ("exact", "vcl", "minhash", "auto", "magic"):
            with pytest.warns(DeprecationWarning):
                with pytest.raises(JobConfigurationError, match="joining"):
                    vsmart_join(overlapping_multisets, threshold=0.8,
                                algorithm=algorithm)

    def test_vsmart_join_returns_pairs(self, overlapping_multisets):
        pairs = vsmart_join(overlapping_multisets, threshold=0.8,
                            cluster=laptop_cluster())
        assert {p.pair for p in pairs} == {("a", "b"), ("d", "e")}

    def test_vsmart_join_accepts_overrides(self, overlapping_multisets):
        pairs = vsmart_join(overlapping_multisets, threshold=0.8,
                            algorithm="sharding", sharding_threshold=2,
                            cluster=laptop_cluster())
        assert {p.pair for p in pairs} == {("a", "b"), ("d", "e")}

    def test_vsmart_join_forwards_enforce_budgets(self, small_multisets):
        tiny = Cluster(num_machines=4, memory_per_machine=500,
                       disk_per_machine=10_000_000)
        with pytest.raises(MemoryBudgetExceeded):
            vsmart_join(small_multisets, threshold=0.5, algorithm="lookup",
                        cluster=tiny)
        relaxed = vsmart_join(small_multisets, threshold=0.5, algorithm="lookup",
                              cluster=tiny, enforce_budgets=False)
        reference = vsmart_join(small_multisets, threshold=0.5,
                                cluster=laptop_cluster())
        assert {p.pair for p in relaxed} == {p.pair for p in reference}

    def test_vsmart_join_forwards_cost_parameters(self, overlapping_multisets):
        slow = CostParameters(job_overhead_seconds=1_000.0)
        pairs = vsmart_join(overlapping_multisets, threshold=0.8,
                            cluster=laptop_cluster(), cost_parameters=slow)
        assert {p.pair for p in pairs} == {("a", "b"), ("d", "e")}
        # The same calibration through the class API shows it took effect.
        join = VSmartJoin(VSmartJoinConfig(threshold=0.8),
                          cluster=laptop_cluster(), cost_parameters=slow)
        result = join.run(overlapping_multisets)
        assert result.simulated_seconds >= 3_000.0  # 3+ jobs x 1000s overhead


class TestPropertyAgreement:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([0.2, 0.5, 0.8]))
    def test_random_collections_agree_with_exact(self, seed, threshold):
        multisets = make_random_multisets(12, alphabet_size=15, max_elements=8,
                                          seed=seed)
        cluster = laptop_cluster(num_machines=3)
        expected = {p.pair for p in all_pairs_exact(multisets, "ruzicka", threshold)}
        for algorithm in JOINING_ALGORITHMS:
            config = VSmartJoinConfig(algorithm=algorithm, threshold=threshold,
                                      sharding_threshold=4)
            result = VSmartJoin(config, cluster=cluster).run(multisets)
            assert {p.pair for p in result.pairs} == expected, algorithm
