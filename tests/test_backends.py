"""Tests for the pluggable execution backends.

The contract under test: backends change *where* mapper/combiner/reducer
work runs, never *what* it computes — join output, counters and the full
per-job statistics must be identical across the serial, thread and process
backends for every registered measure and joining algorithm.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exceptions import JobConfigurationError, MemoryBudgetExceeded
from repro.core.multiset import Multiset
from repro.mapreduce import (
    Dataset,
    JobSpec,
    LocalJobRunner,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
)
from repro.mapreduce.backends import default_worker_count
from repro.mapreduce.cluster import laptop_cluster
from repro.similarity.registry import supported_measures
from repro.engine.engine import join
from repro.vsmart.driver import (
    JOINING_ALGORITHMS,
    VSmartJoin,
    VSmartJoinConfig,
)
from tests.test_mapreduce_runner import (
    MaterialisingReducer,
    WordCountMapper,
    WordCountReducer,
)


@pytest.fixture(scope="module")
def thread_backend():
    with ThreadBackend(num_workers=4) as backend:
        yield backend


@pytest.fixture(scope="module")
def process_backend():
    with ProcessBackend(num_workers=2) as backend:
        yield backend


def small_corpus(count: int = 12, stride: int = 5) -> list[Multiset]:
    """A deterministic corpus with overlapping element sets."""
    return [
        Multiset(
            f"m{index}",
            {f"e{(index + j) % stride}": (index + j) % 3 + 1 for j in range(index % 4 + 2)},
        )
        for index in range(count)
    ]


def run_join(backend, corpus, algorithm="online_aggregation", measure="ruzicka",
             threshold=0.3, intern=True):
    config = VSmartJoinConfig(
        algorithm=algorithm,
        measure=measure,
        threshold=threshold,
        sharding_threshold=3,
        intern=intern,
    )
    join = VSmartJoin(config, cluster=laptop_cluster(), backend=backend)
    return join.run(corpus)


def strip_telemetry(counters):
    """Drop the reserved physical-execution counter namespaces.

    ``shuffle/`` and ``sql/`` counters describe *how* a backend executed
    (spilled runs, pushed-down queries); the parity contract covers what
    was computed, which is everything else.
    """
    return {name: value for name, value in counters.items()
            if not name.startswith(("shuffle/", "sql/"))}


def comparable_stats(stats):
    """Job stats as a dict with telemetry counters stripped."""
    as_dict = dataclasses.asdict(stats)
    as_dict["counters"] = strip_telemetry(as_dict["counters"])
    return as_dict


def exec_backends():
    """Fresh disk (spill-heavy) and sql backend instances."""
    return (get_backend("disk", memory_budget_bytes=2048, merge_fan_in=2),
            get_backend("sql"))


class TestBackendFactory:
    def test_names_resolve(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_backend("Process"), ProcessBackend)
        assert isinstance(get_backend(" SERIAL "), SerialBackend)

    def test_none_resolves_to_serial(self):
        assert isinstance(get_backend(None), SerialBackend)

    def test_instances_pass_through(self, thread_backend):
        assert get_backend(thread_backend) is thread_backend

    def test_unknown_backend_lists_available(self):
        with pytest.raises(JobConfigurationError,
                           match="disk, process, serial, sql, thread"):
            get_backend("gpu")

    def test_available_backends(self):
        assert available_backends() == ["disk", "process", "serial", "sql",
                                        "thread"]

    def test_lazy_backends_resolve_by_name(self):
        from repro.exec import DiskShuffleBackend, SqlBackend

        assert isinstance(get_backend("disk"), DiskShuffleBackend)
        assert isinstance(get_backend("sql"), SqlBackend)

    def test_options_forward_to_backend_constructor(self):
        backend = get_backend("disk", memory_budget_bytes=4096, merge_fan_in=3)
        assert backend.memory_budget_bytes == 4096
        assert backend.merge_fan_in == 3

    def test_serial_backend_has_one_worker(self):
        assert SerialBackend(num_workers=8).num_workers == 1

    def test_worker_count_defaults_to_cpus(self):
        assert ThreadBackend().num_workers == default_worker_count()
        assert ProcessBackend(num_workers=3).num_workers == 3


class TestRunTasks:
    def test_results_preserve_task_order(self, thread_backend, process_backend):
        tasks = list(range(20))
        expected = [task * task for task in tasks]
        for backend in (SerialBackend(), thread_backend, process_backend):
            assert backend.run_tasks(_square, tasks) == expected

    def test_empty_task_list(self, thread_backend, process_backend):
        for backend in (SerialBackend(), thread_backend, process_backend):
            assert backend.run_tasks(_square, []) == []

    def test_pools_are_reusable_after_close(self):
        backend = ThreadBackend(num_workers=2)
        assert backend.run_tasks(_square, [2]) == [4]
        backend.close()
        assert backend.run_tasks(_square, [3]) == [9]
        backend.close()


def _square(value: int) -> int:
    return value * value


class TestWordCountParity:
    def run_wordcount(self, backend):
        runner = LocalJobRunner(laptop_cluster(), backend=backend)
        documents = [f"w{i % 7} w{i % 3} w{i % 5}" for i in range(40)]
        job = JobSpec("wordcount", WordCountMapper(), WordCountReducer())
        return runner.run(job, Dataset.from_records(documents))

    def test_output_and_stats_identical(self, thread_backend, process_backend):
        base = self.run_wordcount(SerialBackend())
        for backend in (thread_backend, process_backend):
            result = self.run_wordcount(backend)
            assert list(result.output.records) == list(base.output.records)
            assert dataclasses.asdict(result.stats) == dataclasses.asdict(base.stats)


class TestJoinParity:
    """Serial, thread and process backends agree on every join."""

    @pytest.mark.parametrize("algorithm", JOINING_ALGORITHMS)
    def test_algorithms_agree_across_backends(self, algorithm, thread_backend,
                                              process_backend):
        corpus = small_corpus()
        base = run_join(SerialBackend(), corpus, algorithm=algorithm)
        for backend in (thread_backend, process_backend):
            result = run_join(backend, corpus, algorithm=algorithm)
            assert result.pairs == base.pairs, backend.name
            assert result.counters() == base.counters(), backend.name
            for mine, theirs in zip(base.pipeline.job_stats,
                                    result.pipeline.job_stats, strict=True):
                assert dataclasses.asdict(mine) == dataclasses.asdict(theirs), \
                    (backend.name, mine.job_name)

    @pytest.mark.parametrize("measure", supported_measures())
    def test_measures_agree_across_backends(self, measure, thread_backend,
                                            process_backend):
        corpus = small_corpus(count=10)
        base = run_join(SerialBackend(), corpus, measure=measure)
        for backend in (thread_backend, process_backend):
            result = run_join(backend, corpus, measure=measure)
            assert result.pairs == base.pairs, (backend.name, measure)
            assert result.counters() == base.counters(), (backend.name, measure)

    def test_simulated_seconds_are_backend_invariant(self, process_backend):
        corpus = small_corpus()
        base = run_join(SerialBackend(), corpus)
        result = run_join(process_backend, corpus)
        assert result.simulated_seconds == base.simulated_seconds

    @pytest.mark.parametrize("element_order", ["frequency", "hash"])
    def test_vcl_agrees_across_backends(self, element_order, thread_backend,
                                        process_backend):
        # The VCL kernel mapper carries a rank function as state; this is the
        # pickling-sensitive path the vsmart pipelines never exercise.
        corpus = small_corpus()
        base = join(corpus, threshold=0.3, algorithm="vcl",
                    vcl_element_order=element_order).pairs
        for backend in (thread_backend, process_backend):
            pairs = join(corpus, threshold=0.3, algorithm="vcl",
                         vcl_element_order=element_order,
                         backend=backend).pairs
            assert pairs == base, backend.name


class TestErrorPropagation:
    def test_memory_budget_error_crosses_process_boundary(self, process_backend):
        cluster = laptop_cluster().with_memory(400)
        runner = LocalJobRunner(cluster, backend=process_backend)
        documents = [" ".join(["hot"] * 40) for _ in range(20)]
        job = JobSpec("materialise", WordCountMapper(), MaterialisingReducer())
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            runner.run(job, Dataset.from_records(documents))
        assert excinfo.value.required_bytes > excinfo.value.budget_bytes > 0


@st.composite
def corpora(draw):
    """Small random corpora of multisets over a tiny shared alphabet."""
    count = draw(st.integers(min_value=2, max_value=8))
    members = []
    for index in range(count):
        contents = draw(
            st.dictionaries(
                st.sampled_from([f"e{i}" for i in range(6)]),
                st.integers(min_value=1, max_value=4),
                min_size=1,
                max_size=4,
            )
        )
        members.append(Multiset(f"m{index}", contents))
    return members


class TestPropertyParity:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(corpus=corpora(),
           algorithm=st.sampled_from(JOINING_ALGORITHMS),
           threshold=st.sampled_from([0.2, 0.5, 0.8]))
    def test_random_corpora_agree(self, corpus, algorithm, threshold,
                                  thread_backend, process_backend):
        base = run_join(SerialBackend(), corpus, algorithm=algorithm,
                        threshold=threshold)
        for backend in (thread_backend, process_backend):
            result = run_join(backend, corpus, algorithm=algorithm,
                              threshold=threshold)
            assert result.pairs == base.pairs, backend.name
            assert result.counters() == base.counters(), backend.name

    @settings(max_examples=12, deadline=None)
    @given(corpus=corpora(),
           algorithm=st.sampled_from(JOINING_ALGORITHMS),
           measure=st.sampled_from(["ruzicka", "jaccard", "cosine"]),
           threshold=st.sampled_from([0.2, 0.5, 0.8]),
           intern=st.booleans())
    def test_exec_backends_are_bit_identical(self, corpus, algorithm, measure,
                                             threshold, intern):
        """Disk-shuffle and SQL backends reproduce serial joins exactly.

        Output pairs, counters (minus reserved telemetry namespaces) and
        the complete per-job statistics must match bit for bit, across
        measures, joining algorithms and interning on/off — the same
        discipline the thread/process backends are held to.
        """
        base = run_join(SerialBackend(), corpus, algorithm=algorithm,
                        measure=measure, threshold=threshold, intern=intern)
        for backend in exec_backends():
            result = run_join(backend, corpus, algorithm=algorithm,
                              measure=measure, threshold=threshold,
                              intern=intern)
            assert result.pairs == base.pairs, backend.name
            assert (strip_telemetry(result.counters())
                    == strip_telemetry(base.counters())), backend.name
            for mine, theirs in zip(base.pipeline.job_stats,
                                    result.pipeline.job_stats, strict=True):
                assert comparable_stats(mine) == comparable_stats(theirs), \
                    (backend.name, mine.job_name)
