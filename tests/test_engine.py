"""Tests for the unified engine API (`repro.engine`).

Covers the declarative :class:`JoinSpec`, the cost-model planner (choice,
feasibility exclusions, explain rendering), the :class:`SimilarityEngine`
execution paths — property-tested for bit-identical parity with the legacy
entry points across measures, algorithms and backends — the uniform
:class:`JoinResult` surface with its serving handoffs, and the deprecated
``vsmart_join`` / ``vcl_join`` shims.
"""

from __future__ import annotations

import io
import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    JoinResult,
    JoinSpec,
    Multiset,
    SimilarityEngine,
    available_algorithms,
    join,
    list_measures,
    vcl_join,
    vsmart_join,
)
from repro.analysis.calibration import (
    paper_scale_cluster,
    paper_scale_cost_parameters,
)
from repro.analysis.experiments import run_algorithm
from repro.baselines.inverted_index import InvertedIndexJoin
from repro.baselines.ppjoin import PPJoin
from repro.core.exceptions import (
    DatasetError,
    JobConfigurationError,
    JobTimeoutError,
    MemoryBudgetExceeded,
)
from repro.datasets.ip_cookie import IPCookieConfig, generate_ip_cookie_dataset
from repro.engine.planner import CorpusProfile, Planner
from repro.engine.spec import PLANNABLE_ALGORITHMS, SEQUENTIAL_ALGORITHMS
from repro.mapreduce.cluster import HADOOP, laptop_cluster
from repro.mapreduce.costmodel import CostParameters
from repro.serving.api import QueryRequest
from repro.serving.index import SimilarityIndex
from repro.similarity.exact import all_pairs_exact
from repro.similarity.registry import supported_measures
from repro.vcl.driver import VCLConfig, VCLJoin
from repro.vsmart.driver import JOINING_ALGORITHMS, VSmartJoin, VSmartJoinConfig
from tests.conftest import make_random_multisets


def skewed_corpus():
    """A Zipf-skewed IP/cookie corpus with planted proxy groups."""
    return generate_ip_cookie_dataset(IPCookieConfig(
        num_ips=150, num_cookies=800, max_cookies_per_ip=120,
        min_cookies_per_ip=3, num_proxy_groups=6, ips_per_proxy_group=5,
        cookies_per_proxy_pool=30, proxy_cookie_affinity=0.9,
        seed=42)).multisets


def uniform_corpus():
    """A flat random corpus: no hot elements, no giant multisets."""
    return make_random_multisets(120, alphabet_size=400, max_elements=30,
                                 seed=11)


class TestJoinSpec:
    def test_defaults_plan_automatically(self):
        spec = JoinSpec()
        assert spec.algorithm == "auto"
        assert spec.measure == "ruzicka"
        assert spec.threshold == 0.5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(JobConfigurationError, match="magic"):
            JoinSpec(algorithm="magic")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            JoinSpec(threshold=0.0)

    def test_invalid_sharding_parameter_rejected(self):
        with pytest.raises(JobConfigurationError):
            JoinSpec(sharding_threshold=0)

    def test_vcl_knobs_validated_eagerly(self):
        with pytest.raises(JobConfigurationError):
            JoinSpec(algorithm="vcl", vcl_element_order="alphabetical")

    def test_vcl_knobs_validated_under_auto_too(self):
        # "auto" prices a VCL candidate, so bad knobs must fail at
        # construction, not after the whole planning pass.
        with pytest.raises(JobConfigurationError):
            JoinSpec(vcl_element_order="alphabetical")

    def test_vsmart_config_round_trip(self):
        spec = JoinSpec(algorithm="lookup", threshold=0.4, chunk_size=8,
                        intern=False)
        config = spec.vsmart_config()
        assert config == VSmartJoinConfig(algorithm="lookup", threshold=0.4,
                                          chunk_size=8, intern=False)

    def test_vsmart_config_rejects_non_joining_algorithm(self):
        with pytest.raises(JobConfigurationError):
            JoinSpec(algorithm="vcl").vsmart_config()

    def test_vcl_config_round_trip(self):
        spec = JoinSpec(algorithm="vcl", threshold=0.3,
                        vcl_element_order="hash", intern=False)
        assert spec.vcl_config() == VCLConfig(threshold=0.3,
                                              element_order="hash",
                                              intern=False)

    def test_describe_resolves_measure_name(self):
        from repro.similarity.measures import JaccardSimilarity
        described = JoinSpec(measure=JaccardSimilarity()).describe()
        assert described["measure"] == "jaccard"
        assert described["algorithm"] == "auto"


class TestDiscovery:
    def test_available_algorithms_cover_every_execution_path(self):
        algorithms = available_algorithms()
        assert algorithms[0] == "auto"
        for name in PLANNABLE_ALGORITHMS + SEQUENTIAL_ALGORITHMS:
            assert name in algorithms

    def test_every_advertised_algorithm_is_accepted_by_joinspec(self):
        for name in available_algorithms():
            # "sampled" is the one algorithm that *requires* opting into
            # inexactness; everything else must construct bare.
            if name == "sampled":
                JoinSpec(algorithm=name, recall=0.95)
            else:
                JoinSpec(algorithm=name)  # must not raise

    def test_list_measures_matches_registry(self):
        measures = list_measures()
        assert "ruzicka" in measures and "direct_ruzicka" in measures
        supported = list_measures(supported_only=True)
        assert "direct_ruzicka" not in supported
        assert set(supported) < set(measures)

    def test_every_supported_measure_is_accepted_by_joinspec(self):
        for name in list_measures(supported_only=True):
            JoinSpec(measure=name).resolved_measure()


class TestEngineParity:
    """Engine output must be bit-identical to the legacy entry points."""

    @pytest.mark.parametrize("measure", supported_measures())
    @pytest.mark.parametrize("algorithm", JOINING_ALGORITHMS)
    def test_vsmart_parity_per_measure(self, measure, algorithm,
                                       small_multisets, test_cluster):
        spec = JoinSpec(measure=measure, threshold=0.3, algorithm=algorithm,
                        sharding_threshold=10)
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(spec, small_multisets)
        legacy = VSmartJoin(spec.vsmart_config(),
                            cluster=test_cluster).run(small_multisets)
        assert result.pairs == legacy.pairs

    @pytest.mark.parametrize("measure", ["ruzicka", "jaccard", "cosine"])
    def test_vcl_parity_per_measure(self, measure, small_multisets,
                                    test_cluster):
        spec = JoinSpec(measure=measure, threshold=0.3, algorithm="vcl")
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(spec, small_multisets)
        legacy = VCLJoin(spec.vcl_config(),
                         cluster=test_cluster).run(small_multisets)
        assert result.pairs == legacy.pairs

    def test_exact_parity(self, small_multisets, test_cluster):
        spec = JoinSpec(threshold=0.3, algorithm="exact")
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(spec, small_multisets)
        assert result.pairs == all_pairs_exact(small_multisets, "ruzicka",
                                               0.3)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_parity(self, backend, small_multisets, test_cluster):
        spec = JoinSpec(threshold=0.3)
        with SimilarityEngine(cluster=test_cluster,
                              backend=backend) as engine:
            result = engine.run(
                JoinSpec(threshold=0.3, algorithm="online_aggregation"),
                small_multisets)
        serial = VSmartJoin(spec.vsmart_config("online_aggregation"),
                            cluster=test_cluster).run(small_multisets)
        assert result.pairs == serial.pairs
        assert result.counters() == serial.pipeline.counters()
        assert result.simulated_seconds == serial.simulated_seconds

    def test_sequential_baselines_find_the_exact_pairs(self, small_multisets,
                                                       test_cluster):
        expected = {p.pair for p in all_pairs_exact(small_multisets,
                                                    "ruzicka", 0.3)}
        with SimilarityEngine(cluster=test_cluster) as engine:
            for algorithm in ("inverted_index", "ppjoin"):
                result = engine.run(JoinSpec(threshold=0.3,
                                             algorithm=algorithm),
                                    small_multisets)
                assert {p.pair for p in result.pairs} == expected, algorithm

    def test_inverted_index_parity_with_direct_call(self, small_multisets,
                                                    test_cluster):
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(
                JoinSpec(threshold=0.3, algorithm="inverted_index",
                         stop_word_frequency=12), small_multisets)
        direct = InvertedIndexJoin("ruzicka", 0.3, stop_word_frequency=12)
        assert result.pairs == sorted(direct.run(small_multisets))

    def test_ppjoin_parity_with_direct_call(self, small_multisets,
                                            test_cluster):
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(JoinSpec(threshold=0.4, algorithm="ppjoin"),
                                small_multisets)
        assert result.pairs == sorted(PPJoin("ruzicka", 0.4)
                                      .run(small_multisets))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           measure=st.sampled_from(sorted(supported_measures())),
           algorithm=st.sampled_from(JOINING_ALGORITHMS + ("vcl", "exact")),
           backend=st.sampled_from(["serial", "thread"]),
           threshold=st.sampled_from([0.2, 0.5, 0.8]),
           intern=st.booleans())
    def test_property_engine_equals_legacy(self, seed, measure, algorithm,
                                           backend, threshold, intern):
        multisets = make_random_multisets(10, alphabet_size=14,
                                          max_elements=8, seed=seed)
        cluster = laptop_cluster(num_machines=3)
        spec = JoinSpec(measure=measure, threshold=threshold,
                        algorithm=algorithm, sharding_threshold=4,
                        intern=intern)
        with SimilarityEngine(cluster=cluster, backend=backend) as engine:
            result = engine.run(spec, multisets)
        if algorithm == "exact":
            legacy_pairs = all_pairs_exact(multisets, measure, threshold,
                                           intern=intern)
        elif algorithm == "vcl":
            legacy_pairs = VCLJoin(spec.vcl_config(), cluster=cluster,
                                   backend=backend).run(multisets).pairs
        else:
            legacy_pairs = VSmartJoin(spec.vsmart_config(), cluster=cluster,
                                      backend=backend).run(multisets).pairs
        assert result.pairs == legacy_pairs


class TestPlanner:
    @pytest.fixture(scope="class")
    def paper_engine(self):
        return SimilarityEngine(cluster=paper_scale_cluster(500),
                                cost_parameters=paper_scale_cost_parameters())

    @pytest.mark.parametrize("corpus_builder", [skewed_corpus, uniform_corpus],
                             ids=["skewed", "uniform"])
    def test_auto_picks_the_measured_fastest_algorithm(self, corpus_builder,
                                                       paper_engine):
        multisets = corpus_builder()
        spec = JoinSpec(threshold=0.5, sharding_threshold=64)
        plan = paper_engine.plan(spec, multisets)
        measured = {}
        for algorithm in PLANNABLE_ALGORITHMS:
            explicit = JoinSpec(threshold=0.5, sharding_threshold=64,
                                algorithm=algorithm)
            measured[algorithm] = paper_engine.run(
                explicit, multisets).simulated_seconds
        fastest = min(measured, key=measured.get)
        assert plan.algorithm == fastest, (plan.algorithm, measured)

    def test_auto_result_carries_the_plan(self, paper_engine):
        multisets = uniform_corpus()
        result = paper_engine.run(JoinSpec(threshold=0.5), multisets)
        assert result.plan is not None
        assert result.algorithm == result.plan.algorithm
        assert result.algorithm in PLANNABLE_ALGORITHMS
        assert result.predicted_seconds == result.plan.predicted_seconds

    def test_prediction_is_calibrated_within_a_factor_of_two(self,
                                                             paper_engine):
        multisets = skewed_corpus()
        spec = JoinSpec(threshold=0.5, sharding_threshold=64)
        plan = paper_engine.plan(spec, multisets)
        executed = paper_engine.run(
            JoinSpec(threshold=0.5, sharding_threshold=64,
                     algorithm=plan.algorithm), multisets)
        ratio = plan.predicted_seconds / executed.simulated_seconds
        assert 0.5 <= ratio <= 2.0, ratio

    def test_hadoop_profile_excludes_online_aggregation(self):
        engine = SimilarityEngine(
            cluster=paper_scale_cluster(500, profile=HADOOP),
            cost_parameters=paper_scale_cost_parameters())
        plan = engine.plan(JoinSpec(threshold=0.5), uniform_corpus())
        assert plan.algorithm != "online_aggregation"
        excluded = plan.candidate_for("online_aggregation")
        assert not excluded.feasible
        assert "secondary keys" in excluded.exclusion_reason

    def test_memory_budget_excludes_lookup_side_data(self):
        # A budget big enough for the pipelines' groups but far too small
        # for a whole-corpus lookup table — the paper's section 7.2 failure.
        multisets = skewed_corpus()
        cluster = paper_scale_cluster(500).with_memory(4_000)
        engine = SimilarityEngine(cluster=cluster,
                                  cost_parameters=paper_scale_cost_parameters())
        plan = engine.plan(JoinSpec(threshold=0.5, sharding_threshold=64),
                           multisets)
        lookup = plan.candidate_for("lookup")
        assert not lookup.feasible
        assert "side data" in lookup.exclusion_reason
        assert plan.algorithm != "lookup"

    def test_budget_exclusions_lift_with_enforce_budgets_off(self):
        multisets = skewed_corpus()
        cluster = paper_scale_cluster(500).with_memory(4_000)
        planner = Planner(paper_scale_cost_parameters())
        relaxed = planner.plan(JoinSpec(threshold=0.5, sharding_threshold=64),
                               multisets, cluster, enforce_budgets=False)
        assert relaxed.candidate_for("lookup").feasible

    def test_scheduler_limit_excludes_slow_pipelines(self, paper_engine):
        multisets = skewed_corpus()
        cluster = paper_scale_cluster(500).with_scheduler_limit(40.0)
        planner = Planner(paper_scale_cost_parameters())
        plan = planner.plan(JoinSpec(threshold=0.5, sharding_threshold=64),
                            multisets, cluster)
        vcl = plan.candidate_for("vcl")
        assert not vcl.feasible
        assert "scheduler limit" in vcl.exclusion_reason

    def test_explicit_algorithm_plans_a_single_candidate(self, paper_engine):
        plan = paper_engine.plan(JoinSpec(threshold=0.5, algorithm="lookup"),
                                 uniform_corpus())
        assert plan.algorithm == "lookup"
        assert len(plan.candidates) == 1
        assert "explicitly" in plan.reason

    def test_explain_renders_candidates_and_job_breakdown(self, paper_engine):
        plan = paper_engine.plan(JoinSpec(threshold=0.5), uniform_corpus())
        rendered = plan.explain()
        assert "candidates (cheapest first):" in rendered
        for algorithm in PLANNABLE_ALGORITHMS:
            assert algorithm in rendered
        for column in ("overhead", "side", "shuffle", "reduce"):
            assert column in rendered
        # Every job of the chosen pipeline appears as a row.
        for job in plan.chosen.jobs:
            assert job.name in rendered

    def test_profile_statistics(self):
        multisets = uniform_corpus()
        profile = CorpusProfile.from_multisets(multisets)
        assert profile.num_multisets == len(multisets)
        assert profile.num_records == sum(m.underlying_cardinality
                                          for m in multisets)
        assert profile.max_cardinality == max(m.underlying_cardinality
                                              for m in multisets)
        assert profile.candidate_records > 0
        assert profile.element_skew >= 1.0

    def test_session_corpus_iterator_is_materialised_once(self,
                                                          overlapping_multisets,
                                                          test_cluster):
        # A one-shot iterator as the session corpus must survive
        # plan() followed by run().
        engine = SimilarityEngine(iter(overlapping_multisets),
                                  cluster=test_cluster)
        with engine:
            plan = engine.plan(JoinSpec(threshold=0.8))
            result = engine.run(JoinSpec(threshold=0.8), plan=plan)
        assert plan.profile.num_multisets == len(overlapping_multisets)
        assert {p.pair for p in result} == {("a", "b"), ("d", "e")}

    def test_sequential_algorithms_are_never_planned_infeasible(
            self, small_multisets):
        # In-memory algorithms ignore the simulated cluster's scheduler
        # and budgets, so the planner must not exclude them either.
        cluster = laptop_cluster().with_scheduler_limit(0.001).with_memory(500)
        with SimilarityEngine(cluster=cluster) as engine:
            plan = engine.plan(JoinSpec(threshold=0.3, algorithm="exact"),
                               small_multisets)
            assert plan.candidates[0].feasible
            result = engine.run(JoinSpec(threshold=0.3, algorithm="exact"),
                                small_multisets, plan=plan)
        assert result.pairs

    def test_mixed_record_types_rejected_at_the_front_door(self,
                                                           test_cluster):
        from repro.core.exceptions import ReproError
        from repro.core.records import InputTuple
        from repro.core.multiset import Multiset

        mixed = [Multiset("a", {"x": 1}), InputTuple("b", "x", 1)]
        with SimilarityEngine(cluster=test_cluster) as engine:
            with pytest.raises(ReproError, match="mixed"):
                engine.run(JoinSpec(algorithm="exact"), mixed)

    def test_minhash_parameters_reach_the_baseline(self, small_multisets,
                                                   test_cluster):
        from repro.baselines.minhash import LSHParameters, MinHashLSHJoin

        parameters = LSHParameters(num_bands=16, rows_per_band=4)
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(
                JoinSpec(threshold=0.3, algorithm="minhash",
                         minhash_parameters=parameters), small_multisets)
        direct = MinHashLSHJoin("ruzicka", 0.3, parameters=parameters,
                                verify_exact=True)
        assert result.pairs == sorted(direct.run(small_multisets))

    def test_empty_corpus_still_plans(self, test_cluster):
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(JoinSpec(threshold=0.5), [])
        assert result.pairs == []
        assert result.plan is not None

    def test_run_reuses_a_supplied_plan(self, paper_engine):
        multisets = uniform_corpus()
        spec = JoinSpec(threshold=0.5)
        plan = paper_engine.plan(spec, multisets)
        result = paper_engine.run(spec, multisets, plan=plan)
        assert result.plan is plan
        assert result.algorithm == plan.algorithm

    def test_run_rejects_a_plan_for_a_different_spec(self, paper_engine):
        multisets = uniform_corpus()
        plan = paper_engine.plan(JoinSpec(threshold=0.5), multisets)
        with pytest.raises(JobConfigurationError, match="different JoinSpec"):
            paper_engine.run(JoinSpec(threshold=0.6), multisets, plan=plan)

    def test_engine_forwards_enforce_budgets_to_the_planner(self):
        # With budgets off at the session level, the planner must not
        # exclude lookup for its table size either (the runner would not).
        multisets = skewed_corpus()
        cluster = paper_scale_cluster(500).with_memory(4_000)
        engine = SimilarityEngine(cluster=cluster,
                                  cost_parameters=paper_scale_cost_parameters(),
                                  enforce_budgets=False)
        plan = engine.plan(JoinSpec(threshold=0.5, sharding_threshold=64),
                           multisets)
        assert plan.candidate_for("lookup").feasible


class TestJoinResult:
    @pytest.fixture(scope="class")
    def distributed_result(self):
        with SimilarityEngine(cluster=laptop_cluster(6)) as engine:
            return engine.run(JoinSpec(threshold=0.25,
                                       algorithm="online_aggregation"),
                              make_random_multisets(25, alphabet_size=40,
                                                    max_elements=15, seed=5))

    def test_iteration_and_len(self, distributed_result):
        assert list(distributed_result) == distributed_result.pairs
        assert len(distributed_result) == len(distributed_result.pairs)

    def test_uniform_statistics_surface(self, distributed_result):
        assert distributed_result.simulated_seconds > 0
        assert distributed_result.joining_seconds > 0
        assert distributed_result.similarity_seconds > 0
        assert distributed_result.counters()["similarity2/pairs_evaluated"] > 0
        assert distributed_result.stats_for(
            "online_aggregation").simulated_seconds > 0
        assert distributed_result.job_names()[0] == "online_aggregation"

    def test_sequential_results_share_the_surface(self, overlapping_multisets,
                                                  test_cluster):
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(JoinSpec(threshold=0.8, algorithm="exact"),
                                overlapping_multisets)
        assert result.simulated_seconds == 0.0
        assert result.counters() == {}
        assert result.joining_seconds is None
        assert {p.pair for p in result} == {("a", "b"), ("d", "e")}

    def test_vcl_result_has_no_phase_split(self, overlapping_multisets,
                                           test_cluster):
        with SimilarityEngine(cluster=test_cluster) as engine:
            result = engine.run(JoinSpec(threshold=0.8, algorithm="vcl"),
                                overlapping_multisets)
        assert result.joining_seconds is None
        assert result.simulated_seconds > 0

    def test_to_jsonl(self, distributed_result, tmp_path):
        path = tmp_path / "pairs.jsonl"
        written = distributed_result.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert written == len(distributed_result.pairs) == len(lines)
        first = json.loads(lines[0])
        assert set(first) == {"first", "second", "similarity"}

    def test_to_jsonl_accepts_a_handle(self, distributed_result):
        buffer = io.StringIO()
        distributed_result.to_jsonl(buffer)
        assert buffer.getvalue().count("\n") == len(distributed_result.pairs)

    def test_to_index_builds_a_queryable_index(self, distributed_result):
        index = distributed_result.to_index()
        assert isinstance(index, SimilarityIndex)
        assert len(index) == len(distributed_result.multisets)
        member = distributed_result.multisets[0]
        matches = index.query(QueryRequest.threshold(member, 0.25)).matches
        partners = {m.multiset_id for m in matches} - {member.id}
        expected = {pair.second for pair in distributed_result.pairs
                    if pair.first == member.id}
        expected |= {pair.first for pair in distributed_result.pairs
                     if pair.second == member.id}
        assert partners == expected

    def test_to_service_warms_caches_from_the_join(self, distributed_result):
        service = distributed_result.to_service(num_shards=2)
        member_id = distributed_result.pairs[0].first
        matches = service.neighbours(member_id, 0.25)
        assert service.stats()["cache/hits"] > 0
        partner_ids = {m.multiset_id for m in matches}
        assert distributed_result.pairs[0].second in partner_ids

    def test_explain_without_a_plan_summarises(self, distributed_result):
        assert "explicit" in distributed_result.explain()

    def test_minhash_results_cannot_warm_serving_caches(
            self, small_multisets, test_cluster):
        # Banding can miss true pairs, so warmed answers could disagree
        # with live queries — the bootstrap must refuse, like it does for
        # stop-word joins.
        from repro.core.exceptions import ServingError

        with SimilarityEngine(cluster=test_cluster) as engine:
            approximate = engine.run(
                JoinSpec(threshold=0.3, algorithm="minhash"),
                small_multisets)
        with pytest.raises(ServingError, match="minhash"):
            approximate.to_service(num_shards=2)


class TestRunAlgorithmOnEngine:
    def test_auto_is_accepted_and_reports_the_resolved_algorithm(
            self, small_multisets, test_cluster):
        outcome = run_algorithm("auto", small_multisets, threshold=0.4,
                                cluster=test_cluster)
        assert outcome.finished
        assert outcome.algorithm in PLANNABLE_ALGORITHMS

    def test_sequential_algorithms_are_accepted(self, small_multisets):
        outcome = run_algorithm("exact", small_multisets, threshold=0.4)
        assert outcome.finished
        assert outcome.simulated_seconds == 0.0

    def test_unknown_algorithm_rejected(self, small_multisets):
        with pytest.raises(ValueError, match="magic"):
            run_algorithm("magic", small_multisets)


@pytest.mark.filterwarnings("default::DeprecationWarning")
class TestDeprecatedShims:
    """The dedicated shim tests: the only place the legacy calls remain."""

    def test_vsmart_join_warns_and_matches_the_driver(self,
                                                      overlapping_multisets):
        cluster = laptop_cluster()
        with pytest.warns(DeprecationWarning, match="vsmart_join"):
            pairs = vsmart_join(overlapping_multisets, threshold=0.8,
                                cluster=cluster)
        direct = VSmartJoin(VSmartJoinConfig(threshold=0.8),
                            cluster=cluster).run(overlapping_multisets)
        assert pairs == direct.pairs

    def test_vcl_join_warns_and_matches_the_driver(self,
                                                   overlapping_multisets):
        cluster = laptop_cluster()
        with pytest.warns(DeprecationWarning, match="vcl_join"):
            pairs = vcl_join(overlapping_multisets, threshold=0.8,
                             cluster=cluster)
        direct = VCLJoin(VCLConfig(threshold=0.8),
                         cluster=cluster).run(overlapping_multisets)
        assert pairs == direct.pairs

    def test_vcl_join_keeps_the_historical_positional_order(
            self, overlapping_multisets):
        # Pre-1.3 callers pass (multisets, measure, threshold, cluster,
        # backend) positionally; the new cost_parameters/enforce_budgets
        # parameters are keyword-only so that contract survives.
        with pytest.warns(DeprecationWarning):
            pairs = vcl_join(overlapping_multisets, "ruzicka", 0.8,
                             laptop_cluster(), "serial")
        assert {p.pair for p in pairs} == {("a", "b"), ("d", "e")}

    def test_vcl_join_forwards_config_overrides(self, small_multisets):
        with pytest.warns(DeprecationWarning):
            hash_order = vcl_join(small_multisets, threshold=0.3,
                                  element_order="hash", intern=False)
        direct = VCLJoin(VCLConfig(threshold=0.3, element_order="hash",
                                   intern=False),
                         cluster=laptop_cluster()).run(small_multisets)
        assert hash_order == direct.pairs

    def test_vcl_join_forwards_enforce_budgets(self, small_multisets):
        tiny = laptop_cluster().with_memory(500)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(MemoryBudgetExceeded):
                vcl_join(small_multisets, threshold=0.5, cluster=tiny)
        with pytest.warns(DeprecationWarning):
            relaxed = vcl_join(small_multisets, threshold=0.5, cluster=tiny,
                               enforce_budgets=False)
        with pytest.warns(DeprecationWarning):
            reference = vcl_join(small_multisets, threshold=0.5,
                                 cluster=laptop_cluster())
        assert {p.pair for p in relaxed} == {p.pair for p in reference}

    def test_vcl_join_forwards_cost_parameters(self, overlapping_multisets):
        # A slow calibration against a tight scheduler limit only times out
        # if the parameters actually reach the driver — the historical
        # vcl_join dropped them silently.
        slow = CostParameters(job_overhead_seconds=1_000.0)
        limited = laptop_cluster().with_scheduler_limit(100.0)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(JobTimeoutError):
                vcl_join(overlapping_multisets, threshold=0.8,
                         cluster=limited, cost_parameters=slow)

    def test_one_call_join_replaces_the_shims(self, overlapping_multisets):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = join(overlapping_multisets, threshold=0.8,
                          algorithm="online_aggregation",
                          cluster=laptop_cluster())
        assert {p.pair for p in result} == {("a", "b"), ("d", "e")}


class TestJoinResultLazyConsumption:
    """PR-4 gap: the JSONL export must round-trip the exact pair records,
    and the statistics surface must survive partial lazy iteration."""

    @pytest.fixture(scope="class")
    def result(self):
        with SimilarityEngine(cluster=laptop_cluster(4)) as engine:
            return engine.run(
                JoinSpec(threshold=0.2, algorithm="sharding"),
                make_random_multisets(25, alphabet_size=40, max_elements=15,
                                      seed=5))

    def test_to_jsonl_round_trips_every_pair(self, result):
        from repro.core.records import SimilarPair

        buffer = io.StringIO()
        written = result.to_jsonl(buffer)
        decoded = [json.loads(line)
                   for line in buffer.getvalue().splitlines()]
        assert written == len(decoded) == len(result.pairs) > 0
        rebuilt = [SimilarPair(record["first"], record["second"],
                               record["similarity"]) for record in decoded]
        assert rebuilt == result.pairs

    def test_from_jsonl_round_trips_to_jsonl(self, result, tmp_path):
        path = tmp_path / "pairs.jsonl"
        result.to_jsonl(str(path))
        # Blank and trailing lines must be tolerated, per the file format.
        path.write_text(path.read_text() + "\n\n   \n")
        back = JoinResult.from_jsonl(str(path))
        assert back.pairs == result.pairs
        assert back.algorithm == "import"
        assert back.multisets == []
        # A handle works too, and an explicit spec is carried through.
        buffer = io.StringIO()
        result.to_jsonl(buffer)
        buffer.seek(0)
        respecced = JoinResult.from_jsonl(buffer, spec=result.spec,
                                          algorithm="replay")
        assert respecced.pairs == result.pairs
        assert respecced.spec == result.spec
        assert respecced.algorithm == "replay"

    def test_from_jsonl_rejects_non_pair_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"first": "a"}\n')
        with pytest.raises(DatasetError, match="line 1"):
            JoinResult.from_jsonl(str(path))

    def test_non_json_identifiers_export_via_repr(self, overlapping_multisets):
        from repro.core.multiset import Multiset

        corpus = [Multiset(("ip", index), multiset.counts())
                  for index, multiset in enumerate(overlapping_multisets[:2])]
        with SimilarityEngine(cluster=laptop_cluster(2)) as engine:
            tupled = engine.run(JoinSpec(threshold=0.8, algorithm="exact"),
                                corpus)
        buffer = io.StringIO()
        tupled.to_jsonl(buffer)
        record = json.loads(buffer.getvalue().splitlines()[0])
        assert record["first"] == repr(("ip", 0))

    def test_counters_and_stats_survive_partial_iteration(self, result):
        iterator = iter(result)
        consumed = [next(iterator) for _ in range(3)]
        counters = result.counters()
        assert counters["similarity2/pairs_evaluated"] > 0
        first_job = result.job_names()[0]
        assert result.stats_for(first_job).simulated_seconds > 0
        # The partially consumed iterator resumes where it stopped, and the
        # statistics reads did not perturb it (or the pair list).
        assert consumed + list(iterator) == result.pairs
        assert result.counters() == counters
        assert len(result) == len(result.pairs)

    def test_partial_iteration_does_not_perturb_jsonl(self, result):
        iterator = iter(result)
        next(iterator)
        buffer = io.StringIO()
        assert result.to_jsonl(buffer) == len(result.pairs)
        assert len(buffer.getvalue().splitlines()) == len(result.pairs)


class TestApproximateTier:
    def test_recall_validation(self):
        with pytest.raises(JobConfigurationError, match="recall"):
            JoinSpec(recall=0.0)
        with pytest.raises(JobConfigurationError, match="recall"):
            JoinSpec(recall=1.5)
        assert JoinSpec(recall=1.0).allows_inexact is False
        assert JoinSpec(recall=0.9).allows_inexact is True
        assert JoinSpec().allows_inexact is False

    def test_recall_derives_minhash_banding(self):
        derived = JoinSpec(algorithm="minhash", threshold=0.5,
                           recall=0.95).resolved_minhash_parameters()
        assert derived.collision_probability(0.5) >= 0.95
        # Explicit parameters always win over the derivation.
        from repro.baselines.minhash import LSHParameters

        explicit = LSHParameters(num_bands=3, rows_per_band=2)
        spec = JoinSpec(algorithm="minhash", threshold=0.5, recall=0.95,
                        minhash_parameters=explicit)
        assert spec.resolved_minhash_parameters() == explicit

    def test_auto_without_recall_never_offers_approximate(
            self, small_multisets, test_cluster):
        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            plan = engine.plan(JoinSpec(threshold=0.5))
        offered = {candidate.algorithm for candidate in plan.candidates}
        assert offered == set(PLANNABLE_ALGORITHMS)

    def test_auto_with_recall_offers_and_prices_approximate(
            self, small_multisets, test_cluster):
        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            plan = engine.plan(JoinSpec(threshold=0.5, recall=0.9))
        offered = {candidate.algorithm for candidate in plan.candidates}
        assert {"minhash", "sampled"} <= offered
        for name in ("minhash", "sampled"):
            candidate = plan.candidate_for(name)
            assert candidate.feasible
            assert candidate.predicted_seconds >= 0.0

    def test_auto_with_recall_picks_approximate_when_cheaper(
            self, small_multisets, test_cluster):
        # Under the default calibration the in-memory approximate tier
        # beats the per-job MapReduce overhead on a 40-multiset corpus.
        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            result = engine.run(JoinSpec(threshold=0.5, recall=0.9))
        assert result.algorithm in ("minhash", "sampled")
        assert not result.exact
        assert "recall=0.9" in result.plan.reason

    def test_minhash_unsupported_measure_not_offered(self, small_multisets,
                                                     test_cluster):
        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            plan = engine.plan(JoinSpec(measure="dice", threshold=0.5,
                                        recall=0.9))
        offered = {candidate.algorithm for candidate in plan.candidates}
        assert "minhash" not in offered and "sampled" in offered

    def test_exact_flag_across_algorithms(self, small_multisets, test_cluster):
        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            exact = engine.run(JoinSpec(threshold=0.5, algorithm="exact"))
            sampled = engine.run(JoinSpec(threshold=0.5, algorithm="sampled",
                                          recall=0.9))
            minhash = engine.run(JoinSpec(threshold=0.5, algorithm="minhash"))
            stopword = engine.run(JoinSpec(threshold=0.5, algorithm="exact",
                                           stop_word_frequency=1000))
        assert exact.exact
        assert not sampled.exact
        assert not minhash.exact
        assert not stopword.exact

    def test_sampled_pairs_subset_of_exact(self, small_multisets,
                                           test_cluster):
        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            exact = engine.run(JoinSpec(threshold=0.3, algorithm="exact"))
            sampled = engine.run(JoinSpec(threshold=0.3, algorithm="sampled",
                                          recall=0.8))
        exact_pairs = {pair.pair for pair in exact}
        assert {pair.pair for pair in sampled} <= exact_pairs

    def test_approximate_results_cannot_seed_views(self, small_multisets,
                                                   test_cluster):
        from repro.core.exceptions import StreamingError

        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            result = engine.run(JoinSpec(threshold=0.5, algorithm="sampled",
                                         recall=0.9))
            with pytest.raises(StreamingError, match="approximate"):
                result.to_view()

    def test_inexact_specs_cannot_construct_views(self, small_multisets):
        from repro.core.exceptions import StreamingError
        from repro.streaming.view import JoinView

        with pytest.raises(StreamingError):
            JoinView(JoinSpec(threshold=0.5, recall=0.9), small_multisets)

    def test_recall_round_trips_through_storage(self, small_multisets,
                                                test_cluster, storage_path):
        with SimilarityEngine(small_multisets, cluster=test_cluster) as engine:
            result = engine.run(JoinSpec(threshold=0.3, algorithm="sampled",
                                         recall=0.9))
        result.to_sqlite(storage_path)
        loaded = JoinResult.from_sqlite(storage_path)
        assert loaded.spec.recall == 0.9
        assert loaded.algorithm == "sampled"
        assert not loaded.exact
        assert list(loaded) == list(result)


class TestDuplicateIdBoundary:
    def test_duplicate_ids_rejected_for_every_algorithm(self, test_cluster):
        duplicated = [Multiset("m", {"x": 1, "y": 2}),
                      Multiset("m", {"x": 1}),
                      Multiset("other", {"y": 1})]
        for algorithm in ("exact", "minhash", "online_aggregation", "auto"):
            with pytest.raises(DatasetError, match="duplicate multiset id"):
                join(duplicated, algorithm=algorithm, cluster=test_cluster)

    def test_duplicate_ids_rejected_at_plan_time(self, test_cluster):
        duplicated = [Multiset("m", {"x": 1}), Multiset("m", {"y": 1})]
        with SimilarityEngine(duplicated, cluster=test_cluster) as engine:
            with pytest.raises(DatasetError, match="duplicate multiset id"):
                engine.plan(JoinSpec(threshold=0.5))

    def test_unique_ids_still_pass(self, small_multisets, test_cluster):
        result = join(small_multisets, algorithm="exact", threshold=0.5,
                      cluster=test_cluster)
        assert result.exact
