"""Tests for the community-discovery post-processing utilities."""

from __future__ import annotations

import pytest

from repro.communities.clustering import (
    UnionFind,
    clusters_from_pairs,
    connected_components,
    dense_clusters,
)
from repro.communities.graph import SimilarityGraph
from repro.communities.proxies import (
    evaluate_proxy_discovery,
    filter_small_multisets,
    ground_truth_pairs,
)
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair


class TestUnionFind:
    def test_basic_union(self):
        union_find = UnionFind()
        union_find.union("a", "b")
        union_find.union("c", "d")
        assert union_find.connected("a", "b")
        assert not union_find.connected("a", "c")
        union_find.union("b", "c")
        assert union_find.connected("a", "d")

    def test_groups_sorted_by_size(self):
        union_find = UnionFind()
        union_find.union("a", "b")
        union_find.union("b", "c")
        union_find.union("x", "y")
        union_find.add("solo")
        groups = union_find.groups()
        assert groups[0] == {"a", "b", "c"}
        assert {"solo"} in groups


class TestSimilarityGraph:
    def make_graph(self):
        return SimilarityGraph.from_pairs([
            SimilarPair("a", "b", 0.9),
            SimilarPair("b", "c", 0.8),
            SimilarPair("x", "y", 0.7),
        ])

    def test_nodes_edges(self):
        graph = self.make_graph()
        assert graph.num_nodes == 5
        assert graph.num_edges == 3
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")
        assert not graph.has_edge("a", "x")
        assert graph.edge_weight("b", "c") == 0.8
        assert graph.edge_weight("a", "x") == 0.0
        assert graph.degree("b") == 2
        assert graph.neighbours("b") == {"a", "c"}

    def test_self_loops_ignored(self):
        graph = SimilarityGraph()
        graph.add_edge("a", "a", 1.0)
        assert graph.num_edges == 0

    def test_edges_iteration(self):
        graph = self.make_graph()
        assert len(list(graph.edges())) == 3


class TestClustering:
    def test_connected_components(self):
        graph = SimilarityGraph.from_pairs([
            SimilarPair("a", "b", 1.0), SimilarPair("b", "c", 1.0),
            SimilarPair("x", "y", 1.0),
        ])
        components = connected_components(graph)
        assert {"a", "b", "c"} in components
        assert {"x", "y"} in components

    def test_clusters_from_pairs_minimum_size(self):
        pairs = [SimilarPair("a", "b", 1.0)]
        assert clusters_from_pairs(pairs, minimum_size=2) == [{"a", "b"}]
        assert clusters_from_pairs(pairs, minimum_size=3) == []

    def test_dense_clusters_prune_weak_members(self):
        # A triangle a-b-c plus a weakly attached node d (one edge only).
        pairs = [SimilarPair("a", "b", 1.0), SimilarPair("b", "c", 1.0),
                 SimilarPair("a", "c", 1.0), SimilarPair("c", "d", 1.0)]
        graph = SimilarityGraph.from_pairs(pairs)
        dense = dense_clusters(graph, minimum_degree_fraction=0.7)
        assert {"a", "b", "c"} in dense
        assert all("d" not in cluster for cluster in dense)

    def test_dense_clusters_validation(self):
        with pytest.raises(ValueError):
            dense_clusters(SimilarityGraph(), minimum_degree_fraction=0.0)


class TestProxyEvaluation:
    def test_ground_truth_pairs(self):
        truth = ground_truth_pairs([{"a", "b", "c"}, {"x", "y"}])
        assert ("a", "b") in truth
        assert ("x", "y") in truth
        assert len(truth) == 4

    def test_evaluation_metrics(self):
        groups = [{"a", "b", "c"}]
        discovered = [SimilarPair("a", "b", 0.9),   # true positive
                      SimilarPair("a", "z", 0.8)]   # false positive
        evaluation = evaluate_proxy_discovery(discovered, groups, threshold=0.5)
        assert evaluation.discovered_pairs == 2
        assert evaluation.true_positive_pairs == 1
        assert evaluation.false_positive_pairs == 1
        assert evaluation.ground_truth_pairs == 3
        assert evaluation.precision == pytest.approx(0.5)
        assert evaluation.coverage == pytest.approx(1 / 3)
        assert evaluation.false_positive_rate == pytest.approx(0.5)
        # (a, b) and (a, z) are connected through "a": one cluster of size 3.
        assert evaluation.discovered_clusters == 1
        assert evaluation.largest_cluster == 3

    def test_evaluation_with_restriction(self):
        groups = [{"a", "b", "c"}]
        discovered = [SimilarPair("a", "b", 0.9)]
        evaluation = evaluate_proxy_discovery(discovered, groups, threshold=0.5,
                                              restrict_to_ids={"a", "b"})
        assert evaluation.ground_truth_pairs == 1
        assert evaluation.coverage == pytest.approx(1.0)

    def test_empty_discovery(self):
        evaluation = evaluate_proxy_discovery([], [{"a", "b"}], threshold=0.5)
        assert evaluation.precision == 1.0
        assert evaluation.coverage == 0.0
        assert evaluation.false_positive_rate == 0.0

    def test_filter_small_multisets(self):
        multisets = [Multiset("big", {f"e{i}": 1 for i in range(60)}),
                     Multiset("small", {"e1": 100})]
        kept = filter_small_multisets(multisets, minimum_distinct_elements=50)
        assert [m.id for m in kept] == ["big"]
