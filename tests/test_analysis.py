"""Tests for the experiment harness, reporting and calibration."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import paper_scale_cluster, paper_scale_cost_parameters
from repro.analysis.experiments import (
    ALGORITHMS,
    STATUS_OK,
    STATUS_OUT_OF_MEMORY,
    STATUS_UNSUPPORTED,
    AlgorithmOutcome,
    agreement_check,
    machine_sweep,
    run_algorithm,
    sharding_parameter_sweep,
    threshold_sweep,
)
from repro.analysis.reporting import (
    format_counters,
    format_sweep_table,
    format_table,
    outcome_cell,
    relative_drop,
    speedup,
)
from repro.mapreduce.cluster import Cluster, HADOOP, laptop_cluster
from repro.similarity.exact import all_pairs_exact


class TestRunAlgorithm:
    def test_unknown_algorithm(self, small_multisets):
        with pytest.raises(ValueError):
            run_algorithm("quantum", small_multisets)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_ok_status_and_agreement(self, algorithm, small_multisets, test_cluster):
        outcome = run_algorithm(algorithm, small_multisets, threshold=0.4,
                                cluster=test_cluster, sharding_threshold=10)
        assert outcome.status == STATUS_OK
        assert outcome.finished
        assert outcome.simulated_seconds > 0
        expected = len(all_pairs_exact(small_multisets, "ruzicka", 0.4))
        assert outcome.num_pairs == expected

    def test_vsmart_outcomes_report_phase_split(self, small_multisets, test_cluster):
        outcome = run_algorithm("online_aggregation", small_multisets,
                                cluster=test_cluster)
        assert outcome.joining_seconds > 0
        assert outcome.similarity_seconds > 0

    def test_out_of_memory_status(self, small_multisets):
        tiny = Cluster(num_machines=2, memory_per_machine=1_000,
                       disk_per_machine=10 ** 9)
        outcome = run_algorithm("lookup", small_multisets, cluster=tiny)
        assert outcome.status == STATUS_OUT_OF_MEMORY
        assert not outcome.finished
        assert outcome.time_or_none() is None
        assert "memory" in outcome.detail

    def test_unsupported_status_on_hadoop(self, small_multisets, hadoop_cluster):
        outcome = run_algorithm("online_aggregation", small_multisets,
                                cluster=hadoop_cluster)
        assert outcome.status == STATUS_UNSUPPORTED

    def test_keep_pairs_flag(self, small_multisets, test_cluster):
        with_pairs = run_algorithm("vcl", small_multisets, cluster=test_cluster)
        without_pairs = run_algorithm("vcl", small_multisets, cluster=test_cluster,
                                      keep_pairs=False)
        assert with_pairs.pairs is not None
        assert without_pairs.pairs is None
        assert with_pairs.num_pairs == without_pairs.num_pairs

    def test_agreement_check(self):
        assert agreement_check([
            AlgorithmOutcome("a", STATUS_OK, num_pairs=5),
            AlgorithmOutcome("b", STATUS_OK, num_pairs=5),
            AlgorithmOutcome("c", STATUS_OUT_OF_MEMORY),
        ])
        assert not agreement_check([
            AlgorithmOutcome("a", STATUS_OK, num_pairs=5),
            AlgorithmOutcome("b", STATUS_OK, num_pairs=6),
        ])


class TestSweeps:
    def test_threshold_sweep(self, small_multisets, test_cluster):
        sweep = threshold_sweep(["online_aggregation"], small_multisets,
                                [0.3, 0.7], cluster=test_cluster)
        assert set(sweep) == {0.3, 0.7}
        assert sweep[0.3]["online_aggregation"].num_pairs >= sweep[0.7][
            "online_aggregation"].num_pairs

    def test_machine_sweep(self, small_multisets, test_cluster):
        sweep = machine_sweep(["online_aggregation"], small_multisets, [2, 8],
                              base_cluster=test_cluster)
        assert set(sweep) == {2, 8}
        assert (sweep[8]["online_aggregation"].simulated_seconds
                <= sweep[2]["online_aggregation"].simulated_seconds)

    def test_sharding_parameter_sweep(self, small_multisets, test_cluster):
        sweep = sharding_parameter_sweep(small_multisets, [4, 64], test_cluster)
        assert set(sweep) == {4, 64}
        for row in sweep.values():
            assert row["total_seconds"] > 0
            assert row["sharding1_seconds"] > 0
            assert row["sharding2_seconds"] > 0
            assert row["num_pairs"] == sweep[4]["num_pairs"]


class TestReporting:
    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22222.0]],
                            title="demo")
        assert "demo" in text
        assert "name" in text
        assert "22,222" in text

    def test_outcome_cell(self):
        ok = AlgorithmOutcome("a", STATUS_OK, simulated_seconds=12.0)
        oom = AlgorithmOutcome("a", STATUS_OUT_OF_MEMORY)
        assert outcome_cell(ok) == "12s"
        assert "out of memory" in outcome_cell(oom)

    def test_format_sweep_table(self):
        sweep = {0.5: {"vcl": AlgorithmOutcome("vcl", STATUS_OK, simulated_seconds=3.0)}}
        text = format_sweep_table(sweep, ["vcl", "missing"], "threshold")
        assert "threshold" in text
        assert "3s" in text
        assert "-" in text

    def test_speedup_and_drop(self):
        assert speedup(100.0, 10.0) == pytest.approx(10.0)
        assert speedup(None, 10.0) is None
        assert relative_drop(100.0, 60.0) == pytest.approx(0.4)
        assert relative_drop(100.0, None) is None

    def test_format_counters(self):
        text = format_counters({"a/x": 3, "b/y": 4}, prefix="a/")
        assert "a/x" in text
        assert "b/y" not in text
        assert format_counters({}, prefix="zzz") == "(no counters)"


class TestCalibration:
    def test_paper_scale_cluster(self):
        cluster = paper_scale_cluster(300)
        assert cluster.num_machines == 300
        assert cluster.memory_per_machine > 0
        assert cluster.scheduler_limit_seconds == 48 * 3600.0

    def test_paper_scale_cluster_hadoop_profile(self):
        cluster = paper_scale_cluster(100, profile=HADOOP)
        assert not cluster.profile.supports_secondary_keys

    def test_cost_parameters(self):
        params = paper_scale_cost_parameters()
        assert params.machine_throughput > 0
        assert params.job_overhead_seconds > 0

    def test_laptop_cluster_fixture_compatible(self):
        assert laptop_cluster().num_machines > 0
