"""Tests for the workload generators, statistics and loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.core.records import explode_multisets
from repro.datasets.documents import (
    DocumentCorpusConfig,
    generate_document_corpus,
    shingle_document,
)
from repro.datasets.ip_cookie import (
    IPCookieConfig,
    dataset_label,
    generate_ip_cookie_dataset,
    generate_preset,
    realistic_dataset_config,
    scaled_memory_budget,
    small_dataset_config,
)
from repro.datasets.loaders import (
    read_input_tuples,
    read_multisets,
    write_input_tuples,
    write_multisets,
    write_similar_pairs,
)
from repro.datasets.stats import (
    elements_per_multiset,
    frequency_histogram,
    log_binned_histogram,
    multisets_per_element,
    skew_ratio,
    summarise_distribution,
)
from repro.datasets.zipf import BoundedZipf, clipped_zipf_sizes
from repro.similarity.registry import get_measure


class TestZipf:
    def test_probabilities_normalised_and_decreasing(self):
        distribution = BoundedZipf(100, 1.5)
        probabilities = distribution.probabilities
        assert probabilities.sum() == pytest.approx(1.0)
        assert all(probabilities[i] >= probabilities[i + 1] for i in range(99))

    def test_samples_within_support(self):
        rng = np.random.default_rng(1)
        samples = BoundedZipf(50, 1.2).sample(rng, 500)
        assert samples.min() >= 1
        assert samples.max() <= 50

    def test_sample_zero(self):
        rng = np.random.default_rng(1)
        assert len(BoundedZipf(50, 1.2).sample(rng, 0)) == 0

    def test_validation(self):
        with pytest.raises(DatasetError):
            BoundedZipf(0, 1.0)
        with pytest.raises(DatasetError):
            BoundedZipf(10, 0.0)
        rng = np.random.default_rng(1)
        with pytest.raises(DatasetError):
            BoundedZipf(10, 1.0).sample(rng, -1)

    def test_clipped_sizes_respect_minimum(self):
        rng = np.random.default_rng(2)
        sizes = clipped_zipf_sizes(rng, 200, 50, 1.5, minimum=3)
        assert sizes.min() >= 3

    def test_mean_is_finite(self):
        assert 1.0 <= BoundedZipf(100, 2.0).mean() <= 100.0


class TestIPCookieGenerator:
    def test_deterministic_for_seed(self):
        config = IPCookieConfig(num_ips=50, num_cookies=200, num_proxy_groups=2,
                                ips_per_proxy_group=4, cookies_per_proxy_pool=10, seed=5)
        first = generate_ip_cookie_dataset(config)
        second = generate_ip_cookie_dataset(config)
        assert [m.counts() for m in first.multisets] == [m.counts() for m in second.multisets]

    def test_different_seeds_differ(self):
        base = dict(num_ips=50, num_cookies=200, num_proxy_groups=2,
                    ips_per_proxy_group=4, cookies_per_proxy_pool=10)
        first = generate_ip_cookie_dataset(IPCookieConfig(seed=1, **base))
        second = generate_ip_cookie_dataset(IPCookieConfig(seed=2, **base))
        assert [m.counts() for m in first.multisets] != [m.counts() for m in second.multisets]

    def test_shapes_and_ground_truth(self):
        config = IPCookieConfig(num_ips=60, num_cookies=300, num_proxy_groups=3,
                                ips_per_proxy_group=5, cookies_per_proxy_pool=20, seed=9)
        dataset = generate_ip_cookie_dataset(config)
        assert len(dataset.multisets) == 60
        assert len(dataset.proxy_groups) == 3
        assert all(len(group) == 5 for group in dataset.proxy_groups)
        assert len(dataset.proxy_ips) == 15
        assert set(dataset.multisets_by_id()) == {m.id for m in dataset.multisets}

    def test_proxy_groups_are_actually_similar(self):
        config = IPCookieConfig(num_ips=60, num_cookies=300, num_proxy_groups=2,
                                ips_per_proxy_group=4, cookies_per_proxy_pool=30,
                                proxy_cookie_affinity=0.95, seed=11)
        dataset = generate_ip_cookie_dataset(config)
        by_id = dataset.multisets_by_id()
        measure = get_measure("ruzicka")
        group = sorted(dataset.proxy_groups[0])
        in_group = measure.similarity(by_id[group[0]], by_id[group[1]])
        outsider = dataset.multisets[-1]
        out_group = measure.similarity(by_id[group[0]], outsider)
        assert in_group > 0.3
        assert in_group > out_group

    def test_distributions_are_skewed(self):
        dataset = generate_preset("small")
        assert skew_ratio(elements_per_multiset(dataset.multisets)) > 3
        assert skew_ratio(multisets_per_element(dataset.multisets)) > 3

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            IPCookieConfig(num_ips=0)
        with pytest.raises(DatasetError):
            IPCookieConfig(num_ips=5, num_proxy_groups=2, ips_per_proxy_group=5)
        with pytest.raises(DatasetError):
            IPCookieConfig(proxy_cookie_affinity=1.5)
        with pytest.raises(DatasetError):
            IPCookieConfig(max_cookies_per_ip=2, min_cookies_per_ip=5)
        with pytest.raises(DatasetError):
            IPCookieConfig(mean_multiplicity=0.5)

    def test_presets(self):
        small = small_dataset_config()
        realistic = realistic_dataset_config()
        assert realistic.num_ips > small.num_ips
        assert realistic.num_cookies > small.num_cookies
        assert dataset_label(small).startswith("400ips")
        assert scaled_memory_budget(small) == scaled_memory_budget(realistic)
        with pytest.raises(DatasetError):
            generate_preset("gigantic")


class TestDocumentCorpus:
    def test_shingling(self):
        multiset = shingle_document("doc", ["a", "b", "c", "b", "c"], 2)
        assert multiset.multiplicity("b c") == 2
        assert multiset.multiplicity("a b") == 1

    def test_shingle_shorter_than_document(self):
        multiset = shingle_document("doc", ["a"], 3)
        assert multiset.cardinality == 1

    def test_corpus_ground_truth(self):
        config = DocumentCorpusConfig(num_base_documents=5, words_per_document=60,
                                      duplicates_per_document=2, seed=3)
        corpus = generate_document_corpus(config)
        assert len(corpus.documents) == 15
        assert len(corpus.duplicate_clusters) == 5
        assert len(corpus.multisets) == 15

    def test_duplicates_are_similar(self):
        config = DocumentCorpusConfig(num_base_documents=4, words_per_document=80,
                                      duplicates_per_document=1, mutation_rate=0.05, seed=4)
        corpus = generate_document_corpus(config)
        by_id = {m.id: m for m in corpus.multisets}
        measure = get_measure("jaccard")
        for cluster in corpus.duplicate_clusters:
            members = sorted(cluster)
            assert measure.similarity(by_id[members[0]], by_id[members[1]]) > 0.5

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            DocumentCorpusConfig(num_base_documents=0)
        with pytest.raises(DatasetError):
            DocumentCorpusConfig(words_per_document=2, shingle_length=5)
        with pytest.raises(DatasetError):
            DocumentCorpusConfig(mutation_rate=2.0)


class TestStats:
    def test_elements_per_multiset(self, overlapping_multisets):
        values = elements_per_multiset(overlapping_multisets)
        assert sorted(values) == [2, 2, 3, 3, 3]

    def test_multisets_per_element(self, overlapping_multisets):
        values = multisets_per_element(overlapping_multisets)
        assert max(values) == 4  # element "x" appears in a, b, c, e

    def test_frequency_histogram(self):
        assert frequency_histogram([1, 1, 2]) == {1: 2, 2: 1}

    def test_log_binned_histogram(self):
        histogram = log_binned_histogram([1, 1, 2, 3, 4, 8, 9], base=2.0)
        assert histogram[0] == (1, 2, 2)
        assert sum(count for _, _, count in histogram) == 7
        with pytest.raises(ValueError):
            log_binned_histogram([1], base=1.0)

    def test_summary(self):
        summary = summarise_distribution([1, 2, 3, 4, 100])
        assert summary.count == 5
        assert summary.maximum == 100
        assert summary.minimum == 1
        assert summary.median == 3
        assert 0 < summary.top_1_percent_share <= 1

    def test_summary_empty(self):
        summary = summarise_distribution([])
        assert summary.count == 0
        assert skew_ratio([]) == 0.0


class TestLoaders:
    def test_input_tuple_roundtrip(self, tmp_path, overlapping_multisets):
        path = tmp_path / "tuples.tsv"
        records = explode_multisets(overlapping_multisets)
        written = write_input_tuples(path, records)
        assert written == len(records)
        loaded = read_input_tuples(path)
        assert {(r.multiset_id, r.element, r.multiplicity) for r in loaded} == {
            (r.multiset_id, str(r.element), int(r.multiplicity)) for r in records}

    def test_multiset_roundtrip(self, tmp_path, overlapping_multisets):
        path = tmp_path / "multisets.tsv"
        write_multisets(path, overlapping_multisets)
        loaded = read_multisets(path)
        assert {m.id for m in loaded} == {m.id for m in overlapping_multisets}
        by_id = {m.id: m for m in loaded}
        for original in overlapping_multisets:
            assert by_id[original.id].counts() == original.counts()

    def test_malformed_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only-two\tcolumns\n")
        with pytest.raises(DatasetError):
            read_input_tuples(path)
        path.write_text("a\tb\tnot-a-number\n")
        with pytest.raises(DatasetError):
            read_input_tuples(path)

    def test_write_similar_pairs(self, tmp_path):
        from repro.core.records import SimilarPair

        path = tmp_path / "pairs.tsv"
        rows = write_similar_pairs(path, [SimilarPair("a", "b", 0.5)])
        assert rows == 1
        assert "0.500000" in path.read_text()
