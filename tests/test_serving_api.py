"""Tests for the unified query/response API (repro.serving.api).

Covers the dataclass family's validation and JSON codec, parity between
the deprecated keyword forms and the unified entry points across all three
serving layers, the fleet snapshot document, and the sharded service's
persist/recover round trip.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.core.exceptions import ServingError
from repro.core.multiset import Multiset
from repro.serving.api import (
    QueryMatch,
    QueryOptions,
    QueryRequest,
    QueryResponse,
    finalize_matches,
    multiset_from_wire,
    multiset_to_wire,
    requests_from_batch_payload,
)
from repro.serving.index import SimilarityIndex
from repro.serving.node import ServingNode
from repro.serving.service import ShardedSimilarityService
from tests.conftest import make_random_multisets


def corpus(count=12, seed=3):
    return make_random_multisets(count=count, alphabet_size=14,
                                 max_elements=8, seed=seed)


@pytest.fixture()
def service(request):
    fleet = ShardedSimilarityService("ruzicka", num_shards=3)
    fleet.bulk_load(corpus())
    return fleet


# ---------------------------------------------------------------------------
# QueryOptions / QueryRequest / QueryResponse validation
# ---------------------------------------------------------------------------

class TestQueryOptions:
    def test_threshold_options(self):
        options = QueryOptions.for_threshold(0.4)
        assert options.kind == "threshold"
        assert options.threshold == pytest.approx(0.4)
        assert options.k is None

    def test_topk_options(self):
        options = QueryOptions.for_topk(5)
        assert options.kind == "topk"
        assert options.k == 5
        assert options.threshold is None

    def test_threshold_is_coerced_to_float(self):
        assert isinstance(QueryOptions.for_threshold(1).threshold, float)

    def test_options_are_hashable_cache_keys(self):
        assert hash(QueryOptions.for_topk(3)) == hash(QueryOptions.for_topk(3))
        assert QueryOptions.for_threshold(0.5) != QueryOptions.for_topk(5)

    @pytest.mark.parametrize("bad", [
        dict(kind="threshold"),                      # missing threshold
        dict(kind="threshold", threshold=0.5, k=3),  # both fields
        dict(kind="threshold", threshold=0.0),       # out of (0, 1]
        dict(kind="threshold", threshold=1.5),
        dict(kind="topk"),                           # missing k
        dict(kind="topk", k=3, threshold=0.5),       # both fields
        dict(kind="topk", k=0),
        dict(kind="topk", k=True),                   # bools are not counts
        dict(kind="topk", k=2.0),
        dict(kind="nearest", k=3),                   # unknown kind
    ])
    def test_invalid_options_rejected(self, bad):
        with pytest.raises(ServingError):
            QueryOptions(**bad)

    def test_json_round_trip(self):
        for options in (QueryOptions.for_threshold(0.37),
                        QueryOptions.for_topk(9)):
            assert QueryOptions.from_json_dict(options.to_json_dict()) \
                == options

    def test_unknown_wire_fields_rejected(self):
        with pytest.raises(ServingError, match="unknown query-option"):
            QueryOptions.from_json_dict({"kind": "topk", "k": 3, "mode": "x"})


class TestQueryRequest:
    def test_constructors(self):
        query = Multiset("q", {"x": 2})
        assert QueryRequest.threshold(query, 0.5).options \
            == QueryOptions.for_threshold(0.5)
        assert QueryRequest.topk(query, 4).options == QueryOptions.for_topk(4)

    def test_type_validation(self):
        with pytest.raises(ServingError, match="must be a Multiset"):
            QueryRequest({"x": 1}, QueryOptions.for_topk(1))
        with pytest.raises(ServingError, match="must be QueryOptions"):
            QueryRequest(Multiset("q", {"x": 1}), "topk")

    def test_json_round_trip(self):
        request = QueryRequest.threshold(Multiset("q", {"x": 2, "y": 1}), 0.6)
        parsed = QueryRequest.from_json_dict(request.to_json_dict())
        assert parsed == request

    def test_missing_wire_fields_rejected(self):
        with pytest.raises(ServingError, match="missing the 'options'"):
            QueryRequest.from_json_dict(
                {"query": multiset_to_wire(Multiset("q", {"x": 1}))})
        with pytest.raises(ServingError, match="missing the 'query'"):
            QueryRequest.from_json_dict({"options": {"kind": "topk", "k": 1}})


class TestQueryResponse:
    def test_sequence_protocol(self):
        matches = (QueryMatch("a", 0.9), QueryMatch("b", 0.5))
        response = QueryResponse(matches, QueryOptions.for_threshold(0.4))
        assert len(response) == 2
        assert list(response) == list(matches)
        assert response[0] == matches[0]
        assert response.ids() == ["a", "b"]

    def test_matches_normalised_to_tuple(self):
        response = QueryResponse([QueryMatch("a", 1.0)],
                                 QueryOptions.for_topk(1))
        assert isinstance(response.matches, tuple)

    def test_json_round_trip(self):
        response = QueryResponse((QueryMatch("a", 0.75), QueryMatch(3, 0.5)),
                                 QueryOptions.for_topk(2))
        assert QueryResponse.from_json_dict(response.to_json_dict()) \
            == response

    def test_malformed_wire_matches_rejected(self):
        with pytest.raises(ServingError, match="malformed match"):
            QueryResponse.from_json_dict(
                {"matches": [{"id": "a"}],
                 "options": {"kind": "topk", "k": 1}})


class TestWireCodec:
    def test_multiset_round_trip_preserves_order(self):
        multiset = Multiset("m", [("b", 2), ("a", 1), ("c", 7)])
        again = multiset_from_wire(multiset_to_wire(multiset))
        assert again == multiset
        assert list(again.items()) == list(multiset.items())

    def test_non_scalar_identifiers_cannot_travel(self):
        with pytest.raises(ServingError, match="not JSON-representable"):
            multiset_to_wire(Multiset(("tuple", "id"), {"x": 1}))
        with pytest.raises(ServingError, match="not JSON-representable"):
            multiset_to_wire(Multiset("m", {("e", 1): 2}))

    def test_malformed_wire_multisets_rejected(self):
        with pytest.raises(ServingError):
            multiset_from_wire({"id": "m"})
        with pytest.raises(ServingError):
            multiset_from_wire({"id": "m", "elements": [["x", 1, 9]]})

    def test_batch_payload_parses_each_request(self):
        requests = [QueryRequest.topk(Multiset("q1", {"x": 1}), 2),
                    QueryRequest.threshold(Multiset("q2", {"y": 3}), 0.3)]
        payload = {"requests": [request.to_json_dict()
                                for request in requests]}
        assert requests_from_batch_payload(payload) == requests

    def test_batch_payload_needs_requests_array(self):
        with pytest.raises(ServingError, match="'requests'"):
            requests_from_batch_payload({"queries": []})


class TestFinalizeMatches:
    def test_threshold_sorts_everything(self):
        merged = [QueryMatch("b", 0.5), QueryMatch("a", 0.9),
                  QueryMatch("c", 0.5)]
        ordered = finalize_matches(merged, QueryOptions.for_threshold(0.4))
        assert [match.multiset_id for match in ordered] == ["a", "b", "c"]

    def test_topk_truncates_after_sorting(self):
        merged = [QueryMatch(f"m{i}", i / 10) for i in range(8)]
        ordered = finalize_matches(merged, QueryOptions.for_topk(3))
        assert [match.multiset_id for match in ordered] == ["m7", "m6", "m5"]


# ---------------------------------------------------------------------------
# Old keyword forms == new unified forms, on every layer
# ---------------------------------------------------------------------------

@pytest.mark.filterwarnings("default::DeprecationWarning")
class TestDeprecatedFormsParity:
    """The PR-4 policy: aliases warn, and answer identically to the new API.

    The ``filterwarnings`` mark opts back into plain warnings under the CI
    matrix leg that escalates DeprecationWarning to an error.
    """

    def layers(self):
        members = corpus()
        index = SimilarityIndex("ruzicka")
        index.bulk_load(members)
        node = ServingNode("ruzicka")
        node.bulk_load(members)
        fleet = ShardedSimilarityService("ruzicka", num_shards=3)
        fleet.bulk_load(members)
        return members, (index, node, fleet)

    def test_query_threshold_alias(self):
        members, targets = self.layers()
        query = members[0].with_id("probe")
        for target in targets:
            with pytest.warns(DeprecationWarning, match="query_threshold"):
                old = target.query_threshold(query, 0.4)
            new = target.query(QueryRequest.threshold(query, 0.4))
            assert old == list(new.matches)

    def test_query_topk_alias(self):
        members, targets = self.layers()
        query = members[1].with_id("probe")
        for target in targets:
            with pytest.warns(DeprecationWarning, match="query_topk"):
                old = target.query_topk(query, 4)
            assert old == list(target.query(QueryRequest.topk(query, 4)).matches)

    def test_batch_aliases(self):
        members, (index, node, fleet) = self.layers()
        queries = [member.with_id(f"p{i}")
                   for i, member in enumerate(members[:4])]
        for target in (node, fleet):
            with pytest.warns(DeprecationWarning, match="batch_threshold"):
                old = target.batch_threshold(queries, 0.4)
            new = target.batch(
                [QueryRequest.threshold(query, 0.4) for query in queries])
            assert old == [list(response.matches) for response in new]
            with pytest.warns(DeprecationWarning, match="batch_topk"):
                old = target.batch_topk(queries, 3)
            new = target.batch(
                [QueryRequest.topk(query, 3) for query in queries])
            assert old == [list(response.matches) for response in new]

    def test_warm_threshold_alias(self):
        members, _ = self.layers()
        node = ServingNode("ruzicka")
        node.bulk_load(members)
        member = members[0]
        matches = node.query(QueryRequest.threshold(member, 0.4)).matches
        with pytest.warns(DeprecationWarning, match="warm_threshold"):
            node.warm_threshold(member, 0.4, list(matches))


# ---------------------------------------------------------------------------
# Snapshot + persist/recover of the sharded fleet
# ---------------------------------------------------------------------------

class TestServiceSnapshot:
    def test_snapshot_aggregates_the_fleet(self, service):
        member = corpus()[0]
        service.query(QueryRequest.threshold(member.with_id("q"), 0.4))
        snapshot = service.snapshot()
        assert snapshot["measure"] == "ruzicka"
        assert snapshot["num_shards"] == 3
        assert snapshot["indexed_multisets"] == len(service)
        assert snapshot["totals"] == service.stats()
        assert set(snapshot["per_node"]) == {"node0", "node1", "node2"}
        # Cache counters surface through the totals.
        assert "cache/hits" in snapshot["totals"]
        assert "cache/hit_rate" in snapshot["totals"]


class TestServicePersistRecover:
    def test_round_trip_is_bit_identical(self, service):
        with tempfile.TemporaryDirectory() as directory:
            paths = service.persist(directory)
            assert [os.path.basename(path) for path in paths] \
                == ["shard0000.sqlite", "shard0001.sqlite",
                    "shard0002.sqlite"]
            recovered = ShardedSimilarityService.recover(directory)
        assert recovered.num_shards == service.num_shards
        assert len(recovered) == len(service)
        for member in corpus():
            request = QueryRequest.threshold(member.with_id("q"), 0.3)
            assert recovered.query(request) == service.query(request)
            ranking = QueryRequest.topk(member.with_id("q"), 5)
            assert recovered.query(ranking) == service.query(ranking)

    def test_recover_rejects_an_empty_directory(self):
        with tempfile.TemporaryDirectory() as directory:
            with pytest.raises(ServingError, match="no shard"):
                ShardedSimilarityService.recover(directory)

    def test_recovered_fleet_keeps_accepting_writes(self, service):
        with tempfile.TemporaryDirectory() as directory:
            service.persist(directory)
            recovered = ShardedSimilarityService.recover(directory)
        newcomer = Multiset("fresh", {"e0": 2, "e1": 1})
        recovered.add(newcomer)
        service.add(newcomer)
        request = QueryRequest.topk(newcomer.with_id("q"), 3)
        assert recovered.query(request) == service.query(request)
