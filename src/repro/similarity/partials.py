"""Measure-agnostic accumulation of partial results.

Every consumer of the decomposition accumulates the unilateral partial
results ``Uni(Mi)`` the same way: apply the measure's effective-multiplicity
mapping to each element, convert it to a contribution tuple and fold the
contributions with the measure's associative merge.  These helpers express
that per-contribution form for the record-at-a-time MapReduce pipelines;
whole-entity consumers (the exact evaluators and the serving index) use the
equivalent one-pass fold
:meth:`~repro.similarity.base.NominalSimilarityMeasure.unilateral`.

(The helpers used to live in :mod:`repro.vsmart.common`, which still
re-exports them; they moved here because they depend only on the measure
API, not on the MapReduce machinery.)
"""

from __future__ import annotations

from typing import Sequence

from repro.similarity.base import NominalSimilarityMeasure, Partials


def uni_contribution(measure: NominalSimilarityMeasure,
                     multiplicity: float) -> Partials:
    """Per-element contribution of a multiplicity to ``Uni(Mi)``.

    Applies the measure's effective-multiplicity mapping first, so set
    measures contribute one per distinct element regardless of multiplicity.
    """
    return measure.uni_from_multiplicity(measure.effective_multiplicity(multiplicity))


def merge_uni(measure: NominalSimilarityMeasure,
              contributions: Sequence[Partials]) -> Partials:
    """Fold a sequence of ``Uni`` contributions with the measure's merge."""
    accumulator = measure.uni_zero()
    for contribution in contributions:
        accumulator = measure.uni_merge(accumulator, contribution)
    return accumulator


def fold_uni_multiplicities(measure: NominalSimilarityMeasure,
                            multiplicities: Sequence[float]) -> Partials:
    """Fold raw multiplicities straight into ``Uni(Mi)``.

    Semantically ``merge_uni(measure, [uni_contribution(measure, m) ...])``,
    but measures declaring a scalar unilateral kernel
    (:mod:`repro.similarity.kernels`) skip the per-element tuple churn and
    reduce in one pass; all supported measures produce identical tuples
    either way (integer-valued multiplicities sum exactly).
    """
    kind = getattr(measure, "uni_kernel", "generic")
    if kind == "sum":
        if measure.uses_underlying_set:
            return (float(sum(1 for multiplicity in multiplicities
                              if multiplicity > 0)),)
        return (float(sum(multiplicity for multiplicity in multiplicities
                          if multiplicity > 0)),)
    if kind == "sum_squares" and not measure.uses_underlying_set:
        return (float(sum(multiplicity * multiplicity
                          for multiplicity in multiplicities
                          if multiplicity > 0)),)
    accumulator = measure.uni_zero()
    for multiplicity in multiplicities:
        effective = measure.effective_multiplicity(multiplicity)
        if effective > 0:
            accumulator = measure.uni_merge(
                accumulator, measure.uni_from_multiplicity(effective))
    return accumulator
