"""The Nominal Similarity Measure (NSM) framework of the paper's Eqn. 1.

Section 3 of the paper observes that every similarity measure in common use
for sets, multisets and vectors is *nominal* — agnostic to the order of the
alphabet (the Shuffling Invariant Property) — and can therefore be written
as

    Sim(Mi, Mj) = F( agg_1(g_1(f_ik, f_jk)), ..., agg_L(g_L(f_ik, f_jk)) )

where each ``g_l`` is a per-element function of the two multiplicities and
each aggregator folds the per-element values over the alphabet.  The key
insight (section 3.2) is a classification of the ``g_l`` functions:

* **unilateral** — computable from a scan of one multiset only
  (e.g. ``|Mi|``), so they can be accumulated for all multisets in a single
  pass over the dataset;
* **conjunctive** — computable from a scan of the intersection
  ``U(Mi ∩ Mj)`` (e.g. ``|Mi ∩ Mj|``), so they can be accumulated for all
  candidate pairs from an inverted index;
* **disjunctive** — require a scan of the union ``U(Mi ∪ Mj)``
  (e.g. ``max(f_ik, f_jk)``); neither V-SMART-Join nor any published
  distributed algorithm handles these in general, and the paper rewrites
  measures (Ruzicka) to avoid them.

:class:`NominalSimilarityMeasure` captures exactly the hooks the
V-SMART-Join framework needs:

* :meth:`uni_from_multiplicity` / :meth:`uni_merge` — streaming computation
  of the unilateral partial results ``Uni(Mi)`` (associative merge so that
  MapReduce combiners can pre-aggregate);
* :meth:`conj_from_pair` / :meth:`conj_merge` — streaming computation of the
  conjunctive partial results ``Conj(Mi, Mj)`` over shared elements;
* :meth:`combine` — the ``F()`` function producing the final similarity.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Tuple

from repro.core.exceptions import MeasureNotApplicableError
from repro.core.multiset import Multiset

Partials = Tuple[float, ...]


class PartialKind(Enum):
    """Classification of a partial-result function ``g_l`` (paper §3.2)."""

    UNILATERAL = "unilateral"
    CONJUNCTIVE = "conjunctive"
    DISJUNCTIVE = "disjunctive"


@dataclass(frozen=True)
class PartialDescriptor:
    """A human-readable description of one ``g_l`` / aggregator pair.

    These descriptors document how a measure decomposes into Eqn. 1 and are
    used by tests to check that no supported measure declares a disjunctive
    partial.
    """

    name: str
    kind: PartialKind
    aggregator: str = "sum"
    description: str = ""


class NominalSimilarityMeasure(ABC):
    """Base class for all Nominal Similarity Measures.

    Concrete measures define how the unilateral and conjunctive partial
    results are accumulated per element and how ``F()`` combines them.  The
    default merge operations are element-wise sums, which matches every
    measure discussed in the paper and keeps combiner semantics trivial.
    """

    #: Unique registry name of the measure (e.g. ``"ruzicka"``).
    name: str = "abstract"

    #: Whether the measure operates on the underlying set (multiplicities
    #: collapsed to one) rather than on raw multiplicities.
    uses_underlying_set: bool = False

    #: Whether the measure fundamentally needs a disjunctive partial.  Such
    #: measures can still be evaluated exactly in memory but are rejected by
    #: the MapReduce drivers.
    requires_disjunctive: bool = False

    #: Scalar kernel the conjunctive partial reduces to, if any (see
    #: :mod:`repro.similarity.kernels`): ``"sum_min"`` for sum-of-minima
    #: intersections, ``"sum_product"`` for dot products, ``"generic"``
    #: (the safe default) for everything else.  Declaring a kind lets the
    #: array kernels and the serving index accumulate ``Conj`` as a single
    #: float instead of per-element partial tuples; the declaration must
    #: match :meth:`conj_from_pair` exactly.
    conj_kernel: str = "generic"

    #: Scalar kernel the unilateral partial reduces to, if any: ``"sum"``
    #: (of effective multiplicities), ``"sum_squares"`` or ``"generic"``.
    uni_kernel: str = "generic"

    # -- per-element hooks ---------------------------------------------------

    @abstractmethod
    def uni_from_multiplicity(self, multiplicity: float) -> Partials:
        """Per-element contribution of ``f_{i,k}`` to ``Uni(Mi)``."""

    @abstractmethod
    def conj_from_pair(self, multiplicity_i: float,
                       multiplicity_j: float) -> Partials:
        """Per-shared-element contribution of ``(f_ik, f_jk)`` to ``Conj``."""

    @abstractmethod
    def combine(self, uni_i: Partials, uni_j: Partials,
                conj: Partials) -> float:
        """The ``F()`` function of Eqn. 1: combine partials into a similarity."""

    @abstractmethod
    def partial_descriptors(self) -> list[PartialDescriptor]:
        """Describe the ``g_l`` functions this measure aggregates."""

    # -- merge operations (associative; combiner-safe) -----------------------

    def uni_zero(self) -> Partials:
        """The identity element for :meth:`uni_merge`."""
        return tuple(0.0 for _ in self.uni_from_multiplicity(1.0))

    def conj_zero(self) -> Partials:
        """The identity element for :meth:`conj_merge`."""
        return tuple(0.0 for _ in self.conj_from_pair(1.0, 1.0))

    def uni_merge(self, left: Partials, right: Partials) -> Partials:
        """Merge two partial ``Uni`` accumulations (element-wise sum)."""
        return tuple(a + b for a, b in zip(left, right, strict=True))

    def conj_merge(self, left: Partials, right: Partials) -> Partials:
        """Merge two partial ``Conj`` accumulations (element-wise sum)."""
        return tuple(a + b for a, b in zip(left, right, strict=True))

    # -- effective multiplicities ---------------------------------------------

    def effective_multiplicity(self, multiplicity: float) -> float:
        """Map a raw multiplicity to the value the measure operates on.

        Set-flavoured measures collapse every positive multiplicity to one,
        implementing the paper's note that sets are the special case of
        multisets with unit multiplicities.
        """
        if multiplicity <= 0:
            return 0.0
        return 1.0 if self.uses_underlying_set else float(multiplicity)

    # -- whole-entity convenience API ----------------------------------------

    def unilateral(self, entity: Multiset | Iterable[tuple[object, float]]) -> Partials:
        """Compute ``Uni(Mi)`` by scanning one entity.

        Accepts a :class:`Multiset` or any iterable of
        ``(element, multiplicity)`` pairs.
        """
        items = entity.items() if isinstance(entity, Multiset) else entity
        accumulator = self.uni_zero()
        for _element, multiplicity in items:
            effective = self.effective_multiplicity(multiplicity)
            if effective > 0:
                accumulator = self.uni_merge(
                    accumulator, self.uni_from_multiplicity(effective))
        return accumulator

    def conjunctive(self, entity_i: Multiset, entity_j: Multiset) -> Partials:
        """Compute ``Conj(Mi, Mj)`` by scanning the shared elements."""
        accumulator = self.conj_zero()
        for element in entity_i.common_elements(entity_j):
            effective_i = self.effective_multiplicity(entity_i.multiplicity(element))
            effective_j = self.effective_multiplicity(entity_j.multiplicity(element))
            accumulator = self.conj_merge(
                accumulator, self.conj_from_pair(effective_i, effective_j))
        return accumulator

    def similarity(self, entity_i: Multiset, entity_j: Multiset) -> float:
        """Exact similarity of two in-memory multisets (reference path)."""
        return self.combine(self.unilateral(entity_i),
                            self.unilateral(entity_j),
                            self.conjunctive(entity_i, entity_j))

    # -- upper bounds (used by the online serving index) ----------------------

    def conj_upper_bound(self, uni_i: Partials,
                         uni_j: Partials) -> Partials | None:
        """An upper bound on ``Conj(Mi, Mj)`` given the two ``Uni`` tuples.

        The serving index uses this to bound the similarity of a candidate
        pair *before* (or without) scanning their shared elements: for the
        sum-of-minima family ``|Mi ∩ Mj| <= min(|Mi|, |Mj|)``, for the dot
        product the Cauchy–Schwarz bound applies, and so on.  Measures that
        admit no bound return ``None``, which disables upper-bound pruning
        (the safe default).  Overrides must guarantee
        ``combine(uni_i, uni_j, bound) >= combine(uni_i, uni_j, conj)`` for
        every reachable ``conj``.
        """
        return None

    def similarity_upper_bound(self, uni_i: Partials, uni_j: Partials) -> float:
        """An upper bound on ``Sim(Mi, Mj)`` from the ``Uni`` tuples alone.

        Falls back to ``1.0`` (no pruning — every supported measure is
        bounded by one) when :meth:`conj_upper_bound` returns ``None``.
        """
        bound = self.conj_upper_bound(uni_i, uni_j)
        if bound is None:
            return 1.0
        return self.combine(uni_i, uni_j, bound)

    # -- prefix-filtering support (used by VCL / PPJoin baselines) -----------

    def size_lower_bound(self, size: float, threshold: float) -> float:
        """Smallest entity size that can still reach ``threshold`` with ``size``.

        This is the size-filtering bound (Arasu et al. [2]); measures that do
        not admit one return zero, disabling the filter.
        """
        return 0.0

    def minimum_overlap(self, size_i: float, size_j: float,
                        threshold: float) -> float:
        """Minimal intersection size needed for two entities to be similar.

        Used by the positional/suffix filters of the PPJoin-style baselines.
        Measures that do not admit a bound return zero.
        """
        return 0.0

    def prefix_size(self, size: int, threshold: float) -> int:
        """Prefix length for prefix filtering (Chaudhuri et al. [10]).

        The prefix of an entity, under a global element ordering, is the
        smallest leading portion such that two entities sharing *no* prefix
        element cannot reach the threshold.  The default (no bound known)
        returns the full size, which degenerates to "index everything".
        """
        return int(size)

    # -- misc -----------------------------------------------------------------

    def check_supported(self) -> None:
        """Raise if this measure cannot be handled by the MapReduce drivers."""
        if self.requires_disjunctive:
            raise MeasureNotApplicableError(
                f"measure {self.name!r} requires a disjunctive partial result "
                "and cannot be computed by the V-SMART-Join framework "
                "(paper section 3.2); use the exact in-memory evaluator instead")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def validate_threshold(threshold: float) -> float:
    """Validate a similarity threshold ``t`` and return it as a float.

    Thresholds must lie in ``(0, 1]``; the paper sweeps 0.1 – 0.9.
    """
    value = float(threshold)
    if not (0.0 < value <= 1.0) or not math.isfinite(value):
        raise ValueError(f"similarity threshold must be in (0, 1], got {threshold!r}")
    return value
