"""Registry of Nominal Similarity Measures, addressable by name.

The experiment harness and the example scripts refer to measures by short
names (``"ruzicka"``, ``"jaccard"``, ...).  The registry keeps a single
shared instance per measure since measures are stateless.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.exceptions import UnknownMeasureError
from repro.similarity.base import NominalSimilarityMeasure
from repro.similarity.kernels import CONJ_KERNELS, UNI_KERNELS
from repro.similarity.measures import (
    DirectRuzickaSimilarity,
    JaccardSimilarity,
    MultisetCosineSimilarity,
    MultisetDiceSimilarity,
    OverlapSimilarity,
    RuzickaSimilarity,
    SetCosineSimilarity,
    SetDiceSimilarity,
    SetOverlapSimilarity,
    VectorCosineSimilarity,
    WeightedJaccardSimilarity,
)

_MEASURE_CLASSES: tuple[type[NominalSimilarityMeasure], ...] = (
    RuzickaSimilarity,
    WeightedJaccardSimilarity,
    JaccardSimilarity,
    MultisetDiceSimilarity,
    SetDiceSimilarity,
    MultisetCosineSimilarity,
    SetCosineSimilarity,
    VectorCosineSimilarity,
    OverlapSimilarity,
    SetOverlapSimilarity,
    DirectRuzickaSimilarity,
)

_REGISTRY: dict[str, NominalSimilarityMeasure] = {
    cls.name: cls() for cls in _MEASURE_CLASSES
}


def get_measure(name: str | NominalSimilarityMeasure) -> NominalSimilarityMeasure:
    """Look up a measure by name; measure instances pass through unchanged.

    Lookup is case-insensitive (``"Ruzicka"`` and ``"RUZICKA"`` both resolve
    to the measure registered as ``"ruzicka"``); an exact match is preferred
    so user-registered measures with case-sensitive names keep working.
    """
    if isinstance(name, NominalSimilarityMeasure):
        return name
    measure = _REGISTRY.get(name)
    if measure is None and isinstance(name, str):
        measure = _REGISTRY.get(name.lower())
    if measure is None:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownMeasureError(
            f"unknown similarity measure {name!r}; known measures: {known}")
    return measure


def available_measures() -> list[str]:
    """Return the sorted names of all registered measures."""
    return sorted(_REGISTRY)


def list_measures(supported_only: bool = False) -> list[str]:
    """The measure names a :class:`~repro.engine.spec.JoinSpec` accepts.

    The discovery companion of
    :func:`~repro.engine.spec.available_algorithms`: with
    ``supported_only=True`` only measures the distributed MapReduce
    pipelines can compute are returned (measures requiring disjunctive
    partials are excluded, matching the paper's scope); the default lists
    every registered measure (``algorithm="exact"`` accepts them all).
    """
    return supported_measures() if supported_only else available_measures()


def supported_measures() -> list[str]:
    """Return the names of measures usable by the MapReduce drivers.

    Measures with a disjunctive partial (``direct_ruzicka``) are excluded,
    matching the paper's scope (section 3.2).
    """
    return sorted(name for name, measure in _REGISTRY.items()
                  if not measure.requires_disjunctive)


def register_measure(measure: NominalSimilarityMeasure,
                     replace: bool = False) -> None:
    """Register a user-defined measure instance under ``measure.name``.

    The measure's declared kernel kinds are validated here: a typo'd
    ``conj_kernel`` would silently fall back nowhere (the kernels dispatch
    on exact strings), so unknown declarations are rejected at registration
    instead of producing wrong fast-path results at query time.
    """
    if not replace and measure.name in _REGISTRY:
        raise UnknownMeasureError(
            f"measure name {measure.name!r} is already registered; "
            "pass replace=True to overwrite")
    if getattr(measure, "conj_kernel", "generic") not in CONJ_KERNELS:
        raise UnknownMeasureError(
            f"measure {measure.name!r} declares unknown conj_kernel "
            f"{measure.conj_kernel!r}; expected one of {CONJ_KERNELS}")
    if getattr(measure, "uni_kernel", "generic") not in UNI_KERNELS:
        raise UnknownMeasureError(
            f"measure {measure.name!r} declares unknown uni_kernel "
            f"{measure.uni_kernel!r}; expected one of {UNI_KERNELS}")
    _REGISTRY[measure.name] = measure


def iter_measures() -> Iterable[tuple[str, NominalSimilarityMeasure]]:
    """Iterate over ``(name, measure)`` pairs in name order."""
    for name in sorted(_REGISTRY):
        yield name, _REGISTRY[name]
