"""Exact in-memory similarity evaluation.

These helpers are the *reference implementation* against which the
distributed pipelines are validated: every integration test compares the
pair set produced by a MapReduce driver with :func:`all_pairs_exact` on the
same data.  They are intentionally simple (quadratic in the number of
multisets) and only suitable for small inputs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Mapping

from repro.core.interning import intern_corpus
from repro.core.multiset import Multiset, MultisetId
from repro.core.records import SimilarPair
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.kernels import interned_similarity, interned_unilateral
from repro.similarity.registry import get_measure


def compute_similarity(measure: str | NominalSimilarityMeasure,
                       entity_i: Multiset, entity_j: Multiset) -> float:
    """Compute ``Sim(Mi, Mj)`` exactly for two in-memory multisets."""
    return get_measure(measure).similarity(entity_i, entity_j)


def compute_partials(measure: str | NominalSimilarityMeasure,
                     entity_i: Multiset,
                     entity_j: Multiset) -> dict[str, tuple[float, ...]]:
    """Return the decomposed partial results for a pair of multisets.

    Useful for debugging a measure's Eqn.-1 decomposition: the returned
    dictionary carries ``Uni(Mi)``, ``Uni(Mj)`` and ``Conj(Mi, Mj)``.
    """
    resolved = get_measure(measure)
    return {
        "uni_i": resolved.unilateral(entity_i),
        "uni_j": resolved.unilateral(entity_j),
        "conj": resolved.conjunctive(entity_i, entity_j),
    }


def all_pairs_exact(multisets: Iterable[Multiset] | Mapping[MultisetId, Multiset],
                    measure: str | NominalSimilarityMeasure,
                    threshold: float,
                    intern: bool = False) -> list[SimilarPair]:
    """Brute-force all-pair similarity join over in-memory multisets.

    Every unordered pair is evaluated exactly; pairs whose similarity is at
    least ``threshold`` are returned in canonical order.  This is the ground
    truth used to validate both the V-SMART-Join pipelines and the VCL
    baseline (the paper notes all algorithms produce identical pair counts).

    ``intern=True`` evaluates the same quadratic sweep on the interned
    array kernels (:mod:`repro.similarity.kernels`) instead of the
    per-element dict probes.  The results are identical; the default stays
    ``False`` so the function remains an *independent* reference for tests
    that validate the kernels themselves.  The kernel microbenchmark times
    the two modes against each other.
    """
    resolved = get_measure(measure)
    limit = validate_threshold(threshold)
    if isinstance(multisets, Mapping):
        entities = list(multisets.values())
    else:
        entities = list(multisets)
    results: list[SimilarPair] = []
    if intern and resolved.requires_disjunctive:
        # Disjunctive measures override .similarity() wholesale (their F()
        # is not computable from Uni/Conj), so the kernel path cannot apply.
        intern = False
    if intern:
        _dictionary, interned = intern_corpus(entities)
        unis = [interned_unilateral(resolved, entity) for entity in interned]
        for index_i, index_j in combinations(range(len(interned)), 2):
            similarity = interned_similarity(
                resolved, interned[index_i], interned[index_j],
                unis[index_i], unis[index_j])
            if similarity >= limit:
                results.append(SimilarPair.make(interned[index_i].id,
                                                interned[index_j].id,
                                                similarity))
        results.sort()
        return results
    for entity_i, entity_j in combinations(entities, 2):
        similarity = resolved.similarity(entity_i, entity_j)
        if similarity >= limit:
            results.append(SimilarPair.make(entity_i.id, entity_j.id, similarity))
    results.sort()
    return results


def pair_dictionary(pairs: Iterable[SimilarPair]) -> dict[tuple, float]:
    """Index similar pairs by their canonical identifier pair.

    Handy in tests for comparing the output of two algorithms while allowing
    tiny floating-point differences in the similarity values.
    """
    return {pair.pair: pair.similarity for pair in pairs}
