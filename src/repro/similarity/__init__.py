"""Nominal Similarity Measures and exact evaluation helpers."""

from repro.similarity.base import (
    NominalSimilarityMeasure,
    PartialDescriptor,
    PartialKind,
    validate_threshold,
)
from repro.similarity.exact import (
    all_pairs_exact,
    compute_partials,
    compute_similarity,
    pair_dictionary,
)
from repro.similarity.measures import (
    DirectRuzickaSimilarity,
    JaccardSimilarity,
    MultisetCosineSimilarity,
    MultisetDiceSimilarity,
    OverlapSimilarity,
    RuzickaSimilarity,
    SetCosineSimilarity,
    SetDiceSimilarity,
    SetOverlapSimilarity,
    VectorCosineSimilarity,
    WeightedJaccardSimilarity,
)
from repro.similarity.partials import (
    merge_uni,
    uni_contribution,
)
from repro.similarity.registry import (
    available_measures,
    get_measure,
    iter_measures,
    register_measure,
    supported_measures,
)

__all__ = [
    "DirectRuzickaSimilarity",
    "JaccardSimilarity",
    "MultisetCosineSimilarity",
    "MultisetDiceSimilarity",
    "NominalSimilarityMeasure",
    "OverlapSimilarity",
    "PartialDescriptor",
    "PartialKind",
    "RuzickaSimilarity",
    "SetCosineSimilarity",
    "SetDiceSimilarity",
    "SetOverlapSimilarity",
    "VectorCosineSimilarity",
    "WeightedJaccardSimilarity",
    "all_pairs_exact",
    "available_measures",
    "compute_partials",
    "compute_similarity",
    "get_measure",
    "iter_measures",
    "merge_uni",
    "pair_dictionary",
    "register_measure",
    "supported_measures",
    "uni_contribution",
    "validate_threshold",
]
