"""Nominal Similarity Measures and exact evaluation helpers."""

from repro.similarity.base import (
    NominalSimilarityMeasure,
    PartialDescriptor,
    PartialKind,
    validate_threshold,
)
from repro.similarity.exact import (
    all_pairs_exact,
    compute_partials,
    compute_similarity,
    pair_dictionary,
)
from repro.similarity.measures import (
    DirectRuzickaSimilarity,
    JaccardSimilarity,
    MultisetCosineSimilarity,
    MultisetDiceSimilarity,
    OverlapSimilarity,
    RuzickaSimilarity,
    SetCosineSimilarity,
    SetDiceSimilarity,
    SetOverlapSimilarity,
    VectorCosineSimilarity,
    WeightedJaccardSimilarity,
)
from repro.similarity.kernels import (
    conj_kernel_kind,
    interned_conjunctive,
    interned_similarity,
    interned_unilateral,
    uni_kernel_kind,
)
from repro.similarity.partials import (
    fold_uni_multiplicities,
    merge_uni,
    uni_contribution,
)
from repro.similarity.registry import (
    available_measures,
    get_measure,
    iter_measures,
    list_measures,
    register_measure,
    supported_measures,
)

__all__ = [
    "DirectRuzickaSimilarity",
    "JaccardSimilarity",
    "MultisetCosineSimilarity",
    "MultisetDiceSimilarity",
    "NominalSimilarityMeasure",
    "OverlapSimilarity",
    "PartialDescriptor",
    "PartialKind",
    "RuzickaSimilarity",
    "SetCosineSimilarity",
    "SetDiceSimilarity",
    "SetOverlapSimilarity",
    "VectorCosineSimilarity",
    "WeightedJaccardSimilarity",
    "all_pairs_exact",
    "available_measures",
    "compute_partials",
    "compute_similarity",
    "conj_kernel_kind",
    "fold_uni_multiplicities",
    "get_measure",
    "interned_conjunctive",
    "interned_similarity",
    "interned_unilateral",
    "iter_measures",
    "list_measures",
    "merge_uni",
    "uni_kernel_kind",
    "pair_dictionary",
    "register_measure",
    "supported_measures",
    "uni_contribution",
    "validate_threshold",
]
