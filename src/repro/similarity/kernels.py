"""Array-backed similarity kernels over interned multisets.

The generic decomposition path accumulates ``Conj(Mi, Mj)`` one shared
element at a time: two dict probes, two ``effective_multiplicity`` calls,
one ``conj_from_pair`` tuple allocation and one ``conj_merge`` tuple
allocation per element.  For the measures the paper actually uses, the
conjunctive partial is a single scalar (a sum of minima or a sum of
products), so all of that per-element machinery collapses into a merge scan
over two sorted id arrays accumulating one float — no hashing, no tuples,
no per-element function calls.

Measures declare which scalar kernel applies through two class attributes
(:attr:`~repro.similarity.base.NominalSimilarityMeasure.conj_kernel` and
:attr:`~repro.similarity.base.NominalSimilarityMeasure.uni_kernel`); any
measure that declares nothing falls back to a merge scan that calls the
measure's own hooks per shared element, so custom measures stay correct,
just not accelerated.

All kernels are *exact*, not approximate: multiplicities are integer-valued
(:class:`~repro.core.multiset.Multiset` enforces this), so the float sums
are order-independent and the kernels reproduce the dict-based reference
path bit for bit.  Large operands are handed to NumPy when it is available;
both code paths compute the identical sums.
"""

from __future__ import annotations

from typing import Callable

from repro.core.interning import InternedMultiset
from repro.similarity.base import NominalSimilarityMeasure, Partials

try:  # NumPy ships with the dev environment but stays optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Conjunctive kernel kinds a measure may declare.
CONJ_SUM_MIN = "sum_min"
CONJ_SUM_PRODUCT = "sum_product"
CONJ_GENERIC = "generic"
CONJ_KERNELS = (CONJ_SUM_MIN, CONJ_SUM_PRODUCT, CONJ_GENERIC)

#: Unilateral kernel kinds a measure may declare.
UNI_SUM = "sum"
UNI_SUM_SQUARES = "sum_squares"
UNI_GENERIC = "generic"
UNI_KERNELS = (UNI_SUM, UNI_SUM_SQUARES, UNI_GENERIC)

#: Operand size (sum of both underlying cardinalities) above which the
#: vectorised NumPy intersection beats the pure-Python merge scan.
NUMPY_THRESHOLD = 192


def conj_kernel_kind(measure: NominalSimilarityMeasure) -> str:
    """The scalar conjunctive kernel declared by ``measure``."""
    return getattr(measure, "conj_kernel", CONJ_GENERIC)


def uni_kernel_kind(measure: NominalSimilarityMeasure) -> str:
    """The scalar unilateral kernel declared by ``measure``."""
    return getattr(measure, "uni_kernel", UNI_GENERIC)


# ---------------------------------------------------------------------------
# Scalar merge scans (the hot loops)
# ---------------------------------------------------------------------------


def _scan_sum_min(ids_i: tuple, mults_i: tuple,
                  ids_j: tuple, mults_j: tuple) -> float:
    """``sum_k min(f_ik, f_jk)`` over the shared elements (merge scan)."""
    i = j = 0
    size_i = len(ids_i)
    size_j = len(ids_j)
    total = 0.0
    while i < size_i and j < size_j:
        a = ids_i[i]
        b = ids_j[j]
        if a == b:
            x = mults_i[i]
            y = mults_j[j]
            total += x if x <= y else y
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return total


def _scan_count_common(ids_i: tuple, ids_j: tuple) -> float:
    """``|U(Mi) ∩ U(Mj)|`` — the set-measure flavour of ``sum_min``."""
    i = j = 0
    size_i = len(ids_i)
    size_j = len(ids_j)
    total = 0
    while i < size_i and j < size_j:
        a = ids_i[i]
        b = ids_j[j]
        if a == b:
            total += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return float(total)


def _scan_sum_product(ids_i: tuple, mults_i: tuple,
                      ids_j: tuple, mults_j: tuple) -> float:
    """``sum_k f_ik * f_jk`` over the shared elements (merge scan)."""
    i = j = 0
    size_i = len(ids_i)
    size_j = len(ids_j)
    total = 0.0
    while i < size_i and j < size_j:
        a = ids_i[i]
        b = ids_j[j]
        if a == b:
            total += mults_i[i] * mults_j[j]
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return total


def _numpy_scalar_conj(kind: str, set_mode: bool,
                       entity_i: InternedMultiset,
                       entity_j: InternedMultiset) -> float:
    """Vectorised intersection path for large operands.

    ``intersect1d`` on the (already unique, already sorted) id arrays yields
    the aligned positions of the shared elements; the scalar reduction is
    then a single vector op.  Integer-valued inputs make the vectorised sums
    exactly equal to the sequential ones.
    """
    ids_i = _np.asarray(entity_i.element_ids, dtype=_np.int64)
    ids_j = _np.asarray(entity_j.element_ids, dtype=_np.int64)
    common, where_i, where_j = _np.intersect1d(
        ids_i, ids_j, assume_unique=True, return_indices=True)
    if set_mode:
        return float(len(common))
    mults_i = _np.asarray(entity_i.multiplicities, dtype=_np.float64)[where_i]
    mults_j = _np.asarray(entity_j.multiplicities, dtype=_np.float64)[where_j]
    if kind == CONJ_SUM_MIN:
        return float(_np.minimum(mults_i, mults_j).sum())
    return float((mults_i * mults_j).sum())


# ---------------------------------------------------------------------------
# Public kernel API
# ---------------------------------------------------------------------------


def interned_conjunctive(measure: NominalSimilarityMeasure,
                         entity_i: InternedMultiset,
                         entity_j: InternedMultiset) -> Partials:
    """``Conj(Mi, Mj)`` from the array representations.

    Dispatches on the measure's declared conjunctive kernel; equals
    :meth:`~repro.similarity.base.NominalSimilarityMeasure.conjunctive` on
    the corresponding :class:`~repro.core.multiset.Multiset` pair exactly.
    """
    kind = conj_kernel_kind(measure)
    if kind == CONJ_GENERIC:
        return _generic_conjunctive(measure, entity_i, entity_j)
    set_mode = measure.uses_underlying_set
    if (_np is not None
            and len(entity_i) + len(entity_j) >= NUMPY_THRESHOLD):
        return (_numpy_scalar_conj(kind, set_mode, entity_i, entity_j),)
    if set_mode:
        return (_scan_count_common(entity_i.element_ids,
                                   entity_j.element_ids),)
    if kind == CONJ_SUM_MIN:
        return (_scan_sum_min(entity_i.element_ids, entity_i.multiplicities,
                              entity_j.element_ids, entity_j.multiplicities),)
    return (_scan_sum_product(entity_i.element_ids, entity_i.multiplicities,
                              entity_j.element_ids, entity_j.multiplicities),)


def _generic_conjunctive(measure: NominalSimilarityMeasure,
                         entity_i: InternedMultiset,
                         entity_j: InternedMultiset) -> Partials:
    """Merge scan calling the measure's own per-element hooks (any measure)."""
    effective = measure.effective_multiplicity
    conj_from_pair = measure.conj_from_pair
    conj_merge = measure.conj_merge
    accumulator = measure.conj_zero()
    ids_i = entity_i.element_ids
    ids_j = entity_j.element_ids
    mults_i = entity_i.multiplicities
    mults_j = entity_j.multiplicities
    i = j = 0
    size_i = len(ids_i)
    size_j = len(ids_j)
    while i < size_i and j < size_j:
        a = ids_i[i]
        b = ids_j[j]
        if a == b:
            accumulator = conj_merge(
                accumulator,
                conj_from_pair(effective(mults_i[i]), effective(mults_j[j])))
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return accumulator


def interned_unilateral(measure: NominalSimilarityMeasure,
                        entity: InternedMultiset) -> Partials:
    """``Uni(Mi)`` from the array representation.

    Equals
    :meth:`~repro.similarity.base.NominalSimilarityMeasure.unilateral` on
    the corresponding multiset exactly.
    """
    kind = uni_kernel_kind(measure)
    if kind == UNI_SUM:
        if measure.uses_underlying_set:
            return (float(len(entity)),)
        return (entity.cardinality,)
    if kind == UNI_SUM_SQUARES:
        mults = entity.multiplicities
        if measure.uses_underlying_set:
            return (float(len(entity)),)
        return (float(sum(m * m for m in mults)),)
    return measure.unilateral(entity.items())


def interned_similarity(measure: NominalSimilarityMeasure,
                        entity_i: InternedMultiset,
                        entity_j: InternedMultiset,
                        uni_i: Partials | None = None,
                        uni_j: Partials | None = None) -> float:
    """``Sim(Mi, Mj)`` from the array representations.

    Callers comparing one entity against many (the VCL kernel reducer)
    pass precomputed ``Uni`` tuples to avoid refolding them per pair.
    """
    if uni_i is None:
        uni_i = interned_unilateral(measure, entity_i)
    if uni_j is None:
        uni_j = interned_unilateral(measure, entity_j)
    return measure.combine(uni_i, uni_j,
                           interned_conjunctive(measure, entity_i, entity_j))


# ---------------------------------------------------------------------------
# Scalar accumulators (for streaming consumers like the serving index)
# ---------------------------------------------------------------------------


def scalar_conj_functions(
        measure: NominalSimilarityMeasure,
) -> tuple[Callable[[float, float], float], Callable[[float, float, float], float]] | None:
    """Streaming scalar accumulation for measures with a scalar kernel.

    Returns ``(seed, accumulate)`` where ``seed(fi, fj)`` starts a scalar
    ``Conj`` accumulator from the first shared element and
    ``accumulate(total, fi, fj)`` folds another shared element in, or
    ``None`` for measures without a scalar kernel.  The scalar stands for
    the measure's one-tuple ``Conj`` — wrap it as ``(total,)`` before
    calling ``combine``.  Avoids one tuple allocation per (element,
    candidate) posting hit on the serving hot path.
    """
    kind = conj_kernel_kind(measure)
    if kind == CONJ_SUM_MIN:
        def seed_min(multiplicity_i: float, multiplicity_j: float) -> float:
            return multiplicity_i if multiplicity_i <= multiplicity_j else multiplicity_j

        def accumulate_min(total: float, multiplicity_i: float,
                           multiplicity_j: float) -> float:
            return total + (multiplicity_i
                            if multiplicity_i <= multiplicity_j
                            else multiplicity_j)

        return seed_min, accumulate_min
    if kind == CONJ_SUM_PRODUCT:
        def seed_product(multiplicity_i: float, multiplicity_j: float) -> float:
            return multiplicity_i * multiplicity_j

        def accumulate_product(total: float, multiplicity_i: float,
                               multiplicity_j: float) -> float:
            return total + multiplicity_i * multiplicity_j

        return seed_product, accumulate_product
    return None
