"""Concrete Nominal Similarity Measures.

Every measure discussed in the paper is implemented here in the decomposed
(Eqn. 1) form the V-SMART-Join framework consumes:

* Ruzicka (the multiset generalisation of Jaccard) — the measure used in the
  paper's IP/cookie experiments — rewritten, as in section 3.2, to avoid its
  disjunctive ``max`` partial:
  ``|Mi ∩ Mj| / (|Mi| + |Mj| - |Mi ∩ Mj|)``;
* Jaccard on underlying sets;
* Dice and cosine, in both set and multiset flavours;
* vector cosine on raw multiplicities;
* the overlap coefficient;
* ``DirectRuzicka``, the textbook min/max formulation that *does* require a
  disjunctive partial; it is mathematically identical to Ruzicka and exists
  to exercise the framework's rejection path and to cross-check the rewrite.

Prefix-filtering bounds (used only by the VCL / PPJoin baselines) follow the
standard derivations of Chaudhuri et al. [10] and Xiao et al. [34].
"""

from __future__ import annotations

import math

from repro.core.multiset import Multiset
from repro.similarity.base import (
    NominalSimilarityMeasure,
    PartialDescriptor,
    PartialKind,
    Partials,
)


def _ceil(value: float) -> int:
    """Ceiling with protection against float fuzz just below an integer."""
    return int(math.ceil(value - 1e-9))


class _MinIntersectionMeasure(NominalSimilarityMeasure):
    """Shared bound for measures whose conjunctive partial is ``sum min``.

    For these measures ``|Mi ∩ Mj| = sum_k min(f_ik, f_jk)`` never exceeds
    the smaller cardinality, giving the serving index a similarity upper
    bound from the ``Uni`` tuples alone.  They also share the scalar
    kernels: ``Uni`` is the (effective) cardinality and ``Conj`` a sum of
    minima, so the array kernels can run them as plain merge scans.
    """

    conj_kernel = "sum_min"
    uni_kernel = "sum"

    def conj_upper_bound(self, uni_i: Partials,
                         uni_j: Partials) -> Partials | None:
        return (min(uni_i[0], uni_j[0]),)


class RuzickaSimilarity(_MinIntersectionMeasure):
    """Ruzicka similarity — generalised (weighted) Jaccard for multisets.

    ``Sim = |Mi ∩ Mj| / (|Mi| + |Mj| - |Mi ∩ Mj|)`` where the intersection
    cardinality is ``sum_k min(f_ik, f_jk)``.  This is the measure used in
    the paper's experiments (section 7).
    """

    name = "ruzicka"
    uses_underlying_set = False

    def uni_from_multiplicity(self, multiplicity: float) -> Partials:
        return (multiplicity,)

    def conj_from_pair(self, multiplicity_i: float,
                       multiplicity_j: float) -> Partials:
        return (min(multiplicity_i, multiplicity_j),)

    def combine(self, uni_i: Partials, uni_j: Partials,
                conj: Partials) -> float:
        intersection = conj[0]
        union = uni_i[0] + uni_j[0] - intersection
        if union <= 0:
            return 0.0
        return intersection / union

    def partial_descriptors(self) -> list[PartialDescriptor]:
        return [
            PartialDescriptor("|Mi|", PartialKind.UNILATERAL, "sum",
                              "cardinality of the first multiset"),
            PartialDescriptor("|Mj|", PartialKind.UNILATERAL, "sum",
                              "cardinality of the second multiset"),
            PartialDescriptor("|Mi ∩ Mj|", PartialKind.CONJUNCTIVE, "sum",
                              "sum of per-element minimum multiplicities"),
        ]

    def size_lower_bound(self, size: float, threshold: float) -> float:
        return threshold * size

    def minimum_overlap(self, size_i: float, size_j: float,
                        threshold: float) -> float:
        return threshold / (1.0 + threshold) * (size_i + size_j)

    def prefix_size(self, size: int, threshold: float) -> int:
        return max(0, int(size) - _ceil(threshold * size) + 1)


class JaccardSimilarity(RuzickaSimilarity):
    """Jaccard similarity on underlying sets: ``|Si ∩ Sj| / |Si ∪ Sj|``."""

    name = "jaccard"
    uses_underlying_set = True


class MultisetDiceSimilarity(_MinIntersectionMeasure):
    """Dice similarity generalised to multisets: ``2|Mi ∩ Mj| / (|Mi|+|Mj|)``."""

    name = "dice"
    uses_underlying_set = False

    def uni_from_multiplicity(self, multiplicity: float) -> Partials:
        return (multiplicity,)

    def conj_from_pair(self, multiplicity_i: float,
                       multiplicity_j: float) -> Partials:
        return (min(multiplicity_i, multiplicity_j),)

    def combine(self, uni_i: Partials, uni_j: Partials,
                conj: Partials) -> float:
        denominator = uni_i[0] + uni_j[0]
        if denominator <= 0:
            return 0.0
        return 2.0 * conj[0] / denominator

    def partial_descriptors(self) -> list[PartialDescriptor]:
        return [
            PartialDescriptor("|Mi|", PartialKind.UNILATERAL, "sum"),
            PartialDescriptor("|Mj|", PartialKind.UNILATERAL, "sum"),
            PartialDescriptor("|Mi ∩ Mj|", PartialKind.CONJUNCTIVE, "sum"),
        ]

    def size_lower_bound(self, size: float, threshold: float) -> float:
        return threshold / (2.0 - threshold) * size

    def minimum_overlap(self, size_i: float, size_j: float,
                        threshold: float) -> float:
        return threshold * (size_i + size_j) / 2.0

    def prefix_size(self, size: int, threshold: float) -> int:
        return max(0, int(size) - _ceil(threshold / (2.0 - threshold) * size) + 1)


class SetDiceSimilarity(MultisetDiceSimilarity):
    """Dice similarity on underlying sets: ``2|Si ∩ Sj| / (|Si|+|Sj|)``."""

    name = "set_dice"
    uses_underlying_set = True


class MultisetCosineSimilarity(_MinIntersectionMeasure):
    """Cosine similarity generalised to multisets via the set expansion.

    ``Sim = |Mi ∩ Mj| / sqrt(|Mi| * |Mj|)`` — the intersection is the sum of
    per-element minimum multiplicities (paper section 3.1).
    """

    name = "cosine"
    uses_underlying_set = False

    def uni_from_multiplicity(self, multiplicity: float) -> Partials:
        return (multiplicity,)

    def conj_from_pair(self, multiplicity_i: float,
                       multiplicity_j: float) -> Partials:
        return (min(multiplicity_i, multiplicity_j),)

    def combine(self, uni_i: Partials, uni_j: Partials,
                conj: Partials) -> float:
        denominator = math.sqrt(uni_i[0] * uni_j[0])
        if denominator <= 0:
            return 0.0
        return conj[0] / denominator

    def partial_descriptors(self) -> list[PartialDescriptor]:
        return [
            PartialDescriptor("|Mi|", PartialKind.UNILATERAL, "sum"),
            PartialDescriptor("|Mj|", PartialKind.UNILATERAL, "sum"),
            PartialDescriptor("|Mi ∩ Mj|", PartialKind.CONJUNCTIVE, "sum"),
        ]

    def size_lower_bound(self, size: float, threshold: float) -> float:
        return threshold * threshold * size

    def minimum_overlap(self, size_i: float, size_j: float,
                        threshold: float) -> float:
        return threshold * math.sqrt(size_i * size_j)

    def prefix_size(self, size: int, threshold: float) -> int:
        return max(0, int(size) - _ceil(threshold * threshold * size) + 1)


class SetCosineSimilarity(MultisetCosineSimilarity):
    """Cosine similarity on underlying sets: ``|Si ∩ Sj| / sqrt(|Si| |Sj|)``."""

    name = "set_cosine"
    uses_underlying_set = True


class VectorCosineSimilarity(NominalSimilarityMeasure):
    """Cosine similarity of the raw multiplicity vectors.

    ``Sim = sum_k f_ik f_jk / (||Mi||_2 ||Mj||_2)``.  The unilateral partial
    is the sum of squared multiplicities; the conjunctive partial is the dot
    product over shared elements.
    """

    name = "vector_cosine"
    uses_underlying_set = False
    conj_kernel = "sum_product"
    uni_kernel = "sum_squares"

    def uni_from_multiplicity(self, multiplicity: float) -> Partials:
        return (multiplicity * multiplicity,)

    def conj_from_pair(self, multiplicity_i: float,
                       multiplicity_j: float) -> Partials:
        return (multiplicity_i * multiplicity_j,)

    def combine(self, uni_i: Partials, uni_j: Partials,
                conj: Partials) -> float:
        denominator = math.sqrt(uni_i[0]) * math.sqrt(uni_j[0])
        if denominator <= 0:
            return 0.0
        return conj[0] / denominator

    def partial_descriptors(self) -> list[PartialDescriptor]:
        return [
            PartialDescriptor("sum f_ik^2", PartialKind.UNILATERAL, "sum",
                              "squared L2 norm of the first vector"),
            PartialDescriptor("sum f_jk^2", PartialKind.UNILATERAL, "sum",
                              "squared L2 norm of the second vector"),
            PartialDescriptor("sum f_ik f_jk", PartialKind.CONJUNCTIVE, "sum",
                              "dot product over shared dimensions"),
        ]

    # No conj_upper_bound override: the Cauchy–Schwarz bound sqrt(uni_i uni_j)
    # always combines to ~1.0, so it prunes nothing — and float rounding can
    # land it one ulp *below* 1.0, wrongly pruning exact matches at t = 1.0.
    # The inherited default (no bound, similarity_upper_bound = 1.0) is both
    # safe and equally tight.


class OverlapSimilarity(NominalSimilarityMeasure):
    """Overlap (Szymkiewicz–Simpson) coefficient: ``|Mi ∩ Mj| / min(|Mi|, |Mj|)``.

    Not a :class:`_MinIntersectionMeasure`: the min-intersection bound
    combines to ``min / min`` = 1.0 identically, so it would never prune —
    the inherited no-bound default costs nothing and is equally tight.
    """

    name = "overlap"
    uses_underlying_set = False
    conj_kernel = "sum_min"
    uni_kernel = "sum"

    def uni_from_multiplicity(self, multiplicity: float) -> Partials:
        return (multiplicity,)

    def conj_from_pair(self, multiplicity_i: float,
                       multiplicity_j: float) -> Partials:
        return (min(multiplicity_i, multiplicity_j),)

    def combine(self, uni_i: Partials, uni_j: Partials,
                conj: Partials) -> float:
        denominator = min(uni_i[0], uni_j[0])
        if denominator <= 0:
            return 0.0
        return conj[0] / denominator

    def partial_descriptors(self) -> list[PartialDescriptor]:
        return [
            PartialDescriptor("|Mi|", PartialKind.UNILATERAL, "sum"),
            PartialDescriptor("|Mj|", PartialKind.UNILATERAL, "sum"),
            PartialDescriptor("|Mi ∩ Mj|", PartialKind.CONJUNCTIVE, "sum"),
        ]


class SetOverlapSimilarity(OverlapSimilarity):
    """Overlap coefficient on underlying sets."""

    name = "set_overlap"
    uses_underlying_set = True


class DirectRuzickaSimilarity(NominalSimilarityMeasure):
    """The textbook min/max Ruzicka formulation with a disjunctive partial.

    ``Sim = sum_k min(f_ik, f_jk) / sum_k max(f_ik, f_jk)``.  The denominator
    requires scanning the *union* of the two underlying sets, so this measure
    cannot be handled by the MapReduce drivers (they raise
    :class:`~repro.core.exceptions.MeasureNotApplicableError`).  It exists to
    document the disjunctive class and to cross-check the rewritten
    :class:`RuzickaSimilarity`, to which it is mathematically identical.
    """

    name = "direct_ruzicka"
    uses_underlying_set = False
    requires_disjunctive = True
    conj_kernel = "sum_min"

    def uni_from_multiplicity(self, multiplicity: float) -> Partials:
        return ()

    def conj_from_pair(self, multiplicity_i: float,
                       multiplicity_j: float) -> Partials:
        return (min(multiplicity_i, multiplicity_j),)

    def uni_zero(self) -> Partials:
        return ()

    def combine(self, uni_i: Partials, uni_j: Partials,
                conj: Partials) -> float:
        raise NotImplementedError(
            "DirectRuzicka has a disjunctive partial; use .similarity() "
            "for exact in-memory evaluation")

    def similarity(self, entity_i: Multiset, entity_j: Multiset) -> float:
        union = entity_i.union_cardinality(entity_j)
        if union <= 0:
            return 0.0
        return entity_i.intersection_cardinality(entity_j) / union

    def partial_descriptors(self) -> list[PartialDescriptor]:
        return [
            PartialDescriptor("sum min(f_ik, f_jk)", PartialKind.CONJUNCTIVE, "sum"),
            PartialDescriptor("sum max(f_ik, f_jk)", PartialKind.DISJUNCTIVE, "sum",
                              "requires scanning the union of the two multisets"),
        ]


class WeightedJaccardSimilarity(RuzickaSimilarity):
    """Alias of Ruzicka under its other common name, weighted Jaccard."""

    name = "weighted_jaccard"
