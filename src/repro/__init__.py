"""repro — a reproduction of V-SMART-Join (Metwally & Faloutsos, VLDB 2012).

The package implements the paper's contribution and every substrate it
depends on:

* :mod:`repro.core` — multisets, sparse vectors and the record types that
  flow through the pipelines;
* :mod:`repro.similarity` — the Nominal Similarity Measure framework
  (Eqn. 1) with the unilateral / conjunctive / disjunctive classification
  and the concrete measures (Ruzicka, Jaccard, Dice, cosine, ...);
* :mod:`repro.mapreduce` — a deterministic MapReduce simulator with
  combiners, secondary keys, per-machine memory/disk budgets and a cost
  model producing simulated run times;
* :mod:`repro.vsmart` — the V-SMART-Join framework: the Online-Aggregation,
  Lookup and Sharding joining algorithms plus the shared two-step similarity
  phase;
* :mod:`repro.vcl` — the VCL baseline (MapReduce PPJoin+ with prefix
  filtering);
* :mod:`repro.serving` — the online similarity-serving subsystem: an
  incrementally maintained partial-result index with threshold and top-k
  queries, LRU-cached serving nodes and hash-sharded fan-out;
* :mod:`repro.baselines` — sequential baselines (brute force, inverted
  index, PPJoin, MinHash/LSH);
* :mod:`repro.datasets` — synthetic IP/cookie and document workload
  generators with planted ground truth;
* :mod:`repro.communities` — similarity-graph clustering and proxy
  identification;
* :mod:`repro.analysis` — the experiment harness behind the figure
  benchmarks.

Quickstart::

    from repro import Multiset, vsmart_join

    ips = [Multiset("ip-a", {"cookie1": 3, "cookie2": 1}),
           Multiset("ip-b", {"cookie1": 2, "cookie2": 2}),
           Multiset("ip-c", {"cookie9": 5})]
    pairs = vsmart_join(ips, measure="ruzicka", threshold=0.4)
"""

from repro.core import (
    ElementDictionary,
    InputTuple,
    InternedMultiset,
    Multiset,
    PairCodec,
    SimilarPair,
    SparseVector,
    intern_corpus,
)
from repro.mapreduce import (
    Cluster,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    laptop_cluster,
    paper_cluster,
)
from repro.serving import (
    ServingNode,
    ShardedSimilarityService,
    SimilarityIndex,
    bootstrap_from_join,
)
from repro.similarity import all_pairs_exact, compute_similarity, get_measure
from repro.vcl import VCLConfig, VCLJoin, vcl_join
from repro.vsmart import VSmartJoin, VSmartJoinConfig, vsmart_join

__version__ = "1.2.0"

__all__ = [
    "Cluster",
    "ElementDictionary",
    "ExecutionBackend",
    "InputTuple",
    "InternedMultiset",
    "Multiset",
    "PairCodec",
    "ProcessBackend",
    "SerialBackend",
    "ServingNode",
    "ShardedSimilarityService",
    "SimilarPair",
    "SimilarityIndex",
    "SparseVector",
    "ThreadBackend",
    "VCLConfig",
    "VCLJoin",
    "VSmartJoin",
    "VSmartJoinConfig",
    "__version__",
    "all_pairs_exact",
    "available_backends",
    "bootstrap_from_join",
    "compute_similarity",
    "get_backend",
    "get_measure",
    "intern_corpus",
    "laptop_cluster",
    "paper_cluster",
    "vcl_join",
    "vsmart_join",
]
