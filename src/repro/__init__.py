"""repro — a reproduction of V-SMART-Join (Metwally & Faloutsos, VLDB 2012).

The package implements the paper's contribution and every substrate it
depends on:

* :mod:`repro.core` — multisets, sparse vectors and the record types that
  flow through the pipelines;
* :mod:`repro.similarity` — the Nominal Similarity Measure framework
  (Eqn. 1) with the unilateral / conjunctive / disjunctive classification
  and the concrete measures (Ruzicka, Jaccard, Dice, cosine, ...);
* :mod:`repro.mapreduce` — a deterministic MapReduce simulator with
  combiners, secondary keys, per-machine memory/disk budgets and a cost
  model producing simulated run times;
* :mod:`repro.vsmart` — the V-SMART-Join framework: the Online-Aggregation,
  Lookup and Sharding joining algorithms plus the shared two-step similarity
  phase;
* :mod:`repro.vcl` — the VCL baseline (MapReduce PPJoin+ with prefix
  filtering);
* :mod:`repro.serving` — the online similarity-serving subsystem: an
  incrementally maintained partial-result index with threshold and top-k
  queries, LRU-cached serving nodes and hash-sharded fan-out;
* :mod:`repro.baselines` — sequential baselines (brute force, inverted
  index, PPJoin, MinHash/LSH);
* :mod:`repro.datasets` — synthetic IP/cookie and document workload
  generators with planted ground truth;
* :mod:`repro.communities` — similarity-graph clustering and proxy
  identification;
* :mod:`repro.analysis` — the experiment harness behind the figure
  benchmarks.

* :mod:`repro.engine` — the unified front door: a declarative
  :class:`JoinSpec`, a cost-model-driven :class:`Planner` with inspectable
  plans, the :class:`SimilarityEngine` session, and the single
  :class:`JoinResult` every execution path returns;
* :mod:`repro.streaming` — incremental join maintenance: a :class:`JoinView`
  materializes a spec's pair set and applies upsert/delete
  :class:`ChangeBatch` streams exactly, emitting :class:`PairDelta` events
  and streaming them into the serving layer;
* :mod:`repro.resilience` — replication and fault tolerance for serving:
  :class:`ReplicatedSimilarityService` keeps N replicas per hash-shard
  (write fan-in, read spreading, failover, exact rebuild), with seeded
  :class:`FaultPolicy` injection, :class:`RetryPolicy` backoff and a
  :class:`CircuitBreaker` for the wire client;
* :mod:`repro.storage` — the durable persistence tier: one SQLite file
  holds a serving index (``SimilarityIndex.save``/``.load``), a crash-
  recoverable view snapshot + mutation log (``JoinView.persist`` /
  ``JoinView.recover``) or a stored join result with lazy pair iteration
  (``JoinResult.to_sqlite``/``.from_sqlite``), all with exact round-trips.

Quickstart::

    from repro import JoinSpec, Multiset, SimilarityEngine

    ips = [Multiset("ip-a", {"cookie1": 3, "cookie2": 1}),
           Multiset("ip-b", {"cookie1": 2, "cookie2": 2}),
           Multiset("ip-c", {"cookie9": 5})]
    with SimilarityEngine() as engine:
        result = engine.run(JoinSpec(measure="ruzicka", threshold=0.4), ips)
    for pair in result:
        print(pair.first, pair.second, pair.similarity)
"""

from repro.core import (
    ElementDictionary,
    InputTuple,
    InternedMultiset,
    Multiset,
    PairCodec,
    SimilarPair,
    SparseVector,
    intern_corpus,
)
from repro.mapreduce import (
    Cluster,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    laptop_cluster,
    paper_cluster,
)
from repro.resilience import (
    CircuitBreaker,
    FaultPolicy,
    ReplicatedShard,
    ReplicatedSimilarityService,
    RetryPolicy,
)
from repro.serving import (
    ServingNode,
    ShardedSimilarityService,
    SimilarityIndex,
    bootstrap_from_join,
)
from repro.similarity import (
    all_pairs_exact,
    compute_similarity,
    get_measure,
    list_measures,
)
from repro.vcl import VCLConfig, VCLJoin, vcl_join
from repro.vsmart import VSmartJoin, VSmartJoinConfig, vsmart_join
from repro.engine import (
    CalibrationProfile,
    CorpusProfile,
    JoinPlan,
    JoinResult,
    JoinSpec,
    Planner,
    SimilarityEngine,
    available_algorithms,
    join,
)
from repro.storage import (
    ResultStore,
    StorageEngine,
    StoredPairSequence,
    ViewStore,
)
from repro.streaming import (
    Change,
    ChangeBatch,
    JoinView,
    PairDelta,
    apply_deltas,
    attach_serving,
)

__version__ = "1.9.0"

__all__ = [
    "Change",
    "ChangeBatch",
    "CalibrationProfile",
    "CircuitBreaker",
    "Cluster",
    "CorpusProfile",
    "ElementDictionary",
    "ExecutionBackend",
    "FaultPolicy",
    "InputTuple",
    "InternedMultiset",
    "JoinPlan",
    "JoinResult",
    "JoinSpec",
    "JoinView",
    "Multiset",
    "PairDelta",
    "PairCodec",
    "Planner",
    "ProcessBackend",
    "ReplicatedShard",
    "ReplicatedSimilarityService",
    "ResultStore",
    "RetryPolicy",
    "SerialBackend",
    "ServingNode",
    "ShardedSimilarityService",
    "SimilarPair",
    "SimilarityEngine",
    "SimilarityIndex",
    "SparseVector",
    "StorageEngine",
    "StoredPairSequence",
    "ThreadBackend",
    "ViewStore",
    "VCLConfig",
    "VCLJoin",
    "VSmartJoin",
    "VSmartJoinConfig",
    "__version__",
    "all_pairs_exact",
    "apply_deltas",
    "attach_serving",
    "available_algorithms",
    "available_backends",
    "bootstrap_from_join",
    "compute_similarity",
    "get_backend",
    "get_measure",
    "intern_corpus",
    "join",
    "laptop_cluster",
    "list_measures",
    "paper_cluster",
    "vcl_join",
    "vsmart_join",
]
