"""Closed- and open-loop load generation against a live server.

Two replay disciplines, because they answer different questions:

* **closed loop** (:func:`run_closed_loop`) — ``concurrency`` clients each
  fire their next request as soon as the previous one answers.  Measures
  the server's achievable throughput at a given concurrency, but a slow
  server slows its own clients, so latency stays deceptively flat.
* **open loop** (:func:`run_open_loop`) — requests fire at pre-scheduled
  Poisson arrival times (:func:`~repro.datasets.workload.generate_open_loop_arrivals`)
  regardless of completions.  Measures latency under a fixed *offered*
  load, the discipline that actually exposes queueing collapse.

Both return a :class:`LoadReport` with the percentile latencies the
``bench_server_latency`` benchmark records.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import ServerError
from repro.serving.api import QueryRequest
from repro.server.client import RemoteServerError, SimilarityClient


@dataclass(frozen=True)
class LoadReport:
    """Latency and throughput summary of one replay."""

    discipline: str
    num_requests: int
    num_errors: int
    num_rejected: int
    elapsed_seconds: float
    qps: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    total_matches: int

    def to_dict(self) -> dict:
        """The report as a flat JSON-friendly dict (benchmark payload)."""
        return {
            "discipline": self.discipline,
            "num_requests": self.num_requests,
            "num_errors": self.num_errors,
            "num_rejected": self.num_rejected,
            "elapsed_seconds": self.elapsed_seconds,
            "qps": self.qps,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "max_latency_ms": self.max_latency_ms,
            "total_matches": self.total_matches,
        }


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of pre-sorted values (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _build_report(discipline: str, latencies: list[float], errors: int,
                  rejected: int, elapsed: float,
                  total_matches: int) -> LoadReport:
    ordered = sorted(latencies)
    completed = len(ordered)
    return LoadReport(
        discipline=discipline,
        num_requests=completed,
        num_errors=errors,
        num_rejected=rejected,
        elapsed_seconds=elapsed,
        qps=completed / elapsed if elapsed > 0 else 0.0,
        p50_latency_ms=percentile(ordered, 0.50) * 1000.0,
        p95_latency_ms=percentile(ordered, 0.95) * 1000.0,
        p99_latency_ms=percentile(ordered, 0.99) * 1000.0,
        max_latency_ms=ordered[-1] * 1000.0 if ordered else 0.0,
        total_matches=total_matches)


class _Tally:
    """Thread-shared counters of one replay."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: list[float] = []
        self.errors = 0
        self.rejected = 0
        self.total_matches = 0

    def record(self, latency: float, matches: int) -> None:
        with self.lock:
            self.latencies.append(latency)
            self.total_matches += matches

    def record_failure(self, error: Exception) -> None:
        with self.lock:
            if (isinstance(error, RemoteServerError)
                    and error.code == "queue_full"):
                self.rejected += 1
            else:
                self.errors += 1


def _fire(client: SimilarityClient, request: QueryRequest,
          tally: _Tally) -> None:
    started = time.perf_counter()
    try:
        response = client.query(request)
    except ServerError as error:
        tally.record_failure(error)
    else:
        tally.record(time.perf_counter() - started, len(response))


def run_closed_loop(host: str, port: int, requests: Sequence[QueryRequest],
                    *, concurrency: int = 4) -> LoadReport:
    """Replay ``requests`` from ``concurrency`` closed-loop clients.

    The request list is split round-robin across the clients; each client
    reuses one kept-alive connection and fires its next request the moment
    the previous one completes.
    """
    if concurrency < 1:
        raise ServerError(f"concurrency must be >= 1, got {concurrency}")
    tally = _Tally()

    def worker(worker_requests: Sequence[QueryRequest]) -> None:
        with SimilarityClient(host, port) as client:
            for request in worker_requests:
                _fire(client, request, tally)

    threads = [threading.Thread(
        target=worker, args=(requests[worker_id::concurrency],),
        name=f"loadgen-{worker_id}")
        for worker_id in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return _build_report("closed_loop", tally.latencies, tally.errors,
                         tally.rejected, elapsed, tally.total_matches)


def run_open_loop(host: str, port: int, requests: Sequence[QueryRequest],
                  arrival_offsets: Sequence[float], *,
                  max_threads: int = 64) -> LoadReport:
    """Replay ``requests`` at fixed arrival times, regardless of completions.

    ``arrival_offsets[i]`` is request ``i``'s scheduled firing time in
    seconds from replay start (see
    :func:`~repro.datasets.workload.generate_open_loop_arrivals`).  Each
    in-flight request occupies one thread with its own connection, capped
    at ``max_threads``; arrivals that would exceed the cap count as
    client-side rejections (the open-loop analogue of a saturated client).
    """
    if len(arrival_offsets) != len(requests):
        raise ServerError(
            f"need one arrival offset per request, got "
            f"{len(arrival_offsets)} offsets for {len(requests)} requests")
    tally = _Tally()
    in_flight: list[threading.Thread] = []
    started = time.perf_counter()
    for request, offset in zip(requests, arrival_offsets):
        delay = offset - (time.perf_counter() - started)
        if delay > 0:
            time.sleep(delay)
        in_flight = [thread for thread in in_flight if thread.is_alive()]
        if len(in_flight) >= max_threads:
            with tally.lock:
                tally.rejected += 1
            continue

        def fire_once(bound_request: QueryRequest = request) -> None:
            with SimilarityClient(host, port) as client:
                _fire(client, bound_request, tally)

        thread = threading.Thread(target=fire_once, name="loadgen-open")
        thread.start()
        in_flight.append(thread)
    for thread in in_flight:
        thread.join()
    elapsed = time.perf_counter() - started
    return _build_report("open_loop", tally.latencies, tally.errors,
                         tally.rejected, elapsed, tally.total_matches)
