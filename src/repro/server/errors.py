"""One table mapping the exception hierarchy to wire error codes.

Every :class:`~repro.core.exceptions.ReproError` subclass an endpoint can
raise maps to a stable machine-readable code and an HTTP status, so clients
branch on ``error.code`` instead of parsing messages.  The table is ordered
most-specific-first and resolved by ``isinstance``, so new subclasses
inherit their parent's mapping until given a row of their own.

Status conventions:

* ``400`` — the request itself is invalid (malformed multisets, unknown
  measures, bad configuration);
* ``409`` — the request is well-formed but conflicts with current state
  (adding an identifier that is already indexed, deleting one that is not,
  change batches a view rejects);
* ``429`` — a bounded queue refused admission; retry after the hinted
  backoff (sent as ``Retry-After``);
* ``5xx`` — the server could not complete a valid request (storage
  failures, simulated budget/timeout kills, unexpected internals).
"""

from __future__ import annotations

from repro.core.exceptions import (
    BackendError,
    CircuitOpenError,
    CommunityError,
    DatasetError,
    DeadlineExceededError,
    DiskBudgetExceeded,
    InvalidMultisetError,
    InvalidVectorError,
    JobConfigurationError,
    JobTimeoutError,
    MapReduceError,
    MeasureNotApplicableError,
    MemoryBudgetExceeded,
    PipelineError,
    QueueFullError,
    ReplicaDivergenceError,
    ReplicaUnavailableError,
    ReproError,
    ResilienceError,
    ServerError,
    ServingError,
    StorageError,
    StreamingError,
    UnknownMeasureError,
    UnsupportedFeatureError,
)
from repro.core.interning import InterningError

#: The (exception class, error code, HTTP status) table — most specific
#: first, resolved by ``isinstance`` so subclasses inherit their parent's
#: row unless listed themselves.
ERROR_TABLE: tuple[tuple[type[ReproError], str, int], ...] = (
    (QueueFullError, "queue_full", 429),
    (ReplicaUnavailableError, "replica_unavailable", 503),
    (CircuitOpenError, "circuit_open", 503),
    (DeadlineExceededError, "deadline_exceeded", 504),
    (ReplicaDivergenceError, "replica_divergence", 500),
    (ResilienceError, "resilience_error", 500),
    (ServerError, "server_error", 400),
    (InvalidMultisetError, "invalid_multiset", 400),
    (InvalidVectorError, "invalid_vector", 400),
    (UnknownMeasureError, "unknown_measure", 400),
    (MeasureNotApplicableError, "measure_not_applicable", 400),
    (InterningError, "interning_error", 400),
    (ServingError, "serving_error", 409),
    (StreamingError, "streaming_error", 409),
    (DatasetError, "dataset_error", 400),
    (StorageError, "storage_error", 500),
    (BackendError, "backend_error", 500),
    (MemoryBudgetExceeded, "memory_budget_exceeded", 507),
    (DiskBudgetExceeded, "disk_budget_exceeded", 507),
    (JobTimeoutError, "job_timeout", 504),
    (JobConfigurationError, "job_configuration_error", 400),
    (UnsupportedFeatureError, "unsupported_feature", 400),
    (PipelineError, "pipeline_error", 500),
    (MapReduceError, "mapreduce_error", 500),
    (CommunityError, "community_error", 500),
    (ReproError, "repro_error", 500),
)

#: Codes for failures that never surface as :class:`ReproError`.
BAD_REQUEST = ("bad_request", 400)
NOT_FOUND = ("not_found", 404)
METHOD_NOT_ALLOWED = ("method_not_allowed", 405)
INTERNAL_ERROR = ("internal_error", 500)


def classify(error: BaseException) -> tuple[str, int]:
    """The ``(code, http_status)`` of an exception, via the one table."""
    for exception_class, code, status in ERROR_TABLE:
        if isinstance(error, exception_class):
            return code, status
    return INTERNAL_ERROR


def error_body(error: BaseException) -> tuple[int, dict]:
    """The structured JSON error body (and status) of an exception.

    Every error response has the same shape::

        {"error": {"code": "...", "status": 4xx,
                   "type": "ExceptionClassName", "message": "..."}}

    plus code-specific extras: every backpressure-shaped error that
    carries a ``retry_after_seconds`` attribute (``queue_full``,
    ``replica_unavailable``, ``circuit_open``, ``deadline_exceeded``)
    surfaces it in the body — and the transports mirror it into a
    ``Retry-After`` header — so clients back off by the server's own
    estimate instead of guessing.
    """
    code, status = classify(error)
    body: dict = {"error": {"code": code, "status": status,
                            "type": type(error).__name__,
                            "message": str(error)}}
    retry_after = getattr(error, "retry_after_seconds", None)
    if retry_after is not None:
        body["error"]["retry_after_seconds"] = float(retry_after)
    if isinstance(error, QueueFullError) and error.queue:
        body["error"]["queue"] = error.queue
    return status, body


def simple_error(code_status: tuple[str, int], message: str) -> tuple[int, dict]:
    """An error body for non-exception failures (bad routes, bad JSON)."""
    code, status = code_status
    return status, {"error": {"code": code, "status": status,
                              "type": "HTTPError", "message": message}}
