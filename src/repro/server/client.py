"""A hardened synchronous client over :mod:`http.client`.

The client is the other half of the wire contract: it encodes with the
same :mod:`repro.serving.api` codec the server decodes with, and it turns
structured error bodies back into :class:`RemoteServerError` carrying the
machine-readable ``code`` (and ``retry_after_seconds`` where the server
sent a backoff hint), so callers branch on codes — never on message text.

Resilience (PR 8) — every logical request runs under:

* **timeouts** — an explicit connect timeout and a separate read timeout
  (``connect_timeout`` / ``read_timeout``, both defaulting to ``timeout``),
  so a dead host fails fast without shortening long reads;
* **keep-alive recovery** — a request that fails on a *reused* kept-alive
  socket is resent once on a fresh connection (the server is allowed to
  close idle connections; the race is not an error), but only when the
  resend is provably safe: the request never finished sending, or it is
  idempotent.  A write that may already have reached the server fails
  with ``sent=True`` instead, preserving at-most-once semantics;
* **retries** — a seeded :class:`~repro.resilience.retry.RetryPolicy` with
  capped exponential backoff and jitter, honoring server ``Retry-After``
  hints and an overall deadline.  Only *idempotent* traffic (``GET``,
  ``/query``, ``/query/batch``) retries after the request may have been
  processed; writes retry only when the request provably never reached the
  server (connect failure) or the server refused it outright (429);
* **a circuit breaker per endpoint** — transport failures and 5xx answers
  count as failures, 4xx answers (including 429 backpressure) do not;
  an open breaker fails calls locally with
  :class:`~repro.core.exceptions.CircuitOpenError` until its reset
  timeout elapses;
* **an optional fault seam** — a :class:`~repro.resilience.faults.FaultPolicy`
  fired before each attempt, so chaos tests inject client-side latency and
  faults without touching sockets.
"""

from __future__ import annotations

import http.client
import json
import random
from typing import Sequence

from repro.core.exceptions import ServerError
from repro.core.multiset import Multiset, MultisetId
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPolicy
from repro.resilience.retry import RetryPolicy
from repro.serving.api import (
    QueryRequest,
    QueryResponse,
    multiset_to_wire,
)

#: HTTP statuses the retry loop treats as transient for idempotent calls.
_RETRYABLE_STATUSES = frozenset({429, 503, 504})


class ClientTransportError(ServerError):
    """A request that failed below HTTP: connect, send, or read.

    ``sent`` records whether the request bytes may have reached the server
    — the property the retry loop branches on for non-idempotent writes.
    """

    def __init__(self, message: str, *, sent: bool) -> None:
        super().__init__(message)
        self.sent = sent


class RemoteServerError(ServerError):
    """A structured error answer from the server.

    Attributes mirror the wire body: ``code`` (stable machine-readable
    string), ``status`` (HTTP), ``remote_type`` (server-side exception
    class name) and ``retry_after_seconds`` (backoff hint, where sent).
    """

    def __init__(self, message: str, *, code: str = "internal_error",
                 status: int = 500, remote_type: str = "",
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.status = int(status)
        self.remote_type = remote_type
        self.retry_after_seconds = retry_after_seconds

    @classmethod
    def from_body(cls, status: int, body: dict) -> "RemoteServerError":
        error = body.get("error", {}) if isinstance(body, dict) else {}
        return cls(error.get("message", f"HTTP {status}"),
                   code=error.get("code", "internal_error"),
                   status=status,
                   remote_type=error.get("type", ""),
                   retry_after_seconds=error.get("retry_after_seconds"))


class SimilarityClient:
    """Synchronous JSON client for one similarity server."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0,
                 connect_timeout: float | None = None,
                 read_timeout: float | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker_failure_threshold: int = 5,
                 breaker_reset_timeout_seconds: float = 1.0,
                 fault_policy: FaultPolicy | None = None) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.connect_timeout = float(
            connect_timeout if connect_timeout is not None else timeout)
        self.read_timeout = float(
            read_timeout if read_timeout is not None else timeout)
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_policy = fault_policy
        self._breaker_failure_threshold = breaker_failure_threshold
        self._breaker_reset_timeout = breaker_reset_timeout_seconds
        self._breakers: dict[str, CircuitBreaker] = {}
        self._rng = random.Random(self.retry_policy.seed)
        self._connection: http.client.HTTPConnection | None = None
        self.retries = 0
        self.reconnects = 0

    # -- transport -------------------------------------------------------------

    def _breaker(self, path: str) -> CircuitBreaker:
        breaker = self._breakers.get(path)
        if breaker is None:
            breaker = CircuitBreaker(
                f"{self.host}:{self.port}{path}",
                failure_threshold=self._breaker_failure_threshold,
                reset_timeout_seconds=self._breaker_reset_timeout)
            self._breakers[path] = breaker
        return breaker

    def _open_connection(self) -> http.client.HTTPConnection:
        """Connect with the connect timeout, then arm the read timeout."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout)
        try:
            connection.connect()
        except OSError as error:
            raise ClientTransportError(
                f"connect to {self.host}:{self.port} failed: {error}",
                sent=False) from error
        connection.sock.settimeout(self.read_timeout)
        self._connection = connection
        return connection

    def _exchange(self, method: str, path: str, body: bytes | None,
                  headers: dict, *, idempotent: bool = False
                  ) -> tuple[int, bytes]:
        """One request/response over the wire.

        A failure on a *reused* kept-alive socket is transparently resent
        once on a fresh connection — the server may close idle connections
        between requests, and that race is not a server failure.  The
        resend only happens when it cannot double-apply: either the request
        never finished sending, or it is idempotent.  A non-idempotent
        write that may already have reached the server (``sent``) raises
        instead, so the retry loop's at-most-once contract holds.  Every
        other transport failure raises :class:`ClientTransportError` with
        its ``sent`` flag.
        """
        reused = self._connection is not None
        for resend in (False, True):
            sent = False
            try:
                connection = self._connection or self._open_connection()
                connection.request(method, path, body=body, headers=headers)
                sent = True
                response = connection.getresponse()
                return response.status, response.read()
            except ClientTransportError:
                raise
            except (http.client.HTTPException, ConnectionError,
                    OSError) as error:
                self.close()
                if reused and not resend and (idempotent or not sent):
                    self.reconnects += 1
                    reused = False
                    continue
                raise ClientTransportError(
                    f"{method} {path} failed on the wire: {error!r}",
                    sent=sent) from error
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(self, method: str, path: str,
                 payload: dict | None = None, *,
                 idempotent: bool | None = None) -> dict:
        """One logical request: breaker, fault seam, retries, decoding."""
        if idempotent is None:
            idempotent = method == "GET" or path in ("/query", "/query/batch")
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        headers = {"Content-Type": "application/json"} if body else {}
        breaker = self._breaker(path)
        schedule = self.retry_policy.schedule(self._rng)
        while True:
            schedule.check_deadline(f"{method} {path}")
            breaker.allow()
            schedule.start_attempt()
            if self.fault_policy is not None:
                self.fault_policy.on_call(f"{method} {path}")
            try:
                status, raw = self._exchange(method, path, body, headers,
                                             idempotent=idempotent)
            except ClientTransportError as error:
                breaker.record_failure()
                if not (idempotent or not error.sent) \
                        or not schedule.attempts_left:
                    raise
                self.retries += 1
                schedule.sleep_before_retry()
                continue
            try:
                document = json.loads(raw) if raw else {}
            except ValueError:
                breaker.record_failure()
                raise ServerError(
                    f"server answered non-JSON ({status}): "
                    f"{raw[:200]!r}") from None
            if status < 400:
                breaker.record_success()
                return document
            error = RemoteServerError.from_body(status, document)
            if status >= 500:
                # 4xx answers (including 429 backpressure) are the server
                # working as intended; only 5xx trips the breaker.
                breaker.record_failure()
            retryable = (status == 429
                         or (idempotent and status in _RETRYABLE_STATUSES))
            if not retryable or not schedule.attempts_left:
                raise error
            self.retries += 1
            schedule.sleep_before_retry(
                server_hint=error.retry_after_seconds)

    def breaker_stats(self) -> dict[str, dict]:
        """Per-endpoint circuit-breaker statistics."""
        return {path: breaker.stats()
                for path, breaker in sorted(self._breakers.items())}

    def close(self) -> None:
        """Close the kept-alive connection (reopened on next use)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SimilarityClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints -------------------------------------------------------------

    def health(self) -> dict:
        """``GET /health``."""
        return self._request("GET", "/health")

    def stats(self) -> dict:
        """``GET /stats``: fleet snapshot + server queue statistics."""
        return self._request("GET", "/stats")

    def shard_stats(self) -> dict:
        """``GET /stats/shards``: the per-shard breakdown."""
        return self._request("GET", "/stats/shards")

    def query(self, request: QueryRequest) -> QueryResponse:
        """``POST /query``: one unified-API query."""
        document = self._request("POST", "/query", request.to_json_dict())
        return QueryResponse.from_json_dict(document)

    def query_batch(self,
                    requests: Sequence[QueryRequest]) -> list[QueryResponse]:
        """``POST /query/batch``: many queries in one round trip."""
        document = self._request(
            "POST", "/query/batch",
            {"requests": [request.to_json_dict() for request in requests]})
        return [QueryResponse.from_json_dict(entry)
                for entry in document["responses"]]

    def upsert(self, multiset: Multiset) -> dict:
        """``POST /upsert``: index (or replace) one multiset."""
        return self._request("POST", "/upsert",
                             {"multiset": multiset_to_wire(multiset)})

    def delete(self, multiset_id: MultisetId) -> dict:
        """``POST /delete``: drop one multiset."""
        return self._request("POST", "/delete", {"id": multiset_id})

    def persist(self, directory: str) -> dict:
        """``POST /admin/persist``: save every shard to ``directory``."""
        return self._request("POST", "/admin/persist",
                             {"directory": directory})

    def recover(self, directory: str) -> dict:
        """``POST /admin/recover``: reload the fleet from ``directory``."""
        return self._request("POST", "/admin/recover",
                             {"directory": directory})

    def replicas(self) -> dict:
        """``GET /admin/replicas``: per-replica health (replicated fleets)."""
        return self._request("GET", "/admin/replicas")

    def kill_replica(self, shard: int, replica: int, *,
                     lose_state: bool = True) -> dict:
        """``POST /admin/kill``: crash one replica (chaos entry point)."""
        return self._request("POST", "/admin/kill",
                             {"shard": shard, "replica": replica,
                              "lose_state": lose_state})

    def revive_replica(self, shard: int, replica: int, *,
                       source: str | None = None) -> dict:
        """``POST /admin/revive``: rebuild and readmit one down replica."""
        payload = {"shard": shard, "replica": replica}
        if source is not None:
            payload["source"] = source
        return self._request("POST", "/admin/revive", payload)
