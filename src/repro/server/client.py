"""A small synchronous client over :mod:`http.client`.

The client is the other half of the wire contract: it encodes with the
same :mod:`repro.serving.api` codec the server decodes with, and it turns
structured error bodies back into :class:`RemoteServerError` carrying the
machine-readable ``code`` (and ``retry_after_seconds`` for 429s), so callers
branch on codes — never on message text.
"""

from __future__ import annotations

import http.client
import json
from typing import Sequence

from repro.core.exceptions import ServerError
from repro.core.multiset import Multiset, MultisetId
from repro.serving.api import (
    QueryRequest,
    QueryResponse,
    multiset_to_wire,
)


class RemoteServerError(ServerError):
    """A structured error answer from the server.

    Attributes mirror the wire body: ``code`` (stable machine-readable
    string), ``status`` (HTTP), ``remote_type`` (server-side exception
    class name) and ``retry_after_seconds`` (backoff hint, 429 only).
    """

    def __init__(self, message: str, *, code: str = "internal_error",
                 status: int = 500, remote_type: str = "",
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.status = int(status)
        self.remote_type = remote_type
        self.retry_after_seconds = retry_after_seconds

    @classmethod
    def from_body(cls, status: int, body: dict) -> "RemoteServerError":
        error = body.get("error", {}) if isinstance(body, dict) else {}
        return cls(error.get("message", f"HTTP {status}"),
                   code=error.get("code", "internal_error"),
                   status=status,
                   remote_type=error.get("type", ""),
                   retry_after_seconds=error.get("retry_after_seconds"))


class SimilarityClient:
    """Synchronous JSON client for one similarity server."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._connection: http.client.HTTPConnection | None = None

    # -- transport -------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # One reconnect: the server may have closed a kept-alive socket.
            self.close()
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        try:
            document = json.loads(raw) if raw else {}
        except ValueError:
            raise ServerError(
                f"server answered non-JSON ({response.status}): "
                f"{raw[:200]!r}") from None
        if response.status >= 400:
            raise RemoteServerError.from_body(response.status, document)
        return document

    def close(self) -> None:
        """Close the kept-alive connection (reopened on next use)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SimilarityClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints -------------------------------------------------------------

    def health(self) -> dict:
        """``GET /health``."""
        return self._request("GET", "/health")

    def stats(self) -> dict:
        """``GET /stats``: fleet snapshot + server queue statistics."""
        return self._request("GET", "/stats")

    def shard_stats(self) -> dict:
        """``GET /stats/shards``: the per-shard breakdown."""
        return self._request("GET", "/stats/shards")

    def query(self, request: QueryRequest) -> QueryResponse:
        """``POST /query``: one unified-API query."""
        document = self._request("POST", "/query", request.to_json_dict())
        return QueryResponse.from_json_dict(document)

    def query_batch(self,
                    requests: Sequence[QueryRequest]) -> list[QueryResponse]:
        """``POST /query/batch``: many queries in one round trip."""
        document = self._request(
            "POST", "/query/batch",
            {"requests": [request.to_json_dict() for request in requests]})
        return [QueryResponse.from_json_dict(entry)
                for entry in document["responses"]]

    def upsert(self, multiset: Multiset) -> dict:
        """``POST /upsert``: index (or replace) one multiset."""
        return self._request("POST", "/upsert",
                             {"multiset": multiset_to_wire(multiset)})

    def delete(self, multiset_id: MultisetId) -> dict:
        """``POST /delete``: drop one multiset."""
        return self._request("POST", "/delete", {"id": multiset_id})

    def persist(self, directory: str) -> dict:
        """``POST /admin/persist``: save every shard to ``directory``."""
        return self._request("POST", "/admin/persist",
                             {"directory": directory})

    def recover(self, directory: str) -> dict:
        """``POST /admin/recover``: reload the fleet from ``directory``."""
        return self._request("POST", "/admin/recover",
                             {"directory": directory})
