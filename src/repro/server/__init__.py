"""Network-facing async serving tier: HTTP/JSON over the sharded fleet.

The package splits along transport-independent seams:

* :mod:`repro.server.app` — :class:`SimilarityServerApp`, the
  protocol-agnostic dispatcher (routes, bounded queues, lifecycle) plus the
  ASGI adapter :func:`asgi_app` for uvicorn-style deployment;
* :mod:`repro.server.http` — the stdlib :mod:`asyncio` HTTP/1.1 transport,
  :func:`serve_forever` and the :class:`InProcessServer` test harness;
* :mod:`repro.server.client` — :class:`SimilarityClient`, the synchronous
  wire client raising :class:`RemoteServerError` with stable error codes;
* :mod:`repro.server.queues` — :class:`CoalescingQueue`, the bounded
  admission/batching primitive behind every endpoint;
* :mod:`repro.server.errors` — the one exception-to-wire-code table;
* :mod:`repro.server.loadgen` — closed- and open-loop load generators.

Every transport decodes to the same :class:`~repro.serving.api.QueryRequest`
family the Python API executes, so HTTP answers are bit-identical to
direct :class:`~repro.serving.service.ShardedSimilarityService` calls.
"""

from repro.server.app import ServerConfig, SimilarityServerApp, asgi_app
from repro.server.client import (
    ClientTransportError,
    RemoteServerError,
    SimilarityClient,
)
from repro.server.errors import ERROR_TABLE, classify, error_body
from repro.server.http import HttpServer, InProcessServer, serve_forever
from repro.server.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.server.queues import CoalescingQueue

__all__ = [
    "ClientTransportError",
    "CoalescingQueue",
    "ERROR_TABLE",
    "HttpServer",
    "InProcessServer",
    "LoadReport",
    "RemoteServerError",
    "ServerConfig",
    "SimilarityClient",
    "SimilarityServerApp",
    "asgi_app",
    "classify",
    "error_body",
    "run_closed_loop",
    "run_open_loop",
    "serve_forever",
]
