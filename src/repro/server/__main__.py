"""``python -m repro.server`` — run the similarity server from the shell.

Serves an empty fleet by default; ``--demo N`` pre-loads a seeded synthetic
corpus so the endpoints answer something interesting out of the box, and
``--recover DIR`` starts from a directory written by ``/admin/persist``.
SIGTERM / SIGINT trigger a graceful drain before exit.
"""

from __future__ import annotations

import argparse
import asyncio
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve similarity queries over HTTP/JSON.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8042,
                        help="bind port, 0 for ephemeral (default: 8042)")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of serving shards (default: 4)")
    parser.add_argument("--measure", default="ruzicka",
                        help="similarity measure name (default: ruzicka)")
    parser.add_argument("--demo", type=int, default=0, metavar="N",
                        help="pre-load N seeded synthetic multisets")
    parser.add_argument("--recover", default=None, metavar="DIR",
                        help="recover the fleet from a persisted directory")
    parser.add_argument("--persist-on-shutdown", default=None, metavar="DIR",
                        help="persist every shard to DIR during drain")
    parser.add_argument("--replication", type=int, default=1, metavar="N",
                        help="replicas per shard; >= 2 serves a replicated "
                             "fault-tolerant fleet (default: 1)")
    parser.add_argument("--chaos-latency", type=float, default=0.0,
                        metavar="SECONDS",
                        help="inject this much seeded latency into every "
                             "replica call (replicated fleets; default: 0)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request deadline; late answers fail with "
                             "504 (default: none)")
    parser.add_argument("--health-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="period of the replica health-check loop "
                             "(default: off)")
    return parser


def build_app(args: argparse.Namespace):
    """The configured app for parsed CLI arguments (import-light)."""
    from repro.serving.service import ShardedSimilarityService
    from repro.server.app import ServerConfig, SimilarityServerApp

    replicated = args.replication > 1
    if replicated:
        from repro.resilience import FaultPolicy, ReplicatedSimilarityService

        factory = None
        if args.chaos_latency > 0:
            def factory(shard, replica):
                return FaultPolicy(seed=shard * 97 + replica,
                                   latency_seconds=args.chaos_latency)

        if args.recover:
            service = ReplicatedSimilarityService.recover(
                args.recover, replication_factor=args.replication)
        else:
            service = ReplicatedSimilarityService(
                args.measure, args.shards,
                replication_factor=args.replication,
                fault_policy_factory=factory)
    elif args.recover:
        service = ShardedSimilarityService.recover(args.recover)
    else:
        service = ShardedSimilarityService(args.measure, args.shards)
    if args.demo > 0:
        from repro.datasets.ip_cookie import (
            generate_ip_cookie_dataset,
            small_dataset_config,
        )

        dataset = generate_ip_cookie_dataset(small_dataset_config())
        service.bulk_load(dataset.multisets[:args.demo])
    config = ServerConfig(
        persist_on_shutdown=args.persist_on_shutdown,
        request_timeout_seconds=args.request_timeout,
        health_check_interval_seconds=(args.health_interval
                                       if replicated else None))
    return SimilarityServerApp(service, config=config)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    app = build_app(args)
    from repro.server.http import serve_forever

    def announce(host: str, port: int) -> None:
        print(f"repro.server listening on http://{host}:{port} "
              f"(measure={app.service.measure.name}, "
              f"shards={app.service.num_shards}, "
              f"replication={getattr(app.service, 'replication_factor', 1)}, "
              f"indexed={len(app.service)})", flush=True)

    try:
        asyncio.run(serve_forever(app, host=args.host, port=args.port,
                                  ready=announce))
    except KeyboardInterrupt:
        pass
    print("repro.server drained and stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
