"""Stdlib HTTP/1.1 transport for :class:`~repro.server.app.SimilarityServerApp`.

A deliberately small server on :func:`asyncio.start_server` — no
third-party web framework — speaking enough HTTP/1.1 for JSON request /
response bodies with keep-alive.  Production deployments can instead mount
:func:`repro.server.app.asgi_app` under uvicorn; both transports call the
same :meth:`~repro.server.app.SimilarityServerApp.handle`, so answers are
identical by construction.

:class:`InProcessServer` runs the event loop on a daemon thread so
synchronous tests and benchmarks can drive a real TCP server with plain
:mod:`http.client` connections, then drain it deterministically.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Awaitable, Callable

from repro.core.exceptions import ServerError
from repro.server.app import SimilarityServerApp
from repro.server.errors import BAD_REQUEST, simple_error

#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Largest accepted request head (request line + headers), in bytes.
MAX_HEAD_BYTES = 64 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout", 507: "Insufficient Storage"}


def _render_response(status: int, document: dict, headers: dict,
                     *, keep_alive: bool) -> bytes:
    body = json.dumps(document).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, payload, keep_alive)``.

    Returns ``None`` on a cleanly closed connection, raises
    :class:`ServerError` on malformed input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ServerError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ServerError("request head exceeds the size limit") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ServerError("request head exceeds the size limit")
    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServerError(f"malformed request line: {request_line!r}")
    method, target, version = parts
    headers = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    if not length.isdigit():
        raise ServerError(f"invalid Content-Length: {length!r}")
    length = int(length)
    if length > MAX_BODY_BYTES:
        raise ServerError("request body exceeds the size limit")
    body = await reader.readexactly(length) if length else b""
    payload = None
    if body:
        try:
            payload = json.loads(body)
        except ValueError:
            raise ServerError("request body is not valid JSON") from None
    connection = headers.get("connection", "").lower()
    keep_alive = (version != "HTTP/1.0" or connection == "keep-alive")
    if connection == "close":
        keep_alive = False
    path = target.split("?", 1)[0]
    return method, path, payload, keep_alive


class HttpServer:
    """The asyncio TCP front end around one app."""

    def __init__(self, app: SimilarityServerApp, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        """Start the app and listen; returns the bound ``(host, port)``."""
        await self.app.startup()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_HEAD_BYTES)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def stop(self, *, drain: bool = True) -> None:
        """Stop listening, close connections, drain queues, shut the app."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.app.shutdown(drain=drain)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ServerError as error:
                    status, body = simple_error(BAD_REQUEST, str(error))
                    writer.write(_render_response(status, body, {},
                                                  keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, payload, keep_alive = request
                status, body, headers = await self.app.handle(
                    method, path, payload)
                writer.write(_render_response(status, body, headers,
                                              keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass


async def serve_forever(app: SimilarityServerApp, *, host: str = "127.0.0.1",
                        port: int = 8042,
                        ready: Callable[[str, int], None] | None = None,
                        stop_signal: asyncio.Event | None = None) -> None:
    """Run the server until ``stop_signal`` (or SIGTERM/SIGINT), then drain.

    The CLI entry point (``python -m repro.server``) builds on this; tests
    pass an explicit ``stop_signal`` event instead of signals.
    """
    server = HttpServer(app, host=host, port=port)
    bound_host, bound_port = await server.start()
    if ready is not None:
        ready(bound_host, bound_port)
    stop = stop_signal or asyncio.Event()
    if stop_signal is None:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
    try:
        await stop.wait()
    finally:
        await server.stop(drain=True)


class InProcessServer:
    """A live server on a daemon thread, for synchronous tests and benches.

    Usage::

        with InProcessServer(app) as server:
            client = SimilarityClient(server.host, server.port)
            ...

    Exiting the context drains the queues and joins the loop thread, so a
    passing test means graceful shutdown worked too.
    """

    def __init__(self, app: SimilarityServerApp, *, host: str = "127.0.0.1",
                 port: int = 0, drain_on_close: bool = True) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.drain_on_close = drain_on_close
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: HttpServer | None = None

    def __enter__(self) -> "InProcessServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> "InProcessServer":
        if self._thread is not None:
            raise ServerError("InProcessServer is already running")
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._server = HttpServer(self.app, host=self.host,
                                      port=self.port)
            try:
                self.host, self.port = loop.run_until_complete(
                    self._server.start())
            except BaseException as error:  # noqa: BLE001 — report to caller
                failure.append(error)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="repro-http",
                                        daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self

    def run_coroutine(self, coroutine: Awaitable) -> object:
        """Run a coroutine on the server's loop; returns its result."""
        if self._loop is None:
            raise ServerError("InProcessServer is not running")
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop).result(timeout=60)

    def close(self) -> None:
        """Drain, stop the server, and join the loop thread."""
        if self._thread is None:
            return
        self.run_coroutine(self._server.stop(drain=self.drain_on_close))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        self._loop = None
        self._server = None
