"""The protocol-agnostic serving application behind every transport.

:class:`SimilarityServerApp` maps ``(method, path, JSON payload)`` to JSON
responses over a :class:`~repro.serving.service.ShardedSimilarityService`.
Both transports — the stdlib :mod:`asyncio` HTTP/1.1 loop
(:mod:`repro.server.http`) and the ASGI adapter (:func:`asgi_app`, runnable
under uvicorn when installed) — delegate to the same :meth:`~SimilarityServerApp.handle`,
so behaviour cannot drift between them.

Endpoints
---------

=======  ==================  ====================================================
Method   Path                Effect
=======  ==================  ====================================================
GET      /health             liveness + fleet identity
GET      /stats              fleet snapshot + server queue statistics
GET      /stats/shards       per-shard statistics breakdown
POST     /query              one unified-API query (threshold or top-k)
POST     /query/batch        many queries, coalesced into the batch path
POST     /upsert             index (or replace) one multiset
POST     /delete             drop one multiset
POST     /admin/persist      save every shard's index to a directory
POST     /admin/recover      reload the fleet from a persisted directory
GET      /admin/replicas     per-replica health (replicated fleets only)
POST     /admin/kill         crash one replica (replicated fleets only)
POST     /admin/revive       recover one replica (replicated fleets only)
=======  ==================  ====================================================

Writes are routed through bounded queues: one queue per shard when the app
owns the service directly, or a single mutation queue feeding the PR-5
:class:`~repro.streaming.view.JoinView` (upserts/deletes become
:class:`~repro.streaming.changes.ChangeBatch` items and reach the service
through its serving subscription, keeping the materialized pair set exact).
Queries flow through one coalescing queue into
:meth:`ShardedSimilarityService.batch
<repro.serving.service.ShardedSimilarityService.batch>` so concurrent
duplicate traffic pays a single index scan.  A full queue answers ``429``
with a ``Retry-After`` hint — admission control, not unbounded latency.

Graceful degradation (PR 8): with ``request_timeout_seconds`` set, a
request that cannot be answered inside its deadline fails *crisply* with
``504 deadline_exceeded`` instead of hanging.  With ``brownout_queue_depth``
set, a query admitted while the queue is at least that deep is *degraded*
rather than rejected — top-k requests are truncated to
``brownout_topk_cap``, threshold requests are raised to
``brownout_threshold_floor`` — and the response carries ``"degraded":
true`` so clients know the answer is a (still exact) truncation of the full
one.  With ``health_check_interval_seconds`` set over a
:class:`~repro.resilience.service.ReplicatedSimilarityService`, a
background loop ejects broken replicas and readmits recovered ones.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.exceptions import (
    DeadlineExceededError,
    ReproError,
    ServerError,
    ServingError,
)
from repro.serving.api import (
    THRESHOLD_KIND,
    TOPK_KIND,
    QueryOptions,
    QueryRequest,
    multiset_from_wire,
    requests_from_batch_payload,
)
from repro.serving.service import ShardedSimilarityService
from repro.server.errors import (
    BAD_REQUEST,
    METHOD_NOT_ALLOWED,
    NOT_FOUND,
    error_body,
    simple_error,
)
from repro.server.queues import CoalescingQueue

_UPSERT = "upsert"
_DELETE = "delete"

logger = logging.getLogger(__name__)


def _log_orphan_failure(task: asyncio.Task) -> None:
    """Consume a deadline-orphaned task's outcome; log a late failure.

    Without this, a shielded task that fails after its caller timed out
    leaves asyncio's "Task exception was never retrieved" as the only
    trace of the failure.
    """
    if task.cancelled():
        return
    error = task.exception()
    if error is not None:
        logger.warning("deadline-orphaned request failed late: %r", error)


@dataclass(frozen=True)
class ServerConfig:
    """Tuning of the serving tier's queues and admission control."""

    #: Bounded depth of the query admission queue.
    query_queue_capacity: int = 256
    #: Most queries coalesced into one ``service.batch`` execution.
    query_max_batch: int = 32
    #: Bounded depth of each write queue (per shard, or of the view queue).
    write_queue_capacity: int = 256
    #: Most writes applied per drained batch.
    write_max_batch: int = 64
    #: Batches allowed to execute concurrently across all queues.
    max_in_flight: int = 4
    #: Threads of the execution pool (keeps the event loop responsive).
    executor_threads: int = 4
    #: Backoff hint sent with 429 responses, in seconds.
    retry_after_seconds: float = 1.0
    #: Directory to persist every shard into during graceful shutdown.
    persist_on_shutdown: str | None = None
    #: Per-request execution deadline; a queued request not answered in
    #: time fails with 504 ``deadline_exceeded`` (``None``: no timeout).
    request_timeout_seconds: float | None = None
    #: Query-queue depth at which the server *browns out*: admitted
    #: queries degrade (see ``brownout_topk_cap`` /
    #: ``brownout_threshold_floor``) instead of being rejected
    #: (``None``: never degrade).
    brownout_queue_depth: int | None = None
    #: Under brownout, top-k requests are truncated to at most this k.
    brownout_topk_cap: int = 3
    #: Under brownout, threshold requests below this floor are raised to
    #: it (``None``: thresholds are never touched).
    brownout_threshold_floor: float | None = None
    #: Period of the replica health-check loop; requires a service with
    #: ``health_check`` (``None``: no loop).
    health_check_interval_seconds: float | None = None

    def __post_init__(self) -> None:
        for name in ("query_queue_capacity", "query_max_batch",
                     "write_queue_capacity", "write_max_batch",
                     "max_in_flight", "executor_threads"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ServerError(f"{name} must be an int >= 1, got {value!r}")
        if self.retry_after_seconds <= 0:
            raise ServerError(
                f"retry_after_seconds must be positive, "
                f"got {self.retry_after_seconds!r}")
        for name in ("request_timeout_seconds",
                     "health_check_interval_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ServerError(
                    f"{name} must be positive when set, got {value!r}")
        if self.brownout_queue_depth is not None \
                and self.brownout_queue_depth < 1:
            raise ServerError(
                f"brownout_queue_depth must be >= 1 when set, "
                f"got {self.brownout_queue_depth!r}")
        if self.brownout_topk_cap < 1:
            raise ServerError(
                f"brownout_topk_cap must be >= 1, "
                f"got {self.brownout_topk_cap!r}")


class SimilarityServerApp:
    """The serving application: routes, queues, and lifecycle.

    Parameters
    ----------
    service:
        The sharded fleet to serve.
    view:
        Optional :class:`~repro.streaming.view.JoinView`.  When given, the
        app attaches the service to the view (loading it when empty) and
        routes every write through the view's exact incremental
        maintenance; the service then always serves the view's pair-set
        state.  Without one, writes apply directly to the owning shard.
    config:
        Queue and admission tuning; defaults are test-friendly.
    """

    def __init__(self, service: ShardedSimilarityService, *,
                 view=None, config: ServerConfig | None = None) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.view = view
        self.lock = threading.RLock()
        self._subscription = None
        if view is not None:
            from repro.streaming.subscribers import attach_serving

            # warm=False: re-warming every member per write batch is the
            # bootstrap-refresh pattern, not a serving-tier default.
            self._subscription = attach_serving(view, service, warm=False)
        self._executor: ThreadPoolExecutor | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._query_queue: CoalescingQueue | None = None
        self._write_queues: list[CoalescingQueue] = []
        self._health_task: asyncio.Task | None = None
        self._started = False
        self._closing = False
        self.requests_served = 0
        self.degraded_served = 0
        self.deadline_failures = 0
        self.last_health_report: dict | None = None

    # -- lifecycle -------------------------------------------------------------

    async def startup(self) -> None:
        """Create the executor, queues and workers on the running loop."""
        if self._started:
            return
        config = self.config
        self._executor = ThreadPoolExecutor(
            max_workers=config.executor_threads,
            thread_name_prefix="repro-server")
        self._semaphore = asyncio.Semaphore(config.max_in_flight)
        self._query_queue = CoalescingQueue(
            "queries", self._execute_queries,
            capacity=config.query_queue_capacity,
            max_batch=config.query_max_batch,
            retry_after_seconds=config.retry_after_seconds)
        self._query_queue.start(executor=self._executor, lock=self.lock,
                                semaphore=self._semaphore)
        self._write_queues = self._build_write_queues()
        if config.health_check_interval_seconds is not None \
                and hasattr(self.service, "health_check"):
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop(config.health_check_interval_seconds))
        self._started = True
        self._closing = False

    async def _health_loop(self, interval: float) -> None:
        """Periodically eject broken replicas and readmit recovered ones."""
        while True:
            await asyncio.sleep(interval)
            try:
                self.last_health_report = await self._locked_in_executor(
                    self.service.health_check)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 — the loop must survive
                self.last_health_report = {"error": str(error)}

    def _build_write_queues(self) -> list[CoalescingQueue]:
        config = self.config
        if self.view is not None:
            queues = [CoalescingQueue(
                "mutations", self._execute_view_writes,
                capacity=config.write_queue_capacity,
                max_batch=config.write_max_batch,
                retry_after_seconds=config.retry_after_seconds)]
        else:
            queues = [CoalescingQueue(
                f"writes-shard{shard}", self._execute_direct_writes,
                capacity=config.write_queue_capacity,
                max_batch=config.write_max_batch,
                retry_after_seconds=config.retry_after_seconds)
                for shard in range(self.service.num_shards)]
        for queue in queues:
            queue.start(executor=self._executor, lock=self.lock,
                        semaphore=self._semaphore)
        return queues

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop admissions, drain (or reject) queues, optionally persist."""
        if not self._started:
            return
        self._closing = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._query_queue is not None:
            await self._query_queue.close(drain=drain)
        for queue in self._write_queues:
            await queue.close(drain=drain)
        if self.config.persist_on_shutdown is not None:
            with self.lock:
                self.service.persist(self.config.persist_on_shutdown)
        if self._subscription is not None:
            self._subscription.detach()
            self._subscription = None
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self._query_queue = None
        self._write_queues = []
        self._started = False

    # -- queue executors (run on the thread pool, under the service lock) ------

    def _execute_queries(self, requests: Sequence[QueryRequest]):
        return self.service.batch(list(requests))

    def _execute_direct_writes(self, writes: Sequence[tuple]):
        acks = []
        for kind, payload in writes:
            if kind == _UPSERT:
                replaced = payload.id in self.service
                self.service.add(payload, replace=replaced)
                acks.append({"indexed": payload.id, "replaced": replaced})
            else:
                self.service.remove(payload)
                acks.append({"deleted": payload})
        return acks

    def _execute_view_writes(self, writes: Sequence[tuple]):
        from repro.streaming.changes import Change, ChangeBatch

        changes = []
        for kind, payload in writes:
            if kind == _UPSERT:
                changes.append(Change.upsert(payload))
            else:
                changes.append(Change.delete(payload))
        deltas = self.view.apply(ChangeBatch(changes))
        acks = []
        for kind, payload in writes:
            if kind == _UPSERT:
                acks.append({"indexed": payload.id,
                             "pair_deltas": len(deltas)})
            else:
                acks.append({"deleted": payload, "pair_deltas": len(deltas)})
        return acks

    def _write_queue_for(self, multiset_id) -> CoalescingQueue:
        if self.view is not None:
            return self._write_queues[0]
        return self._write_queues[self.service.shard_for(multiset_id)]

    # -- dispatch --------------------------------------------------------------

    async def handle(self, method: str, path: str,
                     payload: object | None) -> tuple[int, dict, dict]:
        """Serve one request; returns ``(status, body, extra_headers)``.

        ``payload`` is the decoded JSON body (``None`` for body-less
        requests).  Every failure returns the structured error body of
        :mod:`repro.server.errors`; nothing raises across this boundary
        except transport-level bugs.
        """
        self.requests_served += 1
        try:
            return await self._route(method, path, payload)
        except ReproError as error:
            status, body = error_body(error)
            headers = {}
            # Every backpressure-shaped failure (429 queue_full, 503
            # replica_unavailable / circuit_open, 504 deadline_exceeded)
            # carries its backoff hint as a Retry-After header too.
            retry_after = body["error"].get("retry_after_seconds")
            if status == 429 and retry_after is None:
                retry_after = 1.0
            if retry_after is not None:
                headers["Retry-After"] = f"{max(retry_after, 0.001):.3f}"
            return status, body, headers
        except Exception as error:  # noqa: BLE001 — the wire must answer
            status, body = error_body(error)
            return status, body, {}

    async def _route(self, method: str, path: str,
                     payload: object | None) -> tuple[int, dict, dict]:
        routes = {
            "/health": self._handle_health,
            "/stats": self._handle_stats,
            "/stats/shards": self._handle_shard_stats,
            "/query": self._handle_query,
            "/query/batch": self._handle_query_batch,
            "/upsert": self._handle_upsert,
            "/delete": self._handle_delete,
            "/admin/persist": self._handle_persist,
            "/admin/recover": self._handle_recover,
            "/admin/replicas": self._handle_replicas,
            "/admin/kill": self._handle_kill,
            "/admin/revive": self._handle_revive,
        }
        handler = routes.get(path.rstrip("/") or "/")
        if handler is None:
            status, body = simple_error(
                NOT_FOUND, f"no such endpoint: {path!r}")
            return status, body, {}
        expected = "GET" if path.rstrip("/") in ("/health", "/stats",
                                                 "/stats/shards",
                                                 "/admin/replicas") else "POST"
        if method != expected:
            status, body = simple_error(
                METHOD_NOT_ALLOWED,
                f"{path} expects {expected}, got {method}")
            return status, body, {"Allow": expected}
        if expected == "POST" and not isinstance(payload, dict):
            status, body = simple_error(
                BAD_REQUEST,
                f"{path} needs a JSON object body, got "
                f"{type(payload).__name__}")
            return status, body, {}
        return await handler(payload)

    def _require_started(self) -> None:
        if not self._started or self._closing:
            raise ServerError("the server is not accepting requests "
                              "(not started or shutting down)")

    async def _with_deadline(self, awaitable, what: str):
        """Await under the configured per-request deadline, if any.

        On expiry the admitted work is *not* cancelled (the coalesced batch
        may be answering other callers); only this caller's wait ends, with
        a ``504 deadline_exceeded`` carrying the standard backoff hint.
        The orphaned task's eventual outcome is still consumed (and a late
        failure logged) so it never dies unobserved.
        """
        timeout = self.config.request_timeout_seconds
        if timeout is None:
            return await awaitable
        task = asyncio.ensure_future(awaitable)
        try:
            return await asyncio.wait_for(asyncio.shield(task), timeout)
        except asyncio.TimeoutError:
            self.deadline_failures += 1
            task.add_done_callback(_log_orphan_failure)
            raise DeadlineExceededError(
                f"{what} was not answered within {timeout}s",
                deadline_seconds=timeout,
                retry_after_seconds=self.config.retry_after_seconds) from None

    def _browned_out(self) -> bool:
        """Whether the query queue is deep enough to trigger degradation."""
        depth = self.config.brownout_queue_depth
        return (depth is not None and self._query_queue is not None
                and self._query_queue.depth >= depth)

    def _maybe_degrade(self, request: QueryRequest) -> tuple[QueryRequest, bool]:
        """Under brownout, shrink a request so its answer costs less.

        A degraded answer is always a *truncation* of the full answer —
        top-k capped to ``brownout_topk_cap``, thresholds raised to
        ``brownout_threshold_floor`` — never an approximation, so exactness
        guarantees hold; the response just says ``degraded: true``.
        """
        if not self._browned_out():
            return request, False
        options = request.options
        if options.kind == TOPK_KIND \
                and options.k > self.config.brownout_topk_cap:
            degraded = QueryOptions.for_topk(self.config.brownout_topk_cap)
        elif options.kind == THRESHOLD_KIND \
                and self.config.brownout_threshold_floor is not None \
                and options.threshold < self.config.brownout_threshold_floor:
            degraded = QueryOptions.for_threshold(
                self.config.brownout_threshold_floor)
        else:
            return request, False
        self.degraded_served += 1
        return replace(request, options=degraded), True

    @staticmethod
    def _parse(decode, *arguments):
        """Run a wire decoder, mapping its failures to 400 (``server_error``).

        The codecs raise :class:`ServingError` (mapped to 409, the status of
        execution-time state conflicts); a payload that cannot even be
        decoded is a *bad request*, so the parse boundary re-raises as
        :class:`ServerError`.
        """
        try:
            return decode(*arguments)
        except ServingError as error:
            raise ServerError(str(error)) from None

    async def _locked_in_executor(self, operation):
        """Run ``operation`` on the thread pool, under the service lock.

        The event loop must never block on :attr:`lock` directly — a batch
        executing on the pool holds it, and a frozen loop can neither
        answer ``/health`` nor shed load with 429s.
        """
        loop = asyncio.get_running_loop()

        def locked():
            with self.lock:
                return operation()

        return await loop.run_in_executor(self._executor, locked)

    def _read_stats(self, reader):
        """Read fleet statistics without taking the service lock.

        Observability must stay answerable while a batch holds the lock
        (that is precisely when operators look at ``/stats``), so reads are
        lock-free; a concurrent write can make a dict iteration throw
        ``RuntimeError``, in which case the read simply retries.
        """
        for _attempt in range(8):
            try:
                return reader()
            except RuntimeError:
                continue
        raise ServerError(
            "fleet statistics are churning faster than they can be read; "
            "retry")

    # -- endpoint handlers -----------------------------------------------------

    async def _handle_health(self, payload) -> tuple[int, dict, dict]:
        body = self._read_stats(lambda: {
            "status": "ok",
            "measure": self.service.measure.name,
            "num_shards": self.service.num_shards,
            "replication_factor": getattr(self.service,
                                          "replication_factor", 1),
            "indexed_multisets": len(self.service),
            "mode": "view" if self.view is not None else "direct"})
        return 200, body, {}

    async def _handle_stats(self, payload) -> tuple[int, dict, dict]:
        snapshot = self._read_stats(self.service.snapshot)
        snapshot["server"] = self.server_stats()
        return 200, snapshot, {}

    async def _handle_shard_stats(self, payload) -> tuple[int, dict, dict]:
        per_node = self._read_stats(self.service.per_node_stats)
        return 200, {"per_node": per_node}, {}

    async def _handle_query(self, payload: dict) -> tuple[int, dict, dict]:
        self._require_started()
        request = self._parse(QueryRequest.from_json_dict, payload)
        request, degraded = self._maybe_degrade(request)
        response = await self._with_deadline(
            self._query_queue.submit(request), "query")
        body = response.to_json_dict()
        if degraded:
            body["degraded"] = True
        return 200, body, {}

    async def _handle_query_batch(self, payload: dict) -> tuple[int, dict, dict]:
        self._require_started()
        requests = self._parse(requests_from_batch_payload, payload)
        degraded_any = False
        futures = []
        # Submitted individually: the coalescing worker re-batches them
        # (together with any concurrent traffic) into single executions,
        # and admission control applies per request.
        for request in requests:
            request, degraded = self._maybe_degrade(request)
            degraded_any = degraded_any or degraded
            futures.append(self._query_queue.submit(request))
        responses = await self._with_deadline(
            asyncio.gather(*futures), "query batch")
        body = {"responses": [response.to_json_dict()
                              for response in responses]}
        if degraded_any:
            body["degraded"] = True
        return 200, body, {}

    async def _handle_upsert(self, payload: dict) -> tuple[int, dict, dict]:
        self._require_started()
        if "multiset" not in payload:
            raise ServerError("upsert needs a 'multiset' field")
        multiset = self._parse(multiset_from_wire, payload["multiset"])
        ack = await self._with_deadline(
            self._write_queue_for(multiset.id).submit((_UPSERT, multiset)),
            "upsert")
        return 200, ack, {}

    async def _handle_delete(self, payload: dict) -> tuple[int, dict, dict]:
        self._require_started()
        if "id" not in payload:
            raise ServerError("delete needs an 'id' field")
        ack = await self._with_deadline(
            self._write_queue_for(payload["id"]).submit(
                (_DELETE, payload["id"])),
            "delete")
        return 200, ack, {}

    async def _handle_persist(self, payload: dict) -> tuple[int, dict, dict]:
        self._require_started()
        directory = payload.get("directory")
        if not isinstance(directory, str) or not directory:
            raise ServerError("admin/persist needs a 'directory' string")
        paths = await self._locked_in_executor(
            lambda: self.service.persist(directory))
        return 200, {"persisted": paths,
                     "num_shards": self.service.num_shards}, {}

    async def _handle_recover(self, payload: dict) -> tuple[int, dict, dict]:
        if self.view is not None:
            raise ServerError(
                "admin/recover is not available when writes flow through a "
                "JoinView; recover the view (JoinView.recover) and restart "
                "the server on it instead")
        self._require_started()
        directory = payload.get("directory")
        if not isinstance(directory, str) or not directory:
            raise ServerError("admin/recover needs a 'directory' string")
        # Quiesce the write path: drain the per-shard queues, swap the
        # fleet, then rebuild queues for the recovered shard count.
        for queue in self._write_queues:
            await queue.close(drain=True)

        def swap():
            with self.lock:
                # type(...) keeps the fleet flavour: a replicated service
                # recovers replicated (every replica reloading the same
                # per-shard file), an unreplicated one recovers as before.
                # The running fleet's tuning survives the swap too — the
                # recovered service must not silently reset to defaults.
                kwargs = {"cache_capacity": self.service.cache_capacity}
                if hasattr(self.service, "replication_factor"):
                    kwargs["replication_factor"] = \
                        self.service.replication_factor
                    kwargs["read_strategy"] = self.service.read_strategy
                self.service = type(self.service).recover(directory, **kwargs)
                return {"recovered": True,
                        "num_shards": self.service.num_shards,
                        "indexed_multisets": len(self.service)}

        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(self._executor, swap)
        self._write_queues = self._build_write_queues()
        return 200, body, {}

    # -- replica administration (replicated fleets only) -----------------------

    def _require_replicated(self) -> None:
        if not hasattr(self.service, "kill_replica"):
            raise ServerError(
                "this endpoint needs a replicated fleet; start the server "
                "with --replication >= 2 (ReplicatedSimilarityService)")

    @staticmethod
    def _replica_address(payload: dict) -> tuple[int, int]:
        shard = payload.get("shard")
        replica = payload.get("replica")
        for name, value in (("shard", shard), ("replica", replica)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise ServerError(
                    f"admin replica endpoints need an int {name!r} >= 0, "
                    f"got {value!r}")
        return shard, replica

    async def _handle_replicas(self, payload) -> tuple[int, dict, dict]:
        self._require_replicated()
        body = self._read_stats(lambda: {
            "replication_factor": self.service.replication_factor,
            "replicas": self.service.replica_health(),
            "last_health_report": self.last_health_report,
        })
        return 200, body, {}

    async def _handle_kill(self, payload: dict) -> tuple[int, dict, dict]:
        self._require_started()
        self._require_replicated()
        shard, replica = self._replica_address(payload)
        lose_state = bool(payload.get("lose_state", True))
        await self._locked_in_executor(
            lambda: self.service.kill_replica(shard, replica,
                                              lose_state=lose_state))
        return 200, {"killed": {"shard": shard, "replica": replica,
                                "lose_state": lose_state}}, {}

    async def _handle_revive(self, payload: dict) -> tuple[int, dict, dict]:
        self._require_started()
        self._require_replicated()
        shard, replica = self._replica_address(payload)
        source = payload.get("source")
        if source is not None and not isinstance(source, str):
            raise ServerError(
                f"admin/revive 'source' must be a directory string when "
                f"given, got {source!r}")
        await self._locked_in_executor(
            lambda: self.service.recover_replica(shard, replica,
                                                 source=source))
        return 200, {"revived": {"shard": shard, "replica": replica,
                                 "source": source}}, {}

    # -- observability ---------------------------------------------------------

    def server_stats(self) -> dict:
        """Queue depths, admission counters and in-flight configuration."""
        queues = {}
        if self._query_queue is not None:
            queues[self._query_queue.name] = self._query_queue.stats()
        for queue in self._write_queues:
            queues[queue.name] = queue.stats()
        return {
            "mode": "view" if self.view is not None else "direct",
            "accepting": self._started and not self._closing,
            "requests_served": self.requests_served,
            "degraded_served": self.degraded_served,
            "deadline_failures": self.deadline_failures,
            "browned_out": self._browned_out(),
            "max_in_flight": self.config.max_in_flight,
            "queues": queues,
        }


def asgi_app(app: SimilarityServerApp):
    """Wrap the app as an ASGI 3 callable (runnable under uvicorn).

    Only the ``http`` scope type is served; ``lifespan`` events call the
    app's :meth:`~SimilarityServerApp.startup` and
    :meth:`~SimilarityServerApp.shutdown`, so
    ``uvicorn repro.server:make_asgi_demo`` (or any factory producing this
    wrapper) gets queues and graceful drain for free.
    """
    import json

    async def application(scope, receive, send):
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await app.startup()
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await app.shutdown(drain=True)
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        elif scope["type"] == "http":
            body = b""
            while True:
                message = await receive()
                if message["type"] == "http.request":
                    body += message.get("body", b"")
                    if not message.get("more_body"):
                        break
                elif message["type"] == "http.disconnect":
                    return
            payload = None
            if body:
                try:
                    payload = json.loads(body)
                except ValueError:
                    status, error = simple_error(
                        BAD_REQUEST, "request body is not valid JSON")
                    await _send_json(send, status, error, {})
                    return
            status, response, headers = await app.handle(
                scope["method"], scope["path"], payload)
            await _send_json(send, status, response, headers)
        else:
            raise ServerError(
                f"unsupported ASGI scope type {scope['type']!r}")

    async def _send_json(send, status, document, headers):
        rendered = json.dumps(document).encode("utf-8")
        header_pairs = [(b"content-type", b"application/json"),
                        (b"content-length", str(len(rendered)).encode())]
        header_pairs.extend((name.lower().encode(), str(value).encode())
                            for name, value in headers.items())
        await send({"type": "http.response.start", "status": status,
                    "headers": header_pairs})
        await send({"type": "http.response.body", "body": rendered})

    return application
