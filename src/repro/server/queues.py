"""Bounded admission queues with batching workers for the serving tier.

Each :class:`CoalescingQueue` is the server's unit of backpressure: a
bounded FIFO in front of one draining worker.  Admission is non-blocking —
a full queue raises :class:`~repro.core.exceptions.QueueFullError`
immediately, which the HTTP layer surfaces as ``429`` with a
``Retry-After`` hint — so overload sheds load at the door instead of
letting latency grow without bound.

The worker drains greedily: it waits for one item, then takes everything
else already queued (up to ``max_batch``) and executes the whole batch
through a single callable.  For queries that callable is
``service.batch(requests)`` — the request-coalescing path that computes
each distinct (signature, options) request once per batch — and for writes
it applies the queued mutations in admission order.

Execution runs on a shared :class:`~concurrent.futures.ThreadPoolExecutor`
so the event loop stays responsive (accepting, parsing and *rejecting*
requests) while a batch computes.  The serving structures are not
thread-safe, so every executed batch holds the server's one service lock;
the executor buys responsiveness and overlap between parsing and
computation, not parallel index scans.  A global in-flight semaphore
(``max_in_flight``) bounds how many batches may execute concurrently
across all queues.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Sequence

from repro.core.exceptions import QueueFullError, ServerError


class CoalescingQueue:
    """A bounded queue draining through a batch-executing worker."""

    def __init__(self, name: str,
                 execute_batch: Callable[[Sequence[object]], Sequence[object]],
                 *, capacity: int = 256, max_batch: int = 32,
                 retry_after_seconds: float = 1.0) -> None:
        if capacity < 1:
            raise ServerError(
                f"queue capacity must be >= 1, got {capacity}")
        if max_batch < 1:
            raise ServerError(
                f"max_batch must be >= 1, got {max_batch}")
        self.name = name
        self.capacity = int(capacity)
        self.max_batch = int(max_batch)
        self.retry_after_seconds = float(retry_after_seconds)
        self._execute_batch = execute_batch
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._executor = None
        self._lock = None
        self._closed = False
        self.admitted = 0
        self.rejected = 0
        self.executed_batches = 0
        self.executed_items = 0
        self.max_batch_observed = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self, *, executor, lock,
              semaphore: asyncio.Semaphore | None = None) -> None:
        """Create the queue and its worker on the running event loop."""
        self._queue = asyncio.Queue(maxsize=self.capacity)
        self._semaphore = semaphore
        self._executor = executor
        self._lock = lock
        self._closed = False
        self._worker = asyncio.get_running_loop().create_task(
            self._drain(), name=f"queue-{self.name}")

    async def close(self, *, drain: bool = True) -> None:
        """Stop admissions; drain (or reject) what is queued; join the worker."""
        if self._queue is None:
            return
        self._closed = True
        if not drain:
            while not self._queue.empty():
                _, future = self._queue.get_nowait()
                if not future.done():
                    future.set_exception(ServerError(
                        f"server shut down before the {self.name} queue "
                        "executed this request"))
                self._queue.task_done()
        await self._queue.join()
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.cancel()
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._queue = None

    # -- admission -------------------------------------------------------------

    def submit(self, item: object) -> asyncio.Future:
        """Enqueue ``item``; returns the future of its result.

        Raises :class:`QueueFullError` without blocking when the queue is
        at capacity or the server is shutting down.
        """
        if self._queue is None or self._closed:
            raise QueueFullError(
                f"the {self.name} queue is not accepting requests "
                "(server shutting down)",
                retry_after_seconds=self.retry_after_seconds,
                queue=self.name)
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((item, future))
        except asyncio.QueueFull:
            self.rejected += 1
            raise QueueFullError(
                f"the {self.name} queue is full "
                f"({self.capacity} pending requests)",
                retry_after_seconds=self.retry_after_seconds,
                queue=self.name) from None
        self.admitted += 1
        return future

    # -- worker ----------------------------------------------------------------

    async def _drain(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[tuple[object, asyncio.Future]]) -> None:
        items = [item for item, _ in batch]
        loop = asyncio.get_running_loop()
        if self._semaphore is not None:
            await self._semaphore.acquire()
        try:
            results = await loop.run_in_executor(
                self._executor, self._execute_locked, items)
        except Exception as error:  # noqa: BLE001 — fan the failure out
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
        else:
            for (_, future), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)
        finally:
            if self._semaphore is not None:
                self._semaphore.release()
            self.executed_batches += 1
            self.executed_items += len(batch)
            self.max_batch_observed = max(self.max_batch_observed, len(batch))
            for _ in batch:
                self._queue.task_done()

    def _execute_locked(self, items: list[object]) -> Sequence[object]:
        with self._lock:
            return self._execute_batch(items)

    # -- observability ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """How many admitted requests are waiting (current queue length)."""
        return self._queue.qsize() if self._queue is not None else 0

    def stats(self) -> dict[str, float]:
        """Admission and coalescing counters of this queue."""
        return {
            "capacity": self.capacity,
            "depth": self.depth,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "executed_batches": self.executed_batches,
            "executed_items": self.executed_items,
            "max_batch_observed": self.max_batch_observed,
            "mean_batch_size": (self.executed_items / self.executed_batches
                                if self.executed_batches else 0.0),
        }
