"""The declarative description of a similarity join: :class:`JoinSpec`.

A :class:`JoinSpec` says *what* to compute — the measure, the threshold and
the tuning knobs — without saying *how*.  The ``algorithm`` field names any
concrete execution path the engine knows (the three V-SMART-Join joining
algorithms, the VCL baseline, the exact in-memory join, or one of the
sequential baselines) or ``"auto"``, in which case the
:class:`~repro.engine.planner.Planner` inspects the corpus statistics and
the cost model and picks the distributed algorithm with the lowest
predicted simulated cost — the way a database optimizer chooses a plan.

Infrastructure (cluster, backend, cost calibration) normally lives on the
:class:`~repro.engine.engine.SimilarityEngine` session; the corresponding
``JoinSpec`` fields default to ``None`` ("use the session's") and exist so
a single spec can carry a complete, reproducible description of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.baselines.minhash import LSHParameters, derive_banding
from repro.core.exceptions import JobConfigurationError
from repro.mapreduce.backends import ExecutionBackend
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.costmodel import CostParameters
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.registry import get_measure
from repro.vcl.driver import VCLConfig
from repro.vsmart.driver import JOINING_ALGORITHMS, VSmartJoinConfig

#: The planner placeholder: let the cost model choose the algorithm.
AUTO = "auto"
#: The exact in-memory reference join (quadratic, single machine).
EXACT = "exact"
#: The VCL baseline (MapReduce PPJoin+).
VCL = "vcl"

#: Sequential single-machine baselines runnable through the engine.
SEQUENTIAL_ALGORITHMS = ("exact", "inverted_index", "ppjoin", "minhash",
                         "sampled")

#: Algorithms whose results may miss true pairs: the approximate tier.
#: ``minhash`` loses recall to banding, ``sampled`` to corpus sampling;
#: every other algorithm is exact (modulo ``stop_word_frequency``).
APPROXIMATE_ALGORITHMS = ("minhash", "sampled")

#: Algorithms the planner considers for ``algorithm="auto"`` — the paper's
#: four distributed contenders, all with cost-model-predictable pipelines.
#: A spec with ``recall`` set widens the pool with the approximate tier.
PLANNABLE_ALGORITHMS = JOINING_ALGORITHMS + (VCL,)

#: Every valid value of :attr:`JoinSpec.algorithm`.
ENGINE_ALGORITHMS = (AUTO,) + PLANNABLE_ALGORITHMS + SEQUENTIAL_ALGORITHMS


def available_algorithms() -> tuple[str, ...]:
    """The valid values of :attr:`JoinSpec.algorithm`.

    ``"auto"`` delegates the choice to the cost-model planner;
    ``"online_aggregation"``, ``"lookup"``, ``"sharding"`` and ``"vcl"`` are
    the distributed MapReduce pipelines; ``"exact"``, ``"inverted_index"``,
    ``"ppjoin"``, ``"minhash"`` and ``"sampled"`` run sequentially in
    memory (``minhash`` and ``sampled`` are approximate — every other
    algorithm is exact).
    """
    return ENGINE_ALGORITHMS


@dataclass(frozen=True)
class JoinSpec:
    """A declarative all-pair similarity join.

    Parameters
    ----------
    measure:
        Similarity measure name (see :func:`repro.list_measures`) or
        instance.  Distributed algorithms reject measures that require
        disjunctive partials; ``algorithm="exact"`` accepts every measure.
    threshold:
        Similarity threshold ``t`` in ``(0, 1]``.
    algorithm:
        One of :func:`available_algorithms`; ``"auto"`` (the default) lets
        the planner choose among the distributed algorithms by predicted
        simulated cost.
    sharding_threshold:
        The Sharding parameter ``C`` (multisets with more distinct elements
        go through the lookup table).
    stop_word_frequency:
        Optional ``q``: discard elements shared by more than ``q`` multisets
        before joining (approximate — may drop pairs).
    chunk_size:
        Optional chunked-Similarity1 dissection threshold ``T``.
    use_combiners:
        Whether dedicated combiners run in the MapReduce pipelines.
    intern:
        Run the pipelines on dense-integer keys (identical output).
    prune_candidates:
        Exact upper-bound candidate pruning in Similarity1 (identical
        output).
    vcl_element_order:
        VCL alphabet order, ``"frequency"`` or ``"hash"``.
    vcl_super_element_groups:
        VCL super-element grouping (``None`` disables).
    recall:
        Optional recall target in ``(0, 1]``.  A value below 1 declares
        that the caller accepts missing true pairs at that rate, which (a)
        admits the approximate tier (``minhash``, ``sampled``) as planner
        candidates under ``algorithm="auto"`` and (b) auto-derives MinHash
        banding so ``collision_probability(threshold) >= recall``.
        ``None`` (the default) and ``1.0`` both demand exactness —
        ``algorithm="auto"`` then never selects an approximate pipeline.
    minhash_parameters:
        LSH banding for ``algorithm="minhash"`` (``None`` derives banding
        from ``(threshold, recall)`` when a recall target is set, and uses
        the baseline's default banding otherwise).  Explicit parameters
        always win over the derivation.
    cluster / backend / cost_parameters / enforce_budgets:
        Optional overrides of the engine session's infrastructure; ``None``
        means "use the session's".
    """

    measure: str | NominalSimilarityMeasure = "ruzicka"
    threshold: float = 0.5
    algorithm: str = AUTO
    sharding_threshold: int = 1024
    stop_word_frequency: int | None = None
    chunk_size: int | None = None
    use_combiners: bool = True
    intern: bool = True
    prune_candidates: bool = True
    vcl_element_order: str = "frequency"
    vcl_super_element_groups: int | None = None
    recall: float | None = None
    minhash_parameters: LSHParameters | None = None
    cluster: Cluster | None = None
    backend: str | ExecutionBackend | None = None
    cost_parameters: CostParameters | None = None
    enforce_budgets: bool | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ENGINE_ALGORITHMS:
            raise JobConfigurationError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{ENGINE_ALGORITHMS}")
        validate_threshold(self.threshold)
        if self.sharding_threshold < 1:
            raise JobConfigurationError("sharding_threshold (C) must be >= 1")
        if self.recall is not None and not 0.0 < self.recall <= 1.0:
            raise JobConfigurationError(
                f"recall must be in (0, 1]; got {self.recall!r}")
        if self.algorithm == "sampled" and not self.allows_inexact:
            raise JobConfigurationError(
                "algorithm='sampled' drops pairs by construction and needs "
                "a recall target below 1.0, e.g. JoinSpec(algorithm='sampled',"
                " recall=0.95)")
        # Fail fast on VCL-specific knobs (the sub-config re-validates):
        # under "auto" the planner prices a VCL candidate too, so bad knobs
        # must not survive until execution time.
        if self.algorithm in (VCL, AUTO):
            self.vcl_config()

    # -- resolution helpers -------------------------------------------------

    @property
    def allows_inexact(self) -> bool:
        """Whether the caller accepts missing true pairs (``recall < 1``)."""
        return self.recall is not None and self.recall < 1.0

    def resolved_minhash_parameters(self) -> LSHParameters:
        """The LSH banding ``algorithm="minhash"`` runs with.

        Explicit :attr:`minhash_parameters` win; otherwise a recall target
        derives banding, and without either the baseline's default banding
        applies.

        The derivation aims at the midpoint between the target and 1.0
        (mirroring :func:`repro.baselines.sampled.sample_rate_for_recall`):
        the LSH bound ``collision_probability(threshold) >= recall`` holds
        for a pair *at* the threshold, but signature agreement only
        estimates similarity, so borderline pairs collide at a lower
        effective rate — the margin keeps the *measured* recall
        concentrated above the target instead of oscillating around it.
        """
        if self.minhash_parameters is not None:
            return self.minhash_parameters
        if self.allows_inexact:
            return derive_banding(self.threshold,
                                  (1.0 + self.recall) / 2.0)
        return LSHParameters()

    def resolved_measure(self) -> NominalSimilarityMeasure:
        """Resolve the measure, validating distributed-path support.

        Sequential algorithms (``"exact"`` and friends) work with any
        registered measure; the MapReduce paths require the paper's
        unilateral/conjunctive decomposition.
        """
        measure = get_measure(self.measure)
        if self.algorithm not in SEQUENTIAL_ALGORITHMS:
            measure.check_supported()
        return measure

    def vsmart_config(self, algorithm: str | None = None) -> VSmartJoinConfig:
        """The :class:`VSmartJoinConfig` equivalent of this spec.

        ``algorithm`` overrides the spec's own (used by the planner, which
        resolves ``"auto"`` to a concrete joining algorithm).
        """
        resolved = algorithm or self.algorithm
        if resolved not in JOINING_ALGORITHMS:
            raise JobConfigurationError(
                f"{resolved!r} is not a V-SMART-Join joining algorithm")
        return VSmartJoinConfig(
            algorithm=resolved,
            measure=self.measure,
            threshold=self.threshold,
            sharding_threshold=self.sharding_threshold,
            stop_word_frequency=self.stop_word_frequency,
            chunk_size=self.chunk_size,
            use_combiners=self.use_combiners,
            intern=self.intern,
            prune_candidates=self.prune_candidates,
        )

    def vcl_config(self) -> VCLConfig:
        """The :class:`VCLConfig` equivalent of this spec."""
        return VCLConfig(
            measure=self.measure,
            threshold=self.threshold,
            element_order=self.vcl_element_order,
            super_element_groups=self.vcl_super_element_groups,
            intern=self.intern,
        )

    def describe(self) -> dict[str, object]:
        """A plain-dict rendering of the spec (measure resolved to its name)."""
        described: dict[str, object] = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "measure":
                value = get_measure(value).name
            described[field.name] = value
        return described
