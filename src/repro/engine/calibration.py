"""Online cost-model calibration: learn the rates from measured runs.

The :class:`~repro.engine.planner.Planner` prices every candidate pipeline
through :class:`~repro.mapreduce.costmodel.CostParameters` — fixed
calibration constants that inevitably drift from whatever the simulated (or
eventually real) cluster actually delivers.  This module closes the loop
the way a self-tuning database does: every :class:`SimilarityEngine` run
hands its *measured* per-job :class:`~repro.mapreduce.types.JobStats` back
to a :class:`CalibrationProfile`, which compares them component by
component against the planner's *estimated* stats for the same pipeline
and accumulates multiplicative corrections for each rate:

* ``machine_throughput``   — from the map + reduce compute seconds;
* ``network_bandwidth``    — from the shuffle seconds;
* ``side_data_load_rate``  — from the side-data load seconds;
* ``disk_bandwidth``       — from the spill I/O seconds (when priced);
* ``job_overhead_seconds`` — from the per-pipeline job count;
* ``record_overhead_bytes``— from the record-count estimation error.

Both sides are re-priced through the *base* parameters inside
:meth:`CalibrationProfile.observe`, so the corrections measure estimation
error against a fixed yardstick and the feedback loop cannot chase its own
tail.  Each correction is the geometric mean of the observed
measured/predicted ratios — the right average for multiplicative errors —
and :meth:`CalibrationProfile.calibrated_parameters` folds them back into
a :class:`CostParameters` the planner can price with.

Profiles persist through :mod:`repro.storage` (the generic ``meta`` table,
section ``"calibration"``), so what one session learns the next session
plans with::

    profile = CalibrationProfile.load_or_create("profile.db")
    with SimilarityEngine(calibration=profile) as engine:
        engine.run(spec, multisets)      # observes + recalibrates
    profile.save("profile.db")

or simply ``SimilarityEngine(calibration="profile.db")``, which loads the
profile and saves it back after every observation.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.core.exceptions import StorageError
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.costmodel import CostModel, CostParameters
from repro.mapreduce.types import JobStats

#: The storage ``meta`` section a profile persists under.
META_SECTION = "calibration"

#: Component names a profile accumulates corrections for.
COMPONENTS = ("compute", "shuffle", "side_data", "overhead", "disk",
              "records")


@dataclass
class ComponentEstimate:
    """Running geometric mean of observed measured/predicted ratios."""

    log_sum: float = 0.0
    count: int = 0

    def observe(self, ratio: float) -> None:
        """Fold one measured/predicted ratio into the estimate."""
        if ratio <= 0.0 or not math.isfinite(ratio):
            raise ValueError(f"ratio must be positive and finite; got {ratio}")
        self.log_sum += math.log(ratio)
        self.count += 1

    @property
    def factor(self) -> float:
        """The geometric-mean correction (1.0 before any observation)."""
        if not self.count:
            return 1.0
        return math.exp(self.log_sum / self.count)


@dataclass
class CalibrationProfile:
    """Learned multiplicative corrections over a base :class:`CostParameters`.

    ``base`` is the yardstick every observation is priced against; the
    profile's :meth:`calibrated_parameters` divides the base *rates* by the
    learned factor (a component that measured 2x slower than predicted
    means the effective rate is half the base) and multiplies the base
    *overheads* by it.
    """

    base: CostParameters = field(default_factory=CostParameters)
    components: dict[str, ComponentEstimate] = field(
        default_factory=lambda: {name: ComponentEstimate()
                                 for name in COMPONENTS})
    #: Number of runs observed (a run contributes one pipeline).
    runs: int = 0
    #: Total measured wall-clock seconds across observed runs (reporting
    #: only — the simulated cost model never consumes wall-clock).
    wall_seconds: float = 0.0
    #: Bumped on every observation so planners can refresh lazily.
    version: int = 0

    # -- the feedback loop ---------------------------------------------------

    def observe(self, predicted_jobs, measured_stats: list[JobStats],
                cluster: Cluster, wall_seconds: float = 0.0) -> dict[str, float]:
        """Fold one run's measured stats against its predicted pipeline.

        ``predicted_jobs`` is the planner's pipeline for the executed
        algorithm — a :class:`~repro.engine.planner.PlanCandidate` or any
        object with ``.jobs`` carrying estimated :class:`JobStats` (or a
        plain list of such job objects).  Both sides are re-priced through
        the **base** parameters, so the observation is independent of
        whatever calibrated parameters produced the plan.  Returns the
        per-component ratios that were observed (useful for reporting).
        """
        jobs = getattr(predicted_jobs, "jobs", predicted_jobs)
        model = CostModel(self.base)
        predicted = [model.job_cost(job.stats, cluster) for job in jobs]
        measured = [model.job_cost(stats, cluster) for stats in measured_stats]
        if not predicted or not measured:
            return {}

        def seconds(costs, component):
            return sum(getattr(cost, component) for cost in costs)

        ratios: dict[str, float] = {}
        pairs = (
            ("compute", lambda c: c.map_seconds + c.reduce_seconds),
            ("shuffle", lambda c: c.shuffle_seconds),
            ("side_data", lambda c: c.side_data_seconds),
            ("disk", lambda c: c.disk_seconds),
        )
        for name, extract in pairs:
            predicted_seconds = sum(extract(cost) for cost in predicted)
            measured_seconds = sum(extract(cost) for cost in measured)
            if predicted_seconds > 0.0 and measured_seconds > 0.0:
                ratios[name] = measured_seconds / predicted_seconds
        # Overhead scales with the number of jobs the pipeline really ran.
        predicted_overhead = seconds(predicted, "overhead_seconds")
        measured_overhead = seconds(measured, "overhead_seconds")
        if predicted_overhead > 0.0 and measured_overhead > 0.0:
            ratios["overhead"] = measured_overhead / predicted_overhead
        # Record-count estimation error corrects record_overhead_bytes: the
        # planner charges per-record CPU from its estimated record counts.
        predicted_records = sum(job.stats.map.records_in
                                + job.stats.reduce.records_in for job in jobs)
        measured_records = sum(stats.map.records_in + stats.reduce.records_in
                               for stats in measured_stats)
        if predicted_records > 0 and measured_records > 0:
            ratios["records"] = measured_records / predicted_records

        for name, ratio in ratios.items():
            self.components[name].observe(ratio)
        self.runs += 1
        self.wall_seconds += max(0.0, wall_seconds)
        self.version += 1
        return ratios

    def factor(self, component: str) -> float:
        """The learned correction for one component (1.0 when unobserved)."""
        return self.components[component].factor

    def calibrated_parameters(self) -> CostParameters:
        """The base parameters with every learned correction folded in."""
        disk = self.base.disk_bandwidth
        if disk is not None:
            disk = disk / self.factor("disk")
        return CostParameters(
            job_overhead_seconds=(self.base.job_overhead_seconds
                                  * self.factor("overhead")),
            machine_throughput=(self.base.machine_throughput
                                / self.factor("compute")),
            network_bandwidth=(self.base.network_bandwidth
                               / self.factor("shuffle")),
            side_data_load_rate=(self.base.side_data_load_rate
                                 / self.factor("side_data")),
            record_overhead_bytes=(self.base.record_overhead_bytes
                                   * self.factor("records")),
            disk_bandwidth=disk,
        )

    # -- persistence ---------------------------------------------------------

    def save(self, destination) -> None:
        """Persist the profile into ``destination`` (path or StorageEngine).

        Stored under the generic ``meta`` table, section ``"calibration"``
        — no schema migration, and a profile can share a database with any
        other stored artifact.
        """
        from repro.storage import open_engine

        engine, owned = open_engine(destination)
        try:
            payload = {
                "base": json.dumps(_describe_parameters(self.base),
                                   sort_keys=True),
                "components": json.dumps(
                    {name: [estimate.log_sum, estimate.count]
                     for name, estimate in self.components.items()},
                    sort_keys=True),
                "runs": str(self.runs),
                "wall_seconds": repr(self.wall_seconds),
                "version": str(self.version),
            }
            with engine.transaction():
                for key, value in payload.items():
                    engine.set_meta(META_SECTION, key, value)
        finally:
            if owned:
                engine.close()

    @classmethod
    def load(cls, source) -> "CalibrationProfile":
        """Load a stored profile; raises :class:`StorageError` if absent."""
        from repro.storage import open_engine

        engine, owned = open_engine(source)
        try:
            stored = engine.meta_section(META_SECTION)
        finally:
            if owned:
                engine.close()
        if not stored.get("base"):
            raise StorageError(
                "no calibration profile stored in this database; "
                "use CalibrationProfile.load_or_create to start fresh")
        try:
            base = CostParameters(**json.loads(stored["base"]))
            components = {
                name: ComponentEstimate(log_sum=float(log_sum),
                                        count=int(count))
                for name, (log_sum, count)
                in json.loads(stored["components"]).items()}
            for name in COMPONENTS:
                components.setdefault(name, ComponentEstimate())
            return cls(base=base, components=components,
                       runs=int(stored.get("runs") or 0),
                       wall_seconds=float(stored.get("wall_seconds") or 0.0),
                       version=int(stored.get("version") or 0))
        except (TypeError, ValueError, KeyError) as error:
            raise StorageError(
                f"stored calibration profile is corrupt: {error}") from None

    @classmethod
    def load_or_create(cls, source,
                       base: CostParameters | None = None
                       ) -> "CalibrationProfile":
        """Load a stored profile, or start a fresh one over ``base``.

        A stored profile wins over ``base`` — the point of persistence is
        that the learned state survives the caller's defaults.
        """
        try:
            return cls.load(source)
        except StorageError:
            return cls(base=base or CostParameters())


def _describe_parameters(parameters: CostParameters) -> dict[str, float | None]:
    return {
        "job_overhead_seconds": parameters.job_overhead_seconds,
        "machine_throughput": parameters.machine_throughput,
        "network_bandwidth": parameters.network_bandwidth,
        "side_data_load_rate": parameters.side_data_load_rate,
        "record_overhead_bytes": parameters.record_overhead_bytes,
        "disk_bandwidth": parameters.disk_bandwidth,
    }
