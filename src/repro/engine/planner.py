"""The cost-model-driven join planner.

Given a :class:`~repro.engine.spec.JoinSpec` and a corpus, the
:class:`Planner` does what a database optimizer does for a query: it
*predicts* what each candidate execution pipeline would cost and picks the
cheapest.  The prediction reuses the exact machinery the simulator charges
real runs with — :class:`~repro.mapreduce.costmodel.CostModel` over
per-job :class:`~repro.mapreduce.types.JobStats` — but the statistics are
*estimated* from a one-pass :class:`CorpusProfile` (record counts, the
document-frequency profile of an
:class:`~repro.core.interning.ElementDictionary`, the per-multiset
cardinality distribution from :mod:`repro.datasets.stats`) instead of
measured by executing the pipeline.

The estimates deliberately mirror the runner's accounting:

* per-record map work is ``bytes_in + bytes_out + overhead * (1 + emitted)``;
* per-group reduce work is ``bytes_in + bytes_out + overhead * group_size``;
* a phase's critical path is ``max(total_work / machines, largest unit)``;
* the shuffle pays aggregate bandwidth plus the single link of the largest
  group's receiver — which is how skew (one hot element, one huge multiset)
  surfaces in the prediction exactly as it does in the measurement.

For the VCL baseline the planner computes the *real* prefixes (the same
:func:`repro.vcl.prefix.prefix_elements` the kernel mappers use) in one
pass, so the kernel's replication volume and its largest reduce group —
the two quantities the paper blames for VCL's collapse — are estimated
from actual prefix document frequencies rather than guessed.

Candidate-pair volume is estimated *unpruned* (``sum_e C(df_e, 2)``): the
upper-bound pruning rate depends on the pairwise ``Uni`` values, which a
planner that refuses to do quadratic work cannot know.  The overestimate
applies identically to all three V-SMART-Join pipelines, so their relative
order — the decision ``algorithm="auto"`` has to get right — is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.interning import ElementDictionary
from repro.core.multiset import Multiset
from repro.datasets.stats import (
    DistributionSummary,
    elements_per_multiset,
    skew_ratio,
    summarise_distribution,
)
from repro.baselines.minhash import SUPPORTED_MEASURES as MINHASH_MEASURES
from repro.baselines.sampled import sample_rate_for_recall
from repro.engine.spec import (
    APPROXIMATE_ALGORITHMS,
    AUTO,
    PLANNABLE_ALGORITHMS,
    SEQUENTIAL_ALGORITHMS,
    VCL,
    JoinSpec,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.costmodel import (
    DEFAULT_COST_PARAMETERS,
    CostBreakdown,
    CostModel,
    CostParameters,
)
from repro.mapreduce.types import JobStats, estimate_record_bytes
from repro.similarity.base import NominalSimilarityMeasure
from repro.similarity.partials import uni_contribution
from repro.vcl.prefix import frequency_rank_function, prefix_elements
from repro.vsmart.driver import LOOKUP, ONLINE_AGGREGATION, SHARDING

#: Size charged for a dataclass/tuple container by the byte estimator.
_CONTAINER = 16
#: Size of a dense integer key / an int or float field.
_WORD = 8


@dataclass(frozen=True)
class CorpusProfile:
    """One-pass statistics of a corpus, sufficient for cost prediction."""

    num_multisets: int
    #: Total ``(multiset, element)`` incidences — the raw input tuples.
    num_records: int
    alphabet_size: int
    #: Fig. 2 distribution: distinct elements per multiset.
    elements_per_multiset: DistributionSummary
    #: Fig. 3 distribution: multisets per element (document frequency).
    multisets_per_element: DistributionSummary
    #: ``sum_e C(df_e, 2)`` — the unpruned candidate-record volume.
    candidate_records: int
    #: Max-to-mean ratio of the document frequencies (load-imbalance lever).
    element_skew: float
    avg_element_bytes: float
    avg_id_bytes: float
    #: Per-multiset underlying cardinalities, in input order.
    cardinalities: tuple[int, ...]
    #: Estimated whole-multiset bytes, parallel to :attr:`cardinalities`.
    multiset_bytes: tuple[int, ...]
    #: The document-frequency-ordered element dictionary of the corpus.
    dictionary: ElementDictionary

    @classmethod
    def from_multisets(cls, multisets: Sequence[Multiset]) -> "CorpusProfile":
        """Profile a corpus in one pass (plus the dictionary sort)."""
        dictionary = ElementDictionary.from_multisets(multisets)
        frequencies = [dictionary.frequency_of(element)
                       for element in dictionary]
        cardinalities = tuple(elements_per_multiset(multisets))
        element_bytes = sum(estimate_record_bytes(element)
                            for element in dictionary)
        id_bytes = sum(estimate_record_bytes(multiset.id)
                       for multiset in multisets)
        return cls(
            num_multisets=len(multisets),
            num_records=sum(cardinalities),
            alphabet_size=len(dictionary),
            elements_per_multiset=summarise_distribution(cardinalities),
            multisets_per_element=summarise_distribution(frequencies),
            candidate_records=sum(df * (df - 1) // 2 for df in frequencies),
            element_skew=skew_ratio(frequencies),
            avg_element_bytes=(element_bytes / len(dictionary)
                               if dictionary else 0.0),
            avg_id_bytes=id_bytes / len(multisets) if multisets else 0.0,
            cardinalities=cardinalities,
            multiset_bytes=tuple(multiset.estimated_bytes()
                                 for multiset in multisets),
            dictionary=dictionary,
        )

    @property
    def max_cardinality(self) -> int:
        """``max_m |U(Mi)|`` — the largest multiset."""
        return self.elements_per_multiset.maximum

    @property
    def max_document_frequency(self) -> int:
        """``max_e Freq(a_e)`` — the hottest element."""
        return self.multisets_per_element.maximum


@dataclass(frozen=True)
class PlannedJob:
    """One predicted MapReduce step: estimated stats plus their cost."""

    name: str
    stats: JobStats
    cost: CostBreakdown
    #: Whether the job's reducer materialises whole groups in memory (the
    #: thrashing risk the paper describes) — only such jobs are held to the
    #: per-machine memory budget in the feasibility check.
    materialises_groups: bool = False

    @property
    def predicted_seconds(self) -> float:
        """Predicted simulated run time of this job."""
        return self.cost.total_seconds


@dataclass(frozen=True)
class PlanCandidate:
    """The predicted pipeline of one candidate algorithm.

    ``exclusion_reason`` marks pipelines the planner predicts the cluster
    cannot run at all — a joining algorithm needing engine features the
    cluster profile lacks, side data that cannot fit the per-machine memory
    budget, or a job the simulated scheduler would kill.  These mirror the
    "never succeeded to finish" rows of the paper's figures; ``auto`` never
    picks an infeasible candidate while a feasible one exists.
    """

    algorithm: str
    jobs: tuple[PlannedJob, ...]
    exclusion_reason: str | None = None

    @property
    def feasible(self) -> bool:
        """Whether the planner predicts the pipeline can finish."""
        return self.exclusion_reason is None

    @property
    def predicted_seconds(self) -> float:
        """Predicted simulated run time of the whole pipeline."""
        return sum(job.predicted_seconds for job in self.jobs)


@dataclass(frozen=True)
class JoinPlan:
    """An inspectable, executable decision: which algorithm, at what cost.

    ``candidates`` holds every pipeline the planner evaluated (a single
    entry when the spec named its algorithm explicitly), sorted cheapest
    first; ``algorithm`` is the chosen one.  :meth:`explain` renders the
    decision the way ``EXPLAIN`` renders a query plan.
    """

    spec: JoinSpec
    algorithm: str
    cluster: Cluster
    profile: CorpusProfile
    candidates: tuple[PlanCandidate, ...]
    reason: str

    @property
    def chosen(self) -> PlanCandidate:
        """The candidate the plan selected."""
        return self.candidate_for(self.algorithm)

    @property
    def predicted_seconds(self) -> float:
        """Predicted simulated run time of the chosen pipeline."""
        return self.chosen.predicted_seconds

    def candidate_for(self, algorithm: str) -> PlanCandidate:
        """The evaluated candidate for ``algorithm``."""
        for candidate in self.candidates:
            if candidate.algorithm == algorithm:
                return candidate
        available = ", ".join(repr(c.algorithm) for c in self.candidates)
        raise KeyError(f"no candidate for algorithm {algorithm!r}; "
                       f"evaluated: {available}")

    def explain(self) -> str:
        """Render the plan: decision, candidate ranking, per-job breakdown."""
        profile = self.profile
        lines = [
            f"JoinPlan: algorithm={self.algorithm!r} "
            f"(predicted {self.predicted_seconds:,.0f} simulated seconds)",
            f"  reason: {self.reason}",
            f"  corpus: {profile.num_multisets} multisets, "
            f"{profile.num_records} input tuples, "
            f"{profile.alphabet_size} distinct elements, "
            f"max |U(M)|={profile.max_cardinality}, "
            f"max Freq(a)={profile.max_document_frequency}, "
            f"df skew={profile.element_skew:.1f}x",
            f"  cluster: {self.cluster.num_machines} machines "
            f"({self.cluster.profile.name})",
        ]
        if len(self.candidates) > 1:
            lines.append("  candidates (cheapest first):")
            for rank, candidate in enumerate(self.candidates, start=1):
                marker = "*" if candidate.algorithm == self.algorithm else " "
                note = ("" if candidate.feasible
                        else f"  [infeasible: {candidate.exclusion_reason}]")
                lines.append(
                    f"   {marker}{rank}. {candidate.algorithm:<19} "
                    f"{candidate.predicted_seconds:>12,.0f} s  "
                    f"({len(candidate.jobs)} jobs){note}")
        lines.append(f"  per-job predicted cost ({self.algorithm}):")
        # The disk column only appears when the calibration prices disk
        # spill (CostParameters.disk_bandwidth set): an all-zero column
        # would just be noise under the default in-memory calibration.
        show_disk = any(job.cost.disk_seconds for job in self.chosen.jobs)
        header = (f"    {'job':<22} {'total':>10} {'overhead':>9} "
                  f"{'side':>8} {'map':>9} {'shuffle':>9} {'reduce':>9}"
                  + (f" {'disk':>9}" if show_disk else ""))
        lines.append(header)
        for job in self.chosen.jobs:
            cost = job.cost
            lines.append(
                f"    {job.name:<22} {cost.total_seconds:>10,.1f} "
                f"{cost.overhead_seconds:>9,.1f} "
                f"{cost.side_data_seconds:>8,.1f} "
                f"{cost.map_seconds:>9,.1f} "
                f"{cost.shuffle_seconds:>9,.1f} "
                f"{cost.reduce_seconds:>9,.1f}"
                + (f" {cost.disk_seconds:>9,.1f}" if show_disk else ""))
        return "\n".join(lines)


@dataclass(frozen=True)
class _RecordSizes:
    """Estimated record sizes (bytes) for one measure and interning mode."""

    element: float
    multiset_id: float
    uni: float
    conj: float

    @classmethod
    def resolve(cls, profile: CorpusProfile,
                measure: NominalSimilarityMeasure,
                intern: bool) -> "_RecordSizes":
        uni = float(estimate_record_bytes(uni_contribution(measure, 2)))
        conj = float(estimate_record_bytes(measure.conj_from_pair(2.0, 3.0)))
        if intern:
            return cls(element=_WORD, multiset_id=_WORD, uni=uni, conj=conj)
        return cls(element=profile.avg_element_bytes,
                   multiset_id=profile.avg_id_bytes, uni=uni, conj=conj)

    @property
    def input_tuple(self) -> float:
        """``<Mi, a_k, f_ik>``."""
        return _CONTAINER + self.multiset_id + self.element + _WORD

    @property
    def joined_tuple(self) -> float:
        """``<Mi, Uni(Mi), a_k, f_ik>``."""
        return _CONTAINER + self.multiset_id + self.uni + self.element + _WORD

    @property
    def posting(self) -> float:
        """``<Mi, Uni(Mi), f_ik>`` keyed by the element."""
        return _CONTAINER + self.multiset_id + self.uni + _WORD

    @property
    def pair_key(self) -> float:
        """``<Mi, Mj, Uni(Mi), Uni(Mj)>`` (packed to one word when interned)."""
        if self.multiset_id == _WORD:
            # PairCodec packs both dense ids into a single integer.
            return _CONTAINER + _WORD + 2 * self.uni
        return _CONTAINER + 2 * self.multiset_id + 2 * self.uni

    @property
    def similar_pair(self) -> float:
        """``<Mi, Mj, Sim(Mi, Mj)>``."""
        return _CONTAINER + 2 * self.multiset_id + _WORD

    def keyed(self, key_bytes: float, value_bytes: float,
              secondary: bool = False) -> float:
        """One shuffled ``KeyValue`` record around a key and a value."""
        return (_CONTAINER + key_bytes + value_bytes
                + (_WORD if secondary else 1))


class Planner:
    """Choose (or cost) a join pipeline from corpus statistics.

    The planner is deliberately *read-only*: it never runs a candidate, it
    only profiles the corpus (one linear pass, plus the prefix scan for the
    VCL candidate) and prices the pipelines through the same
    :class:`~repro.mapreduce.costmodel.CostModel` that prices real runs.

    With a :class:`~repro.engine.calibration.CalibrationProfile` attached,
    pricing uses the profile's learned
    :meth:`~repro.engine.calibration.CalibrationProfile.calibrated_parameters`
    instead of the construction-time constants, and follows the profile as
    it keeps learning (the effective parameters refresh whenever the
    profile's version moves).
    """

    def __init__(self,
                 cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                 calibration=None) -> None:
        self.base_parameters = cost_parameters
        self.calibration = calibration
        self._calibration_version: int | None = None
        self.cost_parameters = cost_parameters
        self.cost_model = CostModel(cost_parameters)
        self._refresh_calibration()

    def _refresh_calibration(self) -> None:
        """Re-derive the effective parameters when the profile has learned."""
        if self.calibration is None:
            return
        if self._calibration_version == self.calibration.version:
            return
        self.cost_parameters = self.calibration.calibrated_parameters()
        self.cost_model = CostModel(self.cost_parameters)
        self._calibration_version = self.calibration.version

    # -- public API ---------------------------------------------------------

    def plan(self, spec: JoinSpec, multisets: Sequence[Multiset],
             cluster: Cluster, profile: CorpusProfile | None = None,
             enforce_budgets: bool = True) -> JoinPlan:
        """Produce the :class:`JoinPlan` for ``spec`` over ``multisets``.

        ``enforce_budgets`` mirrors the runner's switch: with it off, the
        memory-budget feasibility checks are skipped (the cluster-profile
        and scheduler-limit checks still apply, as the runner enforces
        those unconditionally).
        """
        self._refresh_calibration()
        profile = profile or CorpusProfile.from_multisets(multisets)
        if spec.algorithm == AUTO:
            pool = self._auto_candidates(spec)
            candidates = tuple(sorted(
                (self._checked(
                    self.estimate(algorithm, spec, multisets, cluster,
                                  profile),
                    cluster, enforce_budgets)
                 for algorithm in pool),
                key=lambda candidate: (not candidate.feasible,
                                       candidate.predicted_seconds)))
            chosen = candidates[0]
            if not chosen.feasible:
                reason = ("no candidate is predicted feasible; "
                          f"{chosen.algorithm!r} has the lowest predicted "
                          f"cost ({chosen.exclusion_reason})")
            else:
                runner_up = (candidates[1] if len(candidates) > 1 else chosen)
                reason = (f"lowest predicted cost of {len(candidates)} "
                          f"candidates ({chosen.predicted_seconds:,.0f} s vs "
                          f"{runner_up.predicted_seconds:,.0f} s for "
                          f"{runner_up.algorithm!r})")
                if chosen.algorithm in APPROXIMATE_ALGORITHMS:
                    reason += (f"; approximate tier admitted by "
                               f"recall={spec.recall}")
            return JoinPlan(spec=spec, algorithm=chosen.algorithm,
                            cluster=cluster, profile=profile,
                            candidates=candidates, reason=reason)
        candidate = self._checked(
            self.estimate(spec.algorithm, spec, multisets, cluster, profile),
            cluster, enforce_budgets)
        return JoinPlan(spec=spec, algorithm=spec.algorithm, cluster=cluster,
                        profile=profile, candidates=(candidate,),
                        reason=f"algorithm {spec.algorithm!r} requested "
                               "explicitly")

    def _auto_candidates(self, spec: JoinSpec) -> tuple[str, ...]:
        """The candidate pool ``algorithm="auto"`` prices for this spec.

        Always the four distributed contenders; a spec that allows
        inexactness (``recall < 1``) widens the pool with the approximate
        tier — ``minhash`` only for the Jaccard-family measures its
        signatures can estimate, ``sampled`` for every measure.
        """
        if not spec.allows_inexact:
            return PLANNABLE_ALGORITHMS
        from repro.similarity.registry import get_measure
        pool = list(PLANNABLE_ALGORITHMS)
        if get_measure(spec.measure).name in MINHASH_MEASURES:
            pool.append("minhash")
        pool.append("sampled")
        return tuple(pool)

    def _checked(self, candidate: PlanCandidate, cluster: Cluster,
                 enforce_budgets: bool) -> PlanCandidate:
        """Attach the predicted-infeasibility verdict to a candidate."""
        if candidate.algorithm in SEQUENTIAL_ALGORITHMS:
            # In-memory algorithms run outside the simulated cluster: no
            # scheduler, no per-machine budgets — never exclude them.
            return candidate
        reason = self._exclusion_reason(candidate, cluster, enforce_budgets)
        if reason is None:
            return candidate
        return PlanCandidate(algorithm=candidate.algorithm,
                             jobs=candidate.jobs, exclusion_reason=reason)

    def _exclusion_reason(self, candidate: PlanCandidate, cluster: Cluster,
                          enforce_budgets: bool) -> str | None:
        if (candidate.algorithm == ONLINE_AGGREGATION
                and not cluster.profile.supports_secondary_keys):
            return (f"requires secondary keys, which the "
                    f"{cluster.profile.name!r} profile does not support")
        for job in candidate.jobs:
            if job.predicted_seconds > cluster.scheduler_limit_seconds:
                return (f"job {job.name!r} predicted to run "
                        f"{job.predicted_seconds:,.0f} s, beyond the "
                        f"scheduler limit of "
                        f"{cluster.scheduler_limit_seconds:,.0f} s")
            if not enforce_budgets:
                continue
            budget = cluster.memory_per_machine
            if job.stats.side_data_bytes > budget:
                return (f"job {job.name!r} needs "
                        f"{job.stats.side_data_bytes:,} bytes of side data "
                        f"per machine against a budget of {budget:,}")
            if job.materialises_groups and job.stats.max_group_bytes > budget:
                return (f"job {job.name!r} must materialise a "
                        f"{job.stats.max_group_bytes:,}-byte reduce group "
                        f"against a budget of {budget:,}")
        return None

    def estimate(self, algorithm: str, spec: JoinSpec,
                 multisets: Sequence[Multiset], cluster: Cluster,
                 profile: CorpusProfile | None = None) -> PlanCandidate:
        """Predict the pipeline of one algorithm without executing it."""
        self._refresh_calibration()
        profile = profile or CorpusProfile.from_multisets(multisets)
        measure = spec.resolved_measure()
        sizes = _RecordSizes.resolve(profile, measure, spec.intern)
        if algorithm == "minhash":
            jobs = self._estimate_minhash(spec, profile)
        elif algorithm == "sampled":
            jobs = self._estimate_sampled(spec, profile)
        elif algorithm in SEQUENTIAL_ALGORITHMS:
            jobs = self._estimate_sequential(algorithm, profile, cluster)
        elif algorithm == ONLINE_AGGREGATION:
            jobs = (self._estimate_online_aggregation(profile, sizes, cluster)
                    + self._similarity_phase(profile, sizes, cluster))
        elif algorithm == LOOKUP:
            jobs = self._estimate_lookup(profile, sizes, cluster)
        elif algorithm == SHARDING:
            jobs = (self._estimate_sharding(spec, profile, sizes, cluster)
                    + self._similarity_phase(profile, sizes, cluster))
        elif algorithm == VCL:
            jobs = self._estimate_vcl(spec, measure, multisets, profile,
                                      cluster)
        else:
            raise KeyError(f"no cost estimate for algorithm {algorithm!r}")
        return PlanCandidate(algorithm=algorithm, jobs=tuple(jobs))

    # -- shared machinery ---------------------------------------------------

    def _job(self, name: str, cluster: Cluster, *,
             map_records: float = 0, map_bytes_in: float = 0,
             map_bytes_out: float = 0, map_emitted: float = 0,
             map_max_unit: float = 0.0,
             extra_map_work: float = 0.0,
             reduce_records: float = 0, reduce_groups: float = 0,
             reduce_bytes_in: float = 0, reduce_bytes_out: float = 0,
             reduce_max_unit: float = 0.0,
             shuffle_bytes: float = 0, max_group_bytes: float = 0,
             side_data_bytes: float = 0,
             materialises_groups: bool = False) -> PlannedJob:
        """Assemble an estimated :class:`JobStats` and price it.

        ``extra_map_work`` folds combiner work into the map phase, exactly
        where the runner charges it.
        """
        overhead = self.cost_parameters.record_overhead_bytes
        machines = max(1, cluster.num_machines)
        stats = JobStats(job_name=name, num_machines=machines)

        map_total = (map_bytes_in + map_bytes_out
                     + overhead * (map_records + map_emitted)
                     + extra_map_work)
        stats.map.records_in = int(map_records)
        stats.map.records_out = int(map_emitted)
        stats.map.bytes_in = int(map_bytes_in)
        stats.map.bytes_out = int(map_bytes_out)
        stats.map.work_units = map_total
        stats.map.max_unit_work = map_max_unit
        stats.map.machine_work = {0: max(map_total / machines, map_max_unit)}

        reduce_total = (reduce_bytes_in + reduce_bytes_out
                        + overhead * reduce_records)
        stats.reduce.records_in = int(reduce_records)
        stats.reduce.bytes_in = int(reduce_bytes_in)
        stats.reduce.bytes_out = int(reduce_bytes_out)
        stats.reduce.work_units = reduce_total
        stats.reduce.max_unit_work = reduce_max_unit
        stats.reduce.machine_work = {
            0: max(reduce_total / machines, reduce_max_unit)}

        stats.shuffle_bytes = int(shuffle_bytes)
        # As in the runner: the map-side spill writes exactly the shuffled
        # bytes, which is what the disk-I/O cost term (when calibrated)
        # charges for.
        stats.spilled_bytes = int(shuffle_bytes)
        stats.max_group_bytes = int(max_group_bytes)
        stats.reduce_groups = int(reduce_groups)
        stats.side_data_bytes = int(side_data_bytes)
        return PlannedJob(name=name, stats=stats,
                          cost=self.cost_model.job_cost(stats, cluster),
                          materialises_groups=materialises_groups)

    def _similarity_phase(self, profile: CorpusProfile, sizes: _RecordSizes,
                          cluster: Cluster,
                          fused_sim1: bool = False) -> list[PlannedJob]:
        """The shared Similarity1 + Similarity2 steps (paper section 4).

        With ``fused_sim1`` the Similarity1 *reduce* side is priced alone
        (Lookup fuses its own mapper into the job, priced by the caller).
        """
        machines = max(1, cluster.num_machines)
        posting_kv = sizes.keyed(sizes.element, sizes.posting)
        pair_record = _CONTAINER + sizes.pair_key + (_CONTAINER + 2 * _WORD)
        overhead = self.cost_parameters.record_overhead_bytes

        records = profile.num_records
        candidates = profile.candidate_records
        max_df = profile.max_document_frequency
        shuffle = records * posting_kv
        max_group = max_df * posting_kv
        hot_pairs = max_df * (max_df - 1) // 2
        reduce_in = shuffle
        reduce_out = candidates * pair_record
        sim1_reduce = dict(
            reduce_records=records,
            reduce_groups=profile.alphabet_size,
            reduce_bytes_in=reduce_in,
            reduce_bytes_out=reduce_out,
            reduce_max_unit=(max_group + hot_pairs * pair_record
                             + overhead * max_df),
            shuffle_bytes=shuffle,
            max_group_bytes=max_group,
            materialises_groups=True,
        )
        jobs = []
        if not fused_sim1:
            jobs.append(self._job(
                "similarity1", cluster,
                map_records=records,
                map_bytes_in=records * sizes.joined_tuple,
                map_bytes_out=shuffle,
                map_emitted=records,
                map_max_unit=sizes.joined_tuple + posting_kv + 2 * overhead,
                **sim1_reduce))
        else:
            jobs.append(self._job("lookup2+similarity1", cluster,
                                  **sim1_reduce))

        pair_kv = sizes.keyed(sizes.pair_key, sizes.conj)
        sim2_shuffle = candidates * pair_kv
        # Combiners cap any one pair's reduce group at one record per mapper
        # machine; the largest group belongs to the pair sharing the most
        # elements, bounded by the largest multiset.
        max_shared = min(profile.max_cardinality, machines)
        jobs.append(self._job(
            "similarity2", cluster,
            map_records=candidates,
            map_bytes_in=candidates * pair_record,
            map_bytes_out=sim2_shuffle,
            map_emitted=candidates,
            map_max_unit=pair_record + pair_kv + 2 * overhead,
            extra_map_work=(2 * sim2_shuffle + overhead * candidates),
            reduce_records=candidates,
            reduce_groups=candidates,
            reduce_bytes_in=sim2_shuffle,
            reduce_bytes_out=0,
            reduce_max_unit=max_shared * pair_kv + overhead * max_shared,
            shuffle_bytes=sim2_shuffle,
            max_group_bytes=max_shared * pair_kv,
        ))
        return jobs

    def _combined_uni_records(self, profile: CorpusProfile,
                              cluster: Cluster) -> float:
        """Post-combiner count of per-multiset ``Uni`` partial records.

        A multiset spread round-robin across the mappers leaves at most one
        combined record per machine it touched: ``sum_m min(|U(Mi)|, M)``.
        """
        machines = max(1, cluster.num_machines)
        return float(sum(min(cardinality, machines)
                         for cardinality in profile.cardinalities))

    # -- per-algorithm estimates --------------------------------------------

    def _estimate_online_aggregation(self, profile: CorpusProfile,
                                     sizes: _RecordSizes,
                                     cluster: Cluster) -> list[PlannedJob]:
        overhead = self.cost_parameters.record_overhead_bytes
        records = profile.num_records
        uni_value = _CONTAINER + _WORD + sizes.uni
        element_value = _CONTAINER + _WORD + sizes.element + _WORD
        kv_uni = sizes.keyed(sizes.multiset_id, uni_value, secondary=True)
        kv_element = sizes.keyed(sizes.multiset_id, element_value,
                                 secondary=True)
        map_out = records * (kv_uni + kv_element)
        combined_uni = self._combined_uni_records(profile, cluster)
        shuffle = records * kv_element + combined_uni * kv_uni
        max_u = profile.max_cardinality
        machines = max(1, cluster.num_machines)
        max_group = (max_u * kv_element + min(max_u, machines) * kv_uni)
        max_group_records = max_u + min(max_u, machines)
        return [self._job(
            "online_aggregation", cluster,
            map_records=records,
            map_bytes_in=records * sizes.input_tuple,
            map_bytes_out=map_out,
            map_emitted=2 * records,
            map_max_unit=sizes.input_tuple + kv_uni + kv_element + 3 * overhead,
            extra_map_work=(map_out + shuffle + overhead * 2 * records),
            reduce_records=records + combined_uni,
            reduce_groups=profile.num_multisets,
            reduce_bytes_in=shuffle,
            reduce_bytes_out=records * sizes.joined_tuple,
            reduce_max_unit=(max_group + max_u * sizes.joined_tuple
                             + overhead * max_group_records),
            shuffle_bytes=shuffle,
            max_group_bytes=max_group,
        )]

    def _estimate_lookup(self, profile: CorpusProfile, sizes: _RecordSizes,
                         cluster: Cluster) -> list[PlannedJob]:
        overhead = self.cost_parameters.record_overhead_bytes
        machines = max(1, cluster.num_machines)
        records = profile.num_records
        kv_uni = sizes.keyed(sizes.multiset_id, sizes.uni)
        combined = self._combined_uni_records(profile, cluster)
        shuffle = combined * kv_uni
        table_entry = _CONTAINER + sizes.multiset_id + sizes.uni
        max_u = profile.max_cardinality
        lookup1 = self._job(
            "lookup1", cluster,
            map_records=records,
            map_bytes_in=records * sizes.input_tuple,
            map_bytes_out=records * kv_uni,
            map_emitted=records,
            map_max_unit=sizes.input_tuple + kv_uni + 2 * overhead,
            extra_map_work=(records * kv_uni + shuffle + overhead * records),
            reduce_records=combined,
            reduce_groups=profile.num_multisets,
            reduce_bytes_in=shuffle,
            reduce_bytes_out=profile.num_multisets * table_entry,
            reduce_max_unit=(min(max_u, machines) * kv_uni + table_entry
                             + overhead * min(max_u, machines)),
            shuffle_bytes=shuffle,
            max_group_bytes=min(max_u, machines) * kv_uni,
        )

        # Lookup2 fuses with Similarity1: one job maps every raw tuple
        # against the in-memory table and reduces element posting lists.
        # (A dict pays one container overhead total, not one per entry.)
        table_bytes = (_CONTAINER + profile.num_multisets
                       * (sizes.multiset_id + sizes.uni))
        posting_kv = sizes.keyed(sizes.element, sizes.posting)
        fused, similarity2 = self._similarity_phase(profile, sizes, cluster,
                                                    fused_sim1=True)
        fused_map = self._job(
            "_fused_map", cluster,
            map_records=records,
            map_bytes_in=records * sizes.input_tuple,
            map_bytes_out=records * posting_kv,
            map_emitted=records,
            map_max_unit=sizes.input_tuple + posting_kv + 2 * overhead,
        )
        merged_stats = fused.stats
        merged_stats.map = fused_map.stats.map
        merged_stats.side_data_bytes = int(table_bytes)
        fused = PlannedJob(name=fused.name, stats=merged_stats,
                           cost=self.cost_model.job_cost(merged_stats, cluster),
                           materialises_groups=True)
        return [lookup1, fused, similarity2]

    def _estimate_sharding(self, spec: JoinSpec, profile: CorpusProfile,
                           sizes: _RecordSizes,
                           cluster: Cluster) -> list[PlannedJob]:
        overhead = self.cost_parameters.record_overhead_bytes
        machines = max(1, cluster.num_machines)
        records = profile.num_records
        threshold_c = spec.sharding_threshold
        sharded = [u for u in profile.cardinalities if u > threshold_c]
        unsharded = [u for u in profile.cardinalities if u <= threshold_c]
        sharded_records = sum(sharded)
        unsharded_records = records - sharded_records

        kv_contribution = sizes.keyed(sizes.multiset_id,
                                      _CONTAINER + sizes.uni + _WORD)
        combined = self._combined_uni_records(profile, cluster)
        shuffle1 = combined * kv_contribution
        table_entry = _CONTAINER + sizes.multiset_id + sizes.uni
        max_u = profile.max_cardinality
        sharding1 = self._job(
            "sharding1", cluster,
            map_records=records,
            map_bytes_in=records * sizes.input_tuple,
            map_bytes_out=records * kv_contribution,
            map_emitted=records,
            map_max_unit=sizes.input_tuple + kv_contribution + 2 * overhead,
            extra_map_work=(records * kv_contribution + shuffle1
                            + overhead * records),
            reduce_records=combined,
            reduce_groups=profile.num_multisets,
            reduce_bytes_in=shuffle1,
            reduce_bytes_out=len(sharded) * table_entry,
            reduce_max_unit=(min(max_u, machines) * kv_contribution
                             + table_entry
                             + overhead * min(max_u, machines)),
            shuffle_bytes=shuffle1,
            max_group_bytes=min(max_u, machines) * kv_contribution,
        )

        table_bytes = (_CONTAINER
                       + len(sharded) * (sizes.multiset_id + sizes.uni))
        fingerprint_key = _CONTAINER + sizes.multiset_id + _WORD
        kv_sharded = sizes.keyed(
            fingerprint_key,
            _CONTAINER + _WORD + sizes.uni + sizes.element + _WORD)
        kv_unsharded = sizes.keyed(
            fingerprint_key, _CONTAINER + _WORD + sizes.element + _WORD)
        shuffle2 = (sharded_records * kv_sharded
                    + unsharded_records * kv_unsharded)
        # Sharded tuples scatter one record per fingerprint; the largest
        # group is the biggest *unsharded* multiset's full value list.
        max_unsharded = max(unsharded, default=0)
        max_group2 = max(max_unsharded * kv_unsharded, kv_sharded)
        sharding2 = self._job(
            "sharding2", cluster,
            map_records=records,
            map_bytes_in=records * sizes.input_tuple,
            map_bytes_out=shuffle2,
            map_emitted=records,
            map_max_unit=sizes.input_tuple + kv_sharded + 2 * overhead,
            reduce_records=records,
            reduce_groups=sharded_records + len(unsharded),
            reduce_bytes_in=shuffle2,
            reduce_bytes_out=records * sizes.joined_tuple,
            reduce_max_unit=(max_group2
                             + max_unsharded * sizes.joined_tuple
                             + overhead * max(1, max_unsharded)),
            shuffle_bytes=shuffle2,
            max_group_bytes=max_group2,
            side_data_bytes=table_bytes,
            materialises_groups=True,
        )
        return [sharding1, sharding2]

    def _estimate_vcl(self, spec: JoinSpec,
                      measure: NominalSimilarityMeasure,
                      multisets: Sequence[Multiset], profile: CorpusProfile,
                      cluster: Cluster) -> list[PlannedJob]:
        overhead = self.cost_parameters.record_overhead_bytes
        machines = max(1, cluster.num_machines)
        use_frequency = spec.vcl_element_order == "frequency"
        records = profile.num_records
        element_b = profile.avg_element_bytes
        kv_count = _CONTAINER + element_b + _WORD + 1
        combined_counts = float(sum(min(df, machines)
                                    for df in (profile.dictionary.frequency_of(e)
                                               for e in profile.dictionary)))
        frequency_entry = _CONTAINER + element_b + _WORD
        jobs = []
        if use_frequency:
            shuffle_f = combined_counts * kv_count
            max_df = profile.max_document_frequency
            jobs.append(self._job(
                "vcl_frequencies", cluster,
                map_records=profile.num_multisets,
                map_bytes_in=sum(profile.multiset_bytes),
                map_bytes_out=records * kv_count,
                map_emitted=records,
                map_max_unit=(max(profile.multiset_bytes, default=0)
                              + profile.max_cardinality * kv_count
                              + overhead * (1 + profile.max_cardinality)),
                extra_map_work=(records * kv_count + shuffle_f
                                + overhead * records),
                reduce_records=combined_counts,
                reduce_groups=profile.alphabet_size,
                reduce_bytes_in=shuffle_f,
                reduce_bytes_out=profile.alphabet_size * frequency_entry,
                reduce_max_unit=(min(max_df, machines) * kv_count
                                 + frequency_entry
                                 + overhead * min(max_df, machines)),
                shuffle_bytes=shuffle_f,
                max_group_bytes=min(max_df, machines) * kv_count,
            ))

        # The kernel: price replication and group skew from the *actual*
        # prefixes, accumulated per element in one pass.
        rank = frequency_rank_function(
            {element: profile.dictionary.frequency_of(element)
             for element in profile.dictionary}) if use_frequency else None
        if rank is None:
            from repro.vcl.prefix import hash_rank_function
            rank = hash_rank_function()
        replicated_bytes = 0.0
        map_total_extra = 0.0
        max_unit = 0.0
        group_bytes: dict = {}
        group_records: dict = {}
        total_prefix = 0
        for multiset, m_bytes in zip(multisets, profile.multiset_bytes):
            prefix = prefix_elements(multiset, rank, measure, spec.threshold)
            total_prefix += len(prefix)
            emitted = sum(_CONTAINER + estimate_record_bytes(element)
                          + m_bytes + 1 for element in prefix)
            replicated_bytes += emitted
            unit = m_bytes + emitted + overhead * (1 + len(prefix))
            max_unit = max(max_unit, unit)
            map_total_extra += unit
            for element in prefix:
                kv = _CONTAINER + estimate_record_bytes(element) + m_bytes + 1
                group_bytes[element] = group_bytes.get(element, 0.0) + kv
                group_records[element] = group_records.get(element, 0) + 1
        max_group = max(group_bytes.values(), default=0.0)
        hot_element = max(group_records, key=group_records.get, default=None)
        hot_records = group_records.get(hot_element, 0)
        frequency_map_bytes = (_CONTAINER + profile.alphabet_size
                               * (element_b + _WORD)
                               if use_frequency else 0)
        jobs.append(self._job(
            "vcl_kernel", cluster,
            map_records=profile.num_multisets,
            map_bytes_in=sum(profile.multiset_bytes),
            map_bytes_out=replicated_bytes,
            map_emitted=total_prefix,
            map_max_unit=max_unit,
            reduce_records=total_prefix,
            reduce_groups=len(group_bytes),
            reduce_bytes_in=replicated_bytes,
            reduce_bytes_out=0,
            reduce_max_unit=max_group + overhead * hot_records,
            shuffle_bytes=replicated_bytes,
            max_group_bytes=max_group,
            side_data_bytes=frequency_map_bytes,
            materialises_groups=True,
        ))
        # Deduplication: tiny relative to the kernel — candidate *results*
        # only; estimate it as overhead plus a nominal pass.
        jobs.append(self._job("vcl_dedup", cluster))
        return jobs

    def _estimate_sequential(self, algorithm: str, profile: CorpusProfile,
                             cluster: Cluster) -> list[PlannedJob]:
        """A single-machine quadratic (or candidate-driven) in-memory pass.

        Sequential baselines pay no MapReduce start/stop overhead and use
        one machine regardless of the cluster; the estimate reflects that by
        pricing a single pseudo-job with a zeroed overhead component.
        """
        pairs = profile.num_multisets * (profile.num_multisets - 1) / 2
        if algorithm != "exact":
            # Candidate-driven baselines verify roughly the inverted-index
            # candidate volume instead of all pairs.
            pairs = min(pairs, float(profile.candidate_records))
        avg_bytes = _avg_multiset_bytes(profile)
        return [self._in_memory_job(f"{algorithm} (in-memory)",
                                    pairs * 2 * avg_bytes,
                                    profile.num_multisets)]

    def _in_memory_job(self, name: str, work: float,
                       records: int) -> PlannedJob:
        """Price a single-machine in-memory pass: compute only, no overhead."""
        stats = JobStats(job_name=name, num_machines=1)
        stats.map.work_units = work
        stats.map.machine_work = {0: work}
        stats.map.records_in = records
        cost = CostBreakdown(
            overhead_seconds=0.0, side_data_seconds=0.0,
            map_seconds=work / self.cost_parameters.machine_throughput,
            shuffle_seconds=0.0, reduce_seconds=0.0)
        return PlannedJob(name=name, stats=stats, cost=cost)

    def _estimate_minhash(self, spec: JoinSpec,
                          profile: CorpusProfile) -> list[PlannedJob]:
        """Price the MinHash/LSH pipeline: signatures, banding, verification.

        The banding is the one the engine would actually run with
        (:meth:`JoinSpec.resolved_minhash_parameters` — recall-derived when
        the spec sets a target), so a tighter recall demand honestly prices
        as a longer signature.  Candidate volume is the unpruned
        element-sharing pair count thinned by the banding's collision
        probability at the threshold.
        """
        params = spec.resolved_minhash_parameters()
        avg_bytes = _avg_multiset_bytes(profile)
        signature_work = profile.num_records * params.num_hashes * _WORD
        banding_work = (profile.num_multisets * params.num_bands
                        * (_CONTAINER + params.rows_per_band * _WORD))
        collide = params.collision_probability(spec.threshold)
        candidates = profile.candidate_records * collide
        verify_work = candidates * 2 * avg_bytes
        work = signature_work + banding_work + verify_work
        return [self._in_memory_job("minhash (in-memory)", work,
                                    profile.num_multisets)]

    def _estimate_sampled(self, spec: JoinSpec,
                          profile: CorpusProfile) -> list[PlannedJob]:
        """Price the sampled join: a linear sampling pass, then the exact
        quadratic sweep shrunk by the squared keep rate."""
        rate = (sample_rate_for_recall(spec.recall)
                if spec.recall is not None else 1.0)
        avg_bytes = _avg_multiset_bytes(profile)
        pairs = profile.num_multisets * (profile.num_multisets - 1) / 2
        sweep_work = pairs * (rate ** 2) * 2 * avg_bytes
        scan_work = profile.num_multisets * (profile.avg_id_bytes + _WORD)
        return [self._in_memory_job("sampled (in-memory)",
                                    scan_work + sweep_work,
                                    profile.num_multisets)]


def _avg_multiset_bytes(profile: CorpusProfile) -> float:
    """Mean estimated whole-multiset size of the corpus, in bytes."""
    if not profile.num_multisets:
        return 0.0
    return sum(profile.multiset_bytes) / profile.num_multisets
