"""The unified join engine: declarative specs, a cost-model planner, one result.

This package is the single front door to every joining algorithm in the
reproduction.  A :class:`JoinSpec` declares *what* to join, the
:class:`Planner` decides *how* (``algorithm="auto"`` picks the cheapest
pipeline by predicted simulated cost, the way a query optimizer picks a
plan), the :class:`SimilarityEngine` session executes plans on its cluster
and backend, and every path returns the same :class:`JoinResult`.
"""

from repro.engine.calibration import CalibrationProfile, ComponentEstimate
from repro.engine.engine import SimilarityEngine, join
from repro.engine.planner import (
    CorpusProfile,
    JoinPlan,
    PlanCandidate,
    PlannedJob,
    Planner,
)
from repro.engine.result import JoinResult
from repro.engine.spec import (
    APPROXIMATE_ALGORITHMS,
    AUTO,
    ENGINE_ALGORITHMS,
    PLANNABLE_ALGORITHMS,
    SEQUENTIAL_ALGORITHMS,
    JoinSpec,
    available_algorithms,
)

__all__ = [
    "APPROXIMATE_ALGORITHMS",
    "AUTO",
    "CalibrationProfile",
    "ComponentEstimate",
    "CorpusProfile",
    "ENGINE_ALGORITHMS",
    "JoinPlan",
    "JoinResult",
    "JoinSpec",
    "PLANNABLE_ALGORITHMS",
    "PlanCandidate",
    "PlannedJob",
    "Planner",
    "SEQUENTIAL_ALGORITHMS",
    "SimilarityEngine",
    "available_algorithms",
    "join",
]
