"""The unified front door: :class:`SimilarityEngine`.

One session object owns the simulated cluster, the execution backend and
the cost-model calibration; every join — whatever algorithm the spec names
(or lets the planner choose) — goes through :meth:`SimilarityEngine.run`
and comes back as a single :class:`~repro.engine.result.JoinResult`::

    from repro import JoinSpec, SimilarityEngine

    with SimilarityEngine() as engine:
        plan = engine.plan(JoinSpec(threshold=0.5), multisets)
        print(plan.explain())                       # EXPLAIN-style breakdown
        result = engine.run(JoinSpec(threshold=0.5), multisets)
        service = result.to_service(num_shards=4)   # serving handoff

The engine executes plans through the existing drivers
(:class:`~repro.vsmart.driver.VSmartJoin`, :class:`~repro.vcl.driver.VCLJoin`),
the exact in-memory reference join and the sequential baselines, so its
output is bit-identical to calling those paths directly with the same
parameters.
"""

from __future__ import annotations

import time

from repro.baselines.inverted_index import InvertedIndexJoin
from repro.baselines.minhash import MinHashLSHJoin
from repro.baselines.ppjoin import PPJoin
from repro.baselines.sampled import SampledJoin
from repro.core.exceptions import DatasetError, JobConfigurationError
from repro.core.multiset import Multiset
from repro.engine.calibration import CalibrationProfile
from repro.engine.planner import CorpusProfile, JoinPlan, Planner
from repro.engine.result import JoinResult
from repro.engine.spec import AUTO, VCL, JoinSpec
from repro.mapreduce.backends import ExecutionBackend, get_backend
from repro.mapreduce.cluster import Cluster, laptop_cluster
from repro.mapreduce.costmodel import DEFAULT_COST_PARAMETERS, CostParameters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.runner import PipelineResult
from repro.serving.bootstrap import multisets_from_input
from repro.similarity.exact import all_pairs_exact
from repro.vcl.driver import VCLJoin
from repro.vsmart.driver import JOINING_ALGORITHMS, VSmartJoin


class SimilarityEngine:
    """A session that plans and executes declarative similarity joins.

    Parameters
    ----------
    data:
        Optional default corpus; :meth:`run` and :meth:`plan` use it when
        not given one explicitly, so ``SimilarityEngine(corpus)`` followed
        by ``engine.run(JoinSpec(...))`` reads naturally.
    cluster:
        The simulated cluster every run executes on (default: the laptop
        cluster).  A spec's ``cluster`` field overrides per run.
    backend:
        Execution backend name or instance (``"serial"``, ``"thread"``,
        ``"process"``); instances are borrowed, names are owned and closed
        by :meth:`close` / the context manager.
    cost_parameters:
        Cost-model calibration shared by the planner and the runners.
    enforce_budgets:
        Whether per-machine memory/disk budgets abort jobs.
    calibration:
        Optional self-tuning feedback loop: a
        :class:`~repro.engine.calibration.CalibrationProfile`, or a storage
        path/engine to load one from (created fresh over
        ``cost_parameters`` if none is stored, and saved back after every
        observed run).  Every distributed run's measured job statistics are
        folded into the profile, and the session planner prices with the
        profile's learned parameters instead of the fixed constants.
    """

    def __init__(self, data=None, *,
                 cluster: Cluster | None = None,
                 backend: str | ExecutionBackend = "serial",
                 cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                 enforce_budgets: bool = True,
                 calibration: "CalibrationProfile | str | None" = None) -> None:
        self.data = data
        self.cluster = cluster or laptop_cluster()
        self.cost_parameters = cost_parameters
        self.enforce_budgets = enforce_budgets
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = get_backend(backend)
        self._calibration_sink = None
        if calibration is None or isinstance(calibration, CalibrationProfile):
            self.calibration = calibration
        else:
            self.calibration = CalibrationProfile.load_or_create(
                calibration, base=cost_parameters)
            self._calibration_sink = calibration
        self.planner = Planner(cost_parameters, calibration=self.calibration)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the engine's backend when the engine created it."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "SimilarityEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SimilarityEngine(cluster={self.cluster.num_machines} "
                f"machines, backend={type(self.backend).__name__})")

    # -- planning ------------------------------------------------------------

    def profile(self, data=None) -> CorpusProfile:
        """Profile a corpus (defaults to the session corpus)."""
        return CorpusProfile.from_multisets(self._materialise(data))

    def plan(self, spec: JoinSpec | None = None, data=None) -> JoinPlan:
        """Produce the inspectable :class:`JoinPlan` for ``spec``.

        With ``spec.algorithm="auto"`` every distributed candidate is
        costed; an explicit algorithm is costed alone.  ``plan.explain()``
        renders the per-job predicted cost breakdown.
        """
        spec = spec or JoinSpec()
        multisets = self._materialise(data)
        planner = self._planner_for(spec)
        return planner.plan(spec, multisets, self._cluster_for(spec),
                            enforce_budgets=self._enforce_budgets(spec))

    # -- execution -----------------------------------------------------------

    def run(self, spec: JoinSpec | None = None, data=None,
            plan: JoinPlan | None = None) -> JoinResult:
        """Execute ``spec`` over ``data`` and return the unified result.

        ``algorithm="auto"`` plans first (the plan rides along on
        ``result.plan``); explicit algorithms skip the planning pass
        entirely and cost exactly what the legacy drivers cost.  A ``plan``
        already produced by :meth:`plan` for the same spec is reused
        instead of re-profiling the corpus.
        """
        spec = spec or JoinSpec()
        multisets = self._materialise(data)
        algorithm = spec.algorithm
        if plan is not None:
            if plan.spec != spec:
                raise JobConfigurationError(
                    "the supplied plan was produced for a different JoinSpec;"
                    " re-plan with engine.plan(spec, data)")
            algorithm = plan.algorithm
        elif algorithm == AUTO:
            planner = self._planner_for(spec)
            plan = planner.plan(spec, multisets, self._cluster_for(spec),
                                enforce_budgets=self._enforce_budgets(spec))
            algorithm = plan.algorithm
        start = time.perf_counter()
        pairs, pipeline = self._execute(algorithm, spec, multisets)
        wall_seconds = time.perf_counter() - start
        if self.calibration is not None and pipeline.job_stats:
            self._observe_run(spec, algorithm, multisets, plan, pipeline,
                              wall_seconds)
        return JoinResult(spec=spec, algorithm=algorithm, pairs=pairs,
                          pipeline=pipeline, multisets=multisets, plan=plan)

    def materialize(self, spec: JoinSpec | None = None, data=None):
        """Run ``spec`` and return a maintained incremental view of it.

        The join executes exactly as :meth:`run` would; its pairs seed a
        :class:`~repro.streaming.view.JoinView` that stays correct under
        :class:`~repro.streaming.changes.ChangeBatch` mutations without
        re-running the join.  The view borrows this engine for any batch
        it decides to re-join (and for the cost calibration of that
        decision), so close the view's workload before closing the engine.
        """
        return self.run(spec, data).to_view(engine=self)

    # -- internals -----------------------------------------------------------

    def _observe_run(self, spec: JoinSpec, algorithm: str,
                     multisets: list[Multiset], plan: JoinPlan | None,
                     pipeline, wall_seconds: float) -> None:
        """Feed one run's measured job stats into the calibration profile.

        The predicted side is the plan's candidate for the executed
        algorithm when a plan exists (``algorithm="auto"``); explicit runs
        estimate it on demand — that one profiling pass is the price of
        the feedback loop.  A path-backed profile is saved after every
        observation, so learning survives the session unconditionally.
        """
        try:
            candidate = (plan.candidate_for(algorithm) if plan is not None
                         else None)
        except KeyError:
            candidate = None
        if candidate is None:
            candidate = self.planner.estimate(algorithm, spec, multisets,
                                              self._cluster_for(spec))
        self.calibration.observe(candidate, list(pipeline.job_stats),
                                 self._cluster_for(spec),
                                 wall_seconds=wall_seconds)
        if self._calibration_sink is not None:
            self.calibration.save(self._calibration_sink)

    def _materialise(self, data) -> list[Multiset]:
        if data is None:
            if self.data is None:
                raise JobConfigurationError(
                    "no corpus: pass data to run()/plan() or construct the "
                    "engine with a default corpus (SimilarityEngine(data))")
            # The session corpus is materialised exactly once, so a
            # one-shot iterator survives plan() followed by run().
            self.data = _check_unique_ids(multisets_from_input(self.data))
            return self.data
        # Always goes through the serving normaliser: it validates record
        # types (mixed collections raise a ReproError, not a downstream
        # TypeError) and returns multiset lists unchanged.
        return _check_unique_ids(multisets_from_input(data))

    def _cluster_for(self, spec: JoinSpec) -> Cluster:
        return spec.cluster or self.cluster

    def _planner_for(self, spec: JoinSpec) -> Planner:
        if (spec.cost_parameters is None
                or spec.cost_parameters is self.cost_parameters):
            return self.planner
        return Planner(spec.cost_parameters)

    def _enforce_budgets(self, spec: JoinSpec) -> bool:
        return (self.enforce_budgets if spec.enforce_budgets is None
                else spec.enforce_budgets)

    def _run_options(self, spec: JoinSpec) -> dict:
        return {
            "cluster": self._cluster_for(spec),
            "cost_parameters": spec.cost_parameters or self.cost_parameters,
            "enforce_budgets": self._enforce_budgets(spec),
        }

    def _execute(self, algorithm: str, spec: JoinSpec,
                 multisets: list[Multiset]):
        if algorithm in JOINING_ALGORITHMS:
            return self._execute_vsmart(algorithm, spec, multisets)
        if algorithm == VCL:
            return self._execute_vcl(spec, multisets)
        return self._execute_sequential(algorithm, spec, multisets)

    def _with_backend(self, spec: JoinSpec):
        """Resolve the backend for one run: (backend, owned_by_this_run)."""
        if spec.backend is None:
            return self.backend, False
        if isinstance(spec.backend, ExecutionBackend):
            return spec.backend, False
        return get_backend(spec.backend), True

    def _execute_vsmart(self, algorithm: str, spec: JoinSpec,
                        multisets: list[Multiset]):
        backend, owned = self._with_backend(spec)
        try:
            driver = VSmartJoin(spec.vsmart_config(algorithm),
                                backend=backend, **self._run_options(spec))
            result = driver.run(multisets)
        finally:
            if owned:
                backend.close()
        return result.pairs, result.pipeline

    def _execute_vcl(self, spec: JoinSpec, multisets: list[Multiset]):
        backend, owned = self._with_backend(spec)
        try:
            driver = VCLJoin(spec.vcl_config(), backend=backend,
                             **self._run_options(spec))
            result = driver.run(multisets)
        finally:
            if owned:
                backend.close()
        return result.pairs, result.pipeline

    def _execute_sequential(self, algorithm: str, spec: JoinSpec,
                            multisets: list[Multiset]):
        measure = spec.resolved_measure()
        if algorithm == "exact":
            pairs = all_pairs_exact(multisets, measure, spec.threshold,
                                    intern=spec.intern)
        elif algorithm == "inverted_index":
            joiner = InvertedIndexJoin(
                measure, spec.threshold,
                stop_word_frequency=spec.stop_word_frequency)
            pairs = sorted(joiner.run(multisets))
        elif algorithm == "ppjoin":
            pairs = sorted(PPJoin(measure, spec.threshold).run(multisets))
        elif algorithm == "minhash":
            joiner = MinHashLSHJoin(measure.name, spec.threshold,
                                    parameters=spec.resolved_minhash_parameters(),
                                    verify_exact=True)
            pairs = sorted(joiner.run(multisets))
        elif algorithm == "sampled":
            joiner = SampledJoin(measure, spec.threshold,
                                 recall=spec.recall, intern=spec.intern)
            pairs = sorted(joiner.run(multisets))
        else:
            raise JobConfigurationError(
                f"algorithm {algorithm!r} has no engine executor")
        pipeline = PipelineResult(
            name=algorithm,
            output=Dataset(f"{algorithm}:pairs", pairs),
            job_stats=[],
            artifacts={"algorithm": algorithm, "measure": measure.name,
                       "threshold": spec.threshold},
        )
        return pairs, pipeline


def _check_unique_ids(multisets: list[Multiset]) -> list[Multiset]:
    """Reject duplicate multiset ids once, at the engine boundary.

    Several execution paths key intermediate state by multiset id (the
    interning dictionary, the MinHash entity map, serving indexes); a
    duplicate would silently shadow earlier occurrences and produce an
    answer for a corpus the caller never supplied.
    """
    seen: set = set()
    for multiset in multisets:
        if multiset.id in seen:
            raise DatasetError(
                f"duplicate multiset id {multiset.id!r}: every multiset in "
                "a join must have a unique identifier")
        seen.add(multiset.id)
    return multisets


def join(data, *, cluster: Cluster | None = None,
         backend: str | ExecutionBackend = "serial",
         cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
         enforce_budgets: bool = True,
         calibration: "CalibrationProfile | str | None" = None,
         **spec_fields) -> JoinResult:
    """One-call declarative join: build a spec, run it, return the result.

    The keyword arguments are :class:`~repro.engine.spec.JoinSpec` fields
    (``measure``, ``threshold``, ``algorithm``, ...)::

        result = join(multisets, measure="ruzicka", threshold=0.5)
        for pair in result:
            ...

    A throwaway :class:`SimilarityEngine` session owns the infrastructure
    for the duration of the call; construct the engine yourself to amortise
    a backend or plan/inspect before running.
    """
    spec = JoinSpec(**spec_fields)
    with SimilarityEngine(cluster=cluster, backend=backend,
                          cost_parameters=cost_parameters,
                          enforce_budgets=enforce_budgets,
                          calibration=calibration) as engine:
        return engine.run(spec, data)
