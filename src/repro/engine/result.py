"""The single result type every engine execution path returns.

Whatever algorithm a :class:`~repro.engine.spec.JoinSpec` resolved to — a
V-SMART-Join pipeline, the VCL baseline, the exact in-memory join or a
sequential baseline — the engine hands back one :class:`JoinResult` with a
uniform surface: lazy pair iteration, the merged pipeline ``counters()``,
``simulated_seconds`` and per-job ``stats_for()``, plus handoffs into the
serving subsystem (:meth:`JoinResult.to_index` / :meth:`JoinResult.to_service`)
and a portable :meth:`JoinResult.to_jsonl` export.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterator, Sequence

from repro.core.exceptions import DatasetError, StreamingError
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair
from repro.engine.planner import JoinPlan
from repro.engine.spec import APPROXIMATE_ALGORITHMS, JoinSpec
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.runner import PipelineResult
from repro.mapreduce.types import JobStats


@dataclass
class JoinResult:
    """The outcome of one engine run: pairs, statistics and handoffs."""

    spec: JoinSpec
    #: The concrete algorithm that executed (never ``"auto"``).
    algorithm: str
    #: Usually a list; a result loaded lazily from storage carries a
    #: disk-backed :class:`~repro.storage.StoredPairSequence` instead.
    pairs: Sequence[SimilarPair]
    pipeline: PipelineResult
    #: The corpus the join ran over (feeds the serving handoffs).
    multisets: list[Multiset] = field(default_factory=list, repr=False)
    #: The plan that chose the algorithm, when one was computed.
    plan: JoinPlan | None = None

    # -- uniform statistics surface -----------------------------------------

    def __iter__(self) -> Iterator[SimilarPair]:
        """Iterate the similar pairs lazily, in canonical order."""
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def config(self) -> JoinSpec:
        """Legacy-compatible alias: consumers of the driver results (for
        example :func:`repro.serving.bootstrap_from_join`) read
        ``result.config.measure`` / ``.threshold`` /
        ``.stop_word_frequency``; the spec carries all three."""
        return self.spec

    @property
    def exact(self) -> bool:
        """Whether this result provably contains *every* qualifying pair.

        ``False`` when the executed algorithm belongs to the approximate
        tier (``minhash``, ``sampled`` — both may miss true pairs) or when
        the spec filtered stop words (pairs are computed on filtered data).
        Derived, not stored, so results loaded from storage report it
        correctly too.
        """
        return (self.algorithm not in APPROXIMATE_ALGORITHMS
                and self.spec.stop_word_frequency is None)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated run time (0.0 for in-memory algorithms)."""
        return self.pipeline.simulated_seconds

    @property
    def joining_seconds(self) -> float | None:
        """Simulated joining-phase time (V-SMART-Join pipelines only)."""
        return self.pipeline.artifacts.get("joining_seconds")

    @property
    def similarity_seconds(self) -> float | None:
        """Simulated similarity-phase time (V-SMART-Join pipelines only)."""
        return self.pipeline.artifacts.get("similarity_seconds")

    @property
    def predicted_seconds(self) -> float | None:
        """The planner's prediction for the executed pipeline, if planned."""
        return self.plan.predicted_seconds if self.plan is not None else None

    def counters(self) -> dict[str, int]:
        """All job counters summed over the pipeline (empty if in-memory)."""
        return self.pipeline.counters()

    def stats_for(self, job_name: str) -> JobStats:
        """The measured statistics of one pipeline job, by name."""
        return self.pipeline.stats_for(job_name)

    def job_names(self) -> list[str]:
        """The executed pipeline's job names, in order."""
        return [stats.job_name for stats in self.pipeline.job_stats]

    def explain(self) -> str:
        """The plan explanation, or a one-line summary if nothing was planned."""
        if self.plan is not None:
            return self.plan.explain()
        return (f"JoinResult: algorithm={self.algorithm!r} "
                f"(explicit; {len(self.pairs)} pairs, "
                f"{self.simulated_seconds:,.0f} simulated seconds)")

    # -- handoffs ------------------------------------------------------------

    def to_index(self, **index_options):
        """Build a serving :class:`~repro.serving.index.SimilarityIndex`
        over the joined corpus (same measure, interning mode inherited)."""
        from repro.serving.index import SimilarityIndex

        index_options.setdefault("intern", self.spec.intern)
        index = SimilarityIndex(self.spec.resolved_measure(), **index_options)
        for multiset in self.multisets:
            index.add(multiset)
        return index

    def to_service(self, num_shards: int = 1, **bootstrap_options):
        """Warm-start a sharded serving fleet from this join's pairs.

        Delegates to :func:`repro.serving.bootstrap_from_join`; the result's
        pairs seed every member's threshold-query cache.  Joins that ran
        with stop-word pruning cannot warm caches (their pairs do not match
        live-query answers) — the bootstrap rejects that, as it always has.
        """
        from repro.serving.bootstrap import bootstrap_from_join

        return bootstrap_from_join(self.multisets, self,
                                   num_shards=num_shards, **bootstrap_options)

    def to_view(self, engine=None):
        """Turn this result into a maintained incremental
        :class:`~repro.streaming.view.JoinView`.

        The view starts from this result's pairs (no recomputation) and
        applies mutation batches exactly.  ``engine`` is the session the
        view's re-join strategy executes on (borrowed); without one, each
        re-join creates a throwaway serial engine.  Approximate results
        (:attr:`exact` is ``False`` — the approximate tier or a
        stop-word-filtered join) cannot seed an exact view and are
        rejected.
        """
        from repro.streaming.view import JoinView

        if not self.exact:
            raise StreamingError(
                f"cannot maintain an exact view over the approximate "
                f"{self.algorithm!r} result: it may already be missing true "
                "pairs; re-run with an exact algorithm (or recall=None)")
        return JoinView(self.spec, self.multisets, pairs=self.pairs,
                        engine=engine)

    def to_jsonl(self, destination: str | IO[str]) -> int:
        """Write one JSON object per similar pair; returns the pair count.

        ``destination`` is a path or an open text handle.  Identifiers that
        are not JSON-representable are rendered through ``repr``.
        """
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.to_jsonl(handle)
        count = 0
        for pair in self.pairs:
            destination.write(json.dumps({
                "first": _jsonable(pair.first),
                "second": _jsonable(pair.second),
                "similarity": pair.similarity,
            }))
            destination.write("\n")
            count += 1
        return count

    @classmethod
    def from_jsonl(cls, source: str | IO[str],
                   spec: JoinSpec | None = None,
                   algorithm: str = "import") -> "JoinResult":
        """Read a :meth:`to_jsonl` export back as a result.

        ``source`` is a path or an open text handle; blank and trailing
        lines are tolerated.  The export carries only the pairs, so the
        returned result has an empty corpus and, unless ``spec`` is given,
        a default :class:`JoinSpec` — enough for iteration, ``to_sqlite``
        and downstream reporting, not for the serving handoffs (which need
        the multisets).  Note ``to_jsonl`` renders non-JSON identifiers
        through ``repr``; those round-trip as their string rendering.
        """
        if isinstance(source, str):
            with open(source, encoding="utf-8") as handle:
                return cls.from_jsonl(handle, spec=spec, algorithm=algorithm)
        pairs = []
        for number, line in enumerate(source, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                pairs.append(SimilarPair.make(record["first"],
                                              record["second"],
                                              float(record["similarity"])))
            except (TypeError, ValueError, KeyError) as error:
                raise DatasetError(
                    f"line {number} is not a similar-pair record "
                    f"({error}): {line.strip()!r}") from None
        if spec is None:
            spec = JoinSpec(algorithm="exact")
        return cls(spec=spec, algorithm=algorithm, pairs=pairs,
                   pipeline=PipelineResult(
                       name=algorithm,
                       output=Dataset(f"{algorithm}:pairs", pairs)))

    def to_sqlite(self, destination) -> int:
        """Persist this result into a SQLite database; returns the pair count.

        ``destination`` is a database path or an open
        :class:`~repro.storage.StorageEngine`.  The spec, the concrete
        algorithm, the joined corpus and the pairs (in result order) are
        stored; :meth:`from_sqlite` loads them back with lazy pair
        iteration.
        """
        from repro.storage import ResultStore

        with ResultStore(destination) as store:
            return store.save(self)

    @classmethod
    def from_sqlite(cls, source, *, lazy: bool = True) -> "JoinResult":
        """Load a result stored by :meth:`to_sqlite`.

        With ``lazy=True`` (the default) ``result.pairs`` streams from the
        database on demand — ``len()``, indexing and iteration never
        materialize the full pair set in memory.
        """
        from repro.storage import ResultStore

        with ResultStore(source) as store:
            return store.load(lazy=lazy)


def _jsonable(identifier: object) -> object:
    """A JSON-safe rendering of a multiset identifier."""
    if identifier is None or isinstance(identifier, (str, int, float, bool)):
        return identifier
    return repr(identifier)
