"""Reading and writing datasets as tab-separated files.

The raw-input representation of the paper — one ``<Mi, a_k, f_ik>`` record
per (multiset, element) incidence — maps naturally onto a three-column TSV
file.  These helpers round-trip datasets to disk so that examples and
benchmarks can persist generated workloads and users can feed their own data
into the library.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.core.exceptions import DatasetError
from repro.core.multiset import Multiset
from repro.core.records import InputTuple, assemble_multisets, explode_multisets


def write_input_tuples(path: str | os.PathLike,
                       records: Iterable[InputTuple]) -> int:
    """Write raw input tuples to a TSV file; returns the number of rows."""
    rows = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(f"{record.multiset_id}\t{record.element}\t"
                         f"{int(record.multiplicity)}\n")
            rows += 1
    return rows


def read_input_tuples(path: str | os.PathLike) -> list[InputTuple]:
    """Read raw input tuples from a TSV file written by :func:`write_input_tuples`."""
    records: list[InputTuple] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise DatasetError(
                    f"{path}:{line_number}: expected 3 tab-separated columns, "
                    f"got {len(parts)}")
            multiset_id, element, multiplicity = parts
            try:
                records.append(InputTuple(multiset_id, element, int(multiplicity)))
            except ValueError as error:
                raise DatasetError(
                    f"{path}:{line_number}: invalid multiplicity "
                    f"{multiplicity!r}") from error
    return records


def write_multisets(path: str | os.PathLike,
                    multisets: Iterable[Multiset]) -> int:
    """Write multisets as exploded raw tuples; returns the number of rows."""
    return write_input_tuples(path, explode_multisets(multisets))


def read_multisets(path: str | os.PathLike) -> list[Multiset]:
    """Read multisets from a TSV file of raw tuples."""
    assembled = assemble_multisets(read_input_tuples(path))
    return [assembled[key] for key in sorted(assembled, key=repr)]


def write_similar_pairs(path: str | os.PathLike, pairs) -> int:
    """Write similar pairs as a three-column TSV; returns the number of rows."""
    rows = 0
    with open(path, "w", encoding="utf-8") as handle:
        for pair in pairs:
            handle.write(f"{pair.first}\t{pair.second}\t{pair.similarity:.6f}\n")
            rows += 1
    return rows
