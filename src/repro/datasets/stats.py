"""Distribution statistics for generated datasets (paper Fig. 2 and Fig. 3).

Figure 2 of the paper plots the distribution of the number of elements per
multiset (how many distinct cookies each IP observed); Figure 3 plots the
distribution of the number of multisets per element (how many IPs share each
cookie).  Both are heavy-tailed.  These helpers compute the same histograms
— optionally log-binned, which is how such distributions are usually
plotted — plus simple tail summaries used by the benchmarks to verify the
generated skew.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.multiset import Multiset


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a discrete positive-valued distribution."""

    count: int
    minimum: int
    maximum: int
    mean: float
    median: float
    percentile_90: float
    percentile_99: float
    #: Fraction of the total mass contributed by the top 1% largest values —
    #: a simple skew indicator (0.01 would be a uniform distribution).
    top_1_percent_share: float


def elements_per_multiset(multisets: Iterable[Multiset]) -> list[int]:
    """The per-multiset distinct-element counts (Fig. 2 raw values)."""
    return [multiset.underlying_cardinality for multiset in multisets]


def multisets_per_element(multisets: Iterable[Multiset]) -> list[int]:
    """The per-element frequencies ``Freq(a_k)`` (Fig. 3 raw values)."""
    frequencies: Counter = Counter()
    for multiset in multisets:
        for element in multiset.underlying_set:
            frequencies[element] += 1
    return sorted(frequencies.values(), reverse=True)


def frequency_histogram(values: Sequence[int]) -> dict[int, int]:
    """Histogram mapping each value to the number of occurrences."""
    return dict(Counter(values))


def log_binned_histogram(values: Sequence[int], base: float = 2.0) -> list[tuple[int, int, int]]:
    """Histogram with exponentially growing bins ``[base^i, base^(i+1))``.

    Returns ``(bin_lower, bin_upper_exclusive, count)`` triples; this is the
    representation the Fig. 2 / Fig. 3 benchmarks print, mirroring how such
    skewed distributions are plotted on log-log axes.
    """
    if base <= 1.0:
        raise ValueError("log-bin base must be greater than 1")
    counts: Counter = Counter()
    for value in values:
        if value < 1:
            continue
        bin_index = int(math.floor(math.log(value, base)))
        counts[bin_index] += 1
    histogram = []
    for bin_index in sorted(counts):
        lower = int(base ** bin_index)
        upper = int(base ** (bin_index + 1))
        histogram.append((lower, upper, counts[bin_index]))
    return histogram


def summarise_distribution(values: Sequence[int]) -> DistributionSummary:
    """Summarise a distribution of positive integers."""
    if not values:
        return DistributionSummary(0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(values)
    count = len(ordered)
    total = sum(ordered)
    top_count = max(1, count // 100)
    top_share = sum(ordered[-top_count:]) / total if total else 0.0
    return DistributionSummary(
        count=count,
        minimum=ordered[0],
        maximum=ordered[-1],
        mean=total / count,
        median=_percentile(ordered, 50.0),
        percentile_90=_percentile(ordered, 90.0),
        percentile_99=_percentile(ordered, 99.0),
        top_1_percent_share=top_share,
    )


def skew_ratio(values: Sequence[int]) -> float:
    """Max-to-mean ratio — the load-imbalance indicator the paper reasons with."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return max(values) / mean if mean else 0.0


def _percentile(ordered: Sequence[int], percentile: float) -> float:
    """Linear-interpolation percentile of an already sorted sequence."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (percentile / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return float(ordered[lower])
    fraction = rank - lower
    return float(ordered[lower] * (1 - fraction) + ordered[upper] * fraction)
