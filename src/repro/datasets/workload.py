"""Query-workload generation for the serving benchmarks.

Online similarity traffic is as skewed as the data itself: a few hot
entities are queried over and over (the proxies everybody investigates)
while the long tail is touched once.  The generator reproduces that with a
bounded Zipf distribution over the indexed multisets — the same machinery
as the dataset generators (:mod:`repro.datasets.zipf`) — so the serving
benchmarks exercise realistic cache behaviour: repeated queries hit the LRU
result cache, the tail misses it.

Optionally, a fraction of the queries are *perturbed* copies of their source
multiset (an element dropped, a multiplicity bumped), modelling lookups for
entities that drifted since the index was built; perturbed queries defeat
the result cache, bounding the hit rate the way fresh traffic does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.multiset import Multiset, content_signature
from repro.datasets.zipf import BoundedZipf


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters of a synthetic query replay."""

    num_queries: int = 1_000
    #: Zipf exponent of the query popularity ranks (1.0+ = heavy repeats).
    zipf_exponent: float = 1.2
    #: Probability that a query is a perturbed copy of its source multiset.
    perturbation_probability: float = 0.0
    #: Random seed.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise DatasetError(
                f"num_queries must be non-negative, got {self.num_queries}")
        if self.zipf_exponent <= 0:
            raise DatasetError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}")
        if not (0.0 <= self.perturbation_probability <= 1.0):
            raise DatasetError("perturbation_probability must be in [0, 1]")


def generate_query_workload(multisets: Sequence[Multiset],
                            config: QueryWorkloadConfig | None = None,
                            ) -> list[Multiset]:
    """Generate a Zipf-skewed replay of queries against ``multisets``.

    Each query is a copy of a member multiset (under a fresh ``q<i>``
    identifier so queries never collide with indexed entities), drawn with
    Zipf-skewed popularity: the member at popularity rank 1 is queried far
    more often than the tail.  Popularity ranks are a random permutation of
    the members, so hot queries are not biased toward any generation order.
    """
    config = config or QueryWorkloadConfig()
    if not multisets:
        raise DatasetError("cannot generate a query workload over no multisets")
    rng = np.random.default_rng(config.seed)
    rank_to_member = rng.permutation(len(multisets))
    distribution = BoundedZipf(len(multisets), config.zipf_exponent)
    ranks = distribution.sample(rng, config.num_queries)

    queries: list[Multiset] = []
    for position, rank in enumerate(ranks):
        source = multisets[int(rank_to_member[int(rank) - 1])]
        query = source.with_id(f"q{position:06d}")
        if (config.perturbation_probability > 0.0
                and rng.random() < config.perturbation_probability):
            query = _perturb(query, rng)
        queries.append(query)
    return queries


def _perturb(query: Multiset, rng: np.random.Generator) -> Multiset:
    """Return a slightly drifted copy: drop one element, bump another."""
    counts = query.counts()
    if not counts:
        return query
    if len(counts) > 1:
        elements = list(counts)
        del counts[elements[int(rng.integers(0, len(elements)))]]
    bumped = list(counts)[int(rng.integers(0, len(counts)))]
    counts[bumped] += 1
    return Multiset(query.id, counts)


def workload_statistics(queries: Sequence[Multiset]) -> dict[str, float]:
    """Summarise a workload: distinct signatures and repeat (cacheable) rate.

    Distinctness uses the same content signature the serving result cache
    keys on, so ``repeat_rate`` predicts the cache-hit ceiling of a replay.
    """
    signatures = {content_signature(query) for query in queries}
    total = len(queries)
    distinct = len(signatures)
    return {
        "num_queries": total,
        "distinct_queries": distinct,
        "repeat_rate": (total - distinct) / total if total else 0.0,
    }
