"""Query- and mutation-workload generation for the serving benchmarks.

Online similarity traffic is as skewed as the data itself: a few hot
entities are queried over and over (the proxies everybody investigates)
while the long tail is touched once.  The generator reproduces that with a
bounded Zipf distribution over the indexed multisets — the same machinery
as the dataset generators (:mod:`repro.datasets.zipf`) — so the serving
benchmarks exercise realistic cache behaviour: repeated queries hit the LRU
result cache, the tail misses it.

Optionally, a fraction of the queries are *perturbed* copies of their source
multiset (an element dropped, a multiplicity bumped), modelling lookups for
entities that drifted since the index was built; perturbed queries defeat
the result cache, bounding the hit rate the way fresh traffic does.

*Write* traffic is skewed the same way: the hot entities accumulate new
observations (updates), fresh entities appear (inserts) and dead ones are
retired (deletes).  :func:`generate_mutation_stream` replays that churn as
seeded :class:`~repro.streaming.changes.ChangeBatch` sequences against an
evolving live set, with a Zipf-skewed choice of update/delete targets, for
the incremental view-maintenance subsystem and its benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.multiset import Multiset, content_signature
from repro.datasets.zipf import BoundedZipf


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters of a synthetic query replay."""

    num_queries: int = 1_000
    #: Zipf exponent of the query popularity ranks (1.0+ = heavy repeats).
    zipf_exponent: float = 1.2
    #: Probability that a query is a perturbed copy of its source multiset.
    perturbation_probability: float = 0.0
    #: Random seed.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise DatasetError(
                f"num_queries must be non-negative, got {self.num_queries}")
        if self.zipf_exponent <= 0:
            raise DatasetError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}")
        if not (0.0 <= self.perturbation_probability <= 1.0):
            raise DatasetError("perturbation_probability must be in [0, 1]")


def generate_query_workload(multisets: Sequence[Multiset],
                            config: QueryWorkloadConfig | None = None,
                            ) -> list[Multiset]:
    """Generate a Zipf-skewed replay of queries against ``multisets``.

    Each query is a copy of a member multiset (under a fresh ``q<i>``
    identifier so queries never collide with indexed entities), drawn with
    Zipf-skewed popularity: the member at popularity rank 1 is queried far
    more often than the tail.  Popularity ranks are a random permutation of
    the members, so hot queries are not biased toward any generation order.
    """
    config = config or QueryWorkloadConfig()
    if not multisets:
        raise DatasetError("cannot generate a query workload over no multisets")
    rng = np.random.default_rng(config.seed)
    rank_to_member = rng.permutation(len(multisets))
    distribution = BoundedZipf(len(multisets), config.zipf_exponent)
    ranks = distribution.sample(rng, config.num_queries)

    queries: list[Multiset] = []
    for position, rank in enumerate(ranks):
        source = multisets[int(rank_to_member[int(rank) - 1])]
        query = source.with_id(f"q{position:06d}")
        if (config.perturbation_probability > 0.0
                and rng.random() < config.perturbation_probability):
            query = _perturb(query, rng)
        queries.append(query)
    return queries


def _perturb(query: Multiset, rng: np.random.Generator) -> Multiset:
    """Return a slightly drifted copy: drop one element, bump another."""
    counts = query.counts()
    if not counts:
        return query
    if len(counts) > 1:
        elements = list(counts)
        del counts[elements[int(rng.integers(0, len(elements)))]]
    bumped = list(counts)[int(rng.integers(0, len(counts)))]
    counts[bumped] += 1
    return Multiset(query.id, counts)


@dataclass(frozen=True)
class MutationStreamConfig:
    """Parameters of a synthetic mutation (churn) stream.

    Each batch holds ``batch_size`` changes drawn from the configured
    update / insert / delete mix.  Updates and deletes pick their targets
    with Zipf-skewed popularity over the live entities (hot entities churn
    most, like the query side); updates perturb the target's current
    contents, inserts add perturbed copies of a popular entity under fresh
    identifiers.  The stream is internally consistent: deletes always name
    an entity that is live at that point, and the live set never empties.
    """

    num_batches: int = 10
    batch_size: int = 20
    #: Fractions of the update / insert / delete mix (must sum to 1).
    update_fraction: float = 0.6
    insert_fraction: float = 0.2
    delete_fraction: float = 0.2
    #: Zipf exponent of the target popularity ranks.
    zipf_exponent: float = 1.2
    #: Random seed.
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_batches < 0:
            raise DatasetError(
                f"num_batches must be non-negative, got {self.num_batches}")
        if self.batch_size < 1:
            raise DatasetError(
                f"batch_size must be >= 1, got {self.batch_size}")
        fractions = (self.update_fraction, self.insert_fraction,
                     self.delete_fraction)
        if any(fraction < 0 for fraction in fractions):
            raise DatasetError("churn-mix fractions must be non-negative")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise DatasetError(
                f"churn-mix fractions must sum to 1, got {sum(fractions)}")
        if self.zipf_exponent <= 0:
            raise DatasetError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}")


def generate_mutation_stream(multisets: Sequence[Multiset],
                             config: MutationStreamConfig | None = None):
    """Generate seeded churn against ``multisets``: a list of change batches.

    The batches are applicable in order to any view or index loaded with
    ``multisets``: every delete names an identifier that is live at that
    point in the stream, updates rewrite live entities (Zipf-skewed toward
    the popular head, which stays hot for the whole stream), and inserts
    introduce fresh ``n<i>`` identifiers that never collide with existing
    ones.  The generator never lets the live set drop below one entity (a
    delete that would do so becomes an insert).
    """
    # Deferred: repro.streaming imports the engine machinery, and the
    # dataset package must stay importable without it at module-load time.
    from repro.streaming.changes import Change, ChangeBatch

    config = config or MutationStreamConfig()
    if not multisets:
        raise DatasetError("cannot generate a mutation stream over no multisets")
    rng = np.random.default_rng(config.seed)
    # Fixed popularity order: a random permutation of the initial members,
    # with inserted entities appended to the cold tail.
    order = [multiset.id
             for multiset in (multisets[int(position)]
                              for position in rng.permutation(len(multisets)))]
    live: dict = {multiset.id: multiset for multiset in multisets}
    distribution = BoundedZipf(len(multisets), config.zipf_exponent)
    inserted = 0
    batches = []
    for _batch in range(config.num_batches):
        changes = []
        for _change in range(config.batch_size):
            rank = distribution.sample_one(rng)
            target_id = order[(rank - 1) % len(order)]
            draw = rng.random()
            if draw < config.update_fraction:
                replacement = _perturb(live[target_id], rng)
                live[target_id] = replacement
                changes.append(Change.upsert(replacement))
            elif (draw < config.update_fraction + config.insert_fraction
                  or len(live) <= 1):
                fresh_id = f"n{inserted:06d}"
                inserted += 1
                fresh = _perturb(live[target_id], rng).with_id(fresh_id)
                live[fresh_id] = fresh
                order.append(fresh_id)
                changes.append(Change.upsert(fresh))
            else:
                live.pop(target_id)
                order.remove(target_id)
                changes.append(Change.delete(target_id))
        batches.append(ChangeBatch(changes))
    return batches


@dataclass(frozen=True)
class RequestWorkloadConfig:
    """Parameters of a synthetic unified-API request replay.

    Builds on :class:`QueryWorkloadConfig` for the query multisets, then
    wraps each one in a :class:`~repro.serving.api.QueryRequest` with a
    configured threshold / top-k mix — the request stream the serving tier
    and its HTTP front end execute directly.
    """

    num_requests: int = 1_000
    #: Fraction of requests that are threshold queries (the rest are top-k).
    threshold_fraction: float = 0.7
    #: Similarity threshold of the threshold requests.
    threshold: float = 0.5
    #: ``k`` of the top-k requests.
    k: int = 10
    #: Zipf exponent of the query popularity ranks.
    zipf_exponent: float = 1.2
    #: Probability that a query is a perturbed copy of its source multiset.
    perturbation_probability: float = 0.0
    #: Random seed.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise DatasetError(
                f"num_requests must be non-negative, got {self.num_requests}")
        if not (0.0 <= self.threshold_fraction <= 1.0):
            raise DatasetError("threshold_fraction must be in [0, 1]")
        if not (0.0 < self.threshold <= 1.0):
            raise DatasetError(
                f"threshold must be in (0, 1], got {self.threshold}")
        if self.k < 1:
            raise DatasetError(f"k must be >= 1, got {self.k}")
        if self.zipf_exponent <= 0:
            raise DatasetError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}")
        if not (0.0 <= self.perturbation_probability <= 1.0):
            raise DatasetError("perturbation_probability must be in [0, 1]")


def generate_request_workload(multisets: Sequence[Multiset],
                              config: RequestWorkloadConfig | None = None):
    """Generate a seeded stream of :class:`~repro.serving.api.QueryRequest`.

    The query multisets come from :func:`generate_query_workload` (same
    Zipf-skewed popularity and optional perturbation); each is wrapped as a
    threshold or top-k request per the configured mix.  The kind draw uses
    its own seeded stream, so the multiset sequence is identical for every
    mix — mix sweeps compare like against like.
    """
    # Deferred: the dataset package stays importable without the serving
    # machinery at module-load time (same idiom as the streaming import).
    from repro.serving.api import QueryRequest

    config = config or RequestWorkloadConfig()
    queries = generate_query_workload(multisets, QueryWorkloadConfig(
        num_queries=config.num_requests,
        zipf_exponent=config.zipf_exponent,
        perturbation_probability=config.perturbation_probability,
        seed=config.seed))
    kind_rng = np.random.default_rng(config.seed + 1)
    requests = []
    for query in queries:
        if kind_rng.random() < config.threshold_fraction:
            requests.append(QueryRequest.threshold(query, config.threshold))
        else:
            requests.append(QueryRequest.topk(query, config.k))
    return requests


def generate_open_loop_arrivals(num_requests: int, rate_per_second: float,
                                *, seed: int = 13) -> list[float]:
    """Poisson-process arrival offsets (seconds) for an open-loop replay.

    Closed-loop load generators hide queueing collapse: a slow server slows
    its own clients down, so the measured latency stays flat.  Open-loop
    replay fires requests at their scheduled arrival times regardless of
    completions — the standard way to observe latency under a fixed offered
    load.  Inter-arrival gaps are exponential with mean ``1/rate``, so the
    offsets form a seeded Poisson process starting at 0.0.
    """
    if num_requests < 0:
        raise DatasetError(
            f"num_requests must be non-negative, got {num_requests}")
    if rate_per_second <= 0:
        raise DatasetError(
            f"rate_per_second must be positive, got {rate_per_second}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_second, size=max(num_requests, 0))
    offsets: list[float] = []
    elapsed = 0.0
    for position, gap in enumerate(gaps):
        if position > 0:
            elapsed += float(gap)
        offsets.append(elapsed)
    return offsets


def workload_statistics(queries: Sequence[Multiset]) -> dict[str, float]:
    """Summarise a workload: distinct signatures and repeat (cacheable) rate.

    Distinctness uses the same content signature the serving result cache
    keys on, so ``repeat_rate`` predicts the cache-hit ceiling of a replay.
    """
    signatures = {content_signature(query) for query in queries}
    total = len(queries)
    distinct = len(signatures)
    return {
        "num_queries": total,
        "distinct_queries": distinct,
        "repeat_rate": (total - distinct) / total if total else 0.0,
    }
