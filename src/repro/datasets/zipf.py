"""Bounded Zipf sampling utilities.

The paper's motivation is the skew of Internet traffic: both the number of
cookies observed per IP (Fig. 2) and the number of IPs sharing a cookie
(Fig. 3) follow heavy-tailed distributions.  The synthetic workload
generator reproduces that skew with bounded Zipf distributions — power-law
probabilities over a finite support — sampled deterministically from a
seeded NumPy generator.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import DatasetError


class BoundedZipf:
    """A Zipf (power-law) distribution truncated to ``{1, ..., support}``.

    ``P(k) ∝ 1 / k**exponent``.  Unlike :func:`numpy.random.zipf`, the
    support is bounded, which keeps the generated dataset sizes predictable,
    and exponents at or below 1 are allowed (they simply produce flatter
    skews).
    """

    def __init__(self, support: int, exponent: float) -> None:
        if support < 1:
            raise DatasetError(f"Zipf support must be at least 1, got {support}")
        if exponent <= 0:
            raise DatasetError(f"Zipf exponent must be positive, got {exponent}")
        self.support = int(support)
        self.exponent = float(exponent)
        ranks = np.arange(1, self.support + 1, dtype=np.float64)
        weights = ranks ** (-self.exponent)
        self._probabilities = weights / weights.sum()

    @property
    def probabilities(self) -> np.ndarray:
        """The normalised probability of each rank, rank 1 first."""
        return self._probabilities

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` ranks in ``{1, ..., support}`` (1-based)."""
        if size < 0:
            raise DatasetError(f"sample size must be non-negative, got {size}")
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return rng.choice(self.support, size=size, p=self._probabilities) + 1

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single rank."""
        return int(self.sample(rng, 1)[0])

    def mean(self) -> float:
        """The expected rank of the bounded distribution."""
        ranks = np.arange(1, self.support + 1, dtype=np.float64)
        return float((ranks * self._probabilities).sum())


def clipped_zipf_sizes(rng: np.random.Generator, count: int, support: int,
                       exponent: float, minimum: int = 1) -> np.ndarray:
    """Sample ``count`` sizes from a bounded Zipf, clipped below ``minimum``.

    Used for per-entity cardinalities: most entities are small, a few are
    enormous — the skew the Sharding algorithm exploits.
    """
    distribution = BoundedZipf(support, exponent)
    sizes = distribution.sample(rng, count)
    return np.maximum(sizes, minimum)
