"""Synthetic document / shingle workload.

The paper's related work (Broder et al.) motivates similarity joins with
near-duplicate document detection: each document is represented as the
multiset of its word shingles (fixed-length word windows) and similar
documents are near-duplicates.  This generator produces a corpus of base
documents plus controlled near-duplicates (word substitutions, deletions and
paragraph shuffles), along with the ground-truth duplicate clusters, and
shingles each document into a multiset.  It backs the document-deduplication
example and the tests that exercise the framework on a second domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.multiset import Multiset


@dataclass(frozen=True)
class DocumentCorpusConfig:
    """Parameters of the synthetic near-duplicate document corpus."""

    num_base_documents: int = 40
    words_per_document: int = 200
    vocabulary_size: int = 800
    #: Number of near-duplicates generated per base document (0 or more).
    duplicates_per_document: int = 2
    #: Fraction of words perturbed when creating a near-duplicate.
    mutation_rate: float = 0.08
    #: Shingle length in words.
    shingle_length: int = 3
    seed: int = 97

    def __post_init__(self) -> None:
        if self.num_base_documents < 1:
            raise DatasetError("num_base_documents must be positive")
        if self.words_per_document < self.shingle_length:
            raise DatasetError("documents must be at least one shingle long")
        if not (0.0 <= self.mutation_rate <= 1.0):
            raise DatasetError("mutation_rate must be in [0, 1]")
        if self.shingle_length < 1:
            raise DatasetError("shingle_length must be at least 1")


@dataclass
class DocumentCorpus:
    """A generated corpus: raw documents, shingle multisets and ground truth."""

    config: DocumentCorpusConfig
    documents: dict = field(default_factory=dict)
    multisets: list = field(default_factory=list)
    #: Ground-truth duplicate clusters (sets of document identifiers).
    duplicate_clusters: list = field(default_factory=list)


def _word(index: int) -> str:
    return f"w{index:05d}"


def shingle_document(document_id: str, words: list[str],
                     shingle_length: int) -> Multiset:
    """Turn a word sequence into a multiset of its word shingles."""
    if shingle_length < 1:
        raise DatasetError("shingle_length must be at least 1")
    shingles: dict[str, int] = {}
    limit = max(0, len(words) - shingle_length + 1)
    for start in range(limit):
        shingle = " ".join(words[start:start + shingle_length])
        shingles[shingle] = shingles.get(shingle, 0) + 1
    if not shingles:
        shingles[" ".join(words)] = 1
    return Multiset(document_id, shingles)


def generate_document_corpus(config: DocumentCorpusConfig | None = None) -> DocumentCorpus:
    """Generate a corpus of documents with planted near-duplicates."""
    config = config or DocumentCorpusConfig()
    rng = np.random.default_rng(config.seed)
    documents: dict[str, list[str]] = {}
    clusters: list[set] = []

    for base_index in range(config.num_base_documents):
        base_id = f"doc{base_index:04d}"
        words = [_word(int(rng.integers(0, config.vocabulary_size)))
                 for _ in range(config.words_per_document)]
        documents[base_id] = words
        cluster = {base_id}
        for duplicate_index in range(config.duplicates_per_document):
            duplicate_id = f"{base_id}-dup{duplicate_index}"
            documents[duplicate_id] = _mutate(words, config, rng)
            cluster.add(duplicate_id)
        if len(cluster) > 1:
            clusters.append(cluster)

    multisets = [shingle_document(document_id, words, config.shingle_length)
                 for document_id, words in sorted(documents.items())]
    return DocumentCorpus(config=config, documents=documents,
                          multisets=multisets, duplicate_clusters=clusters)


def _mutate(words: list[str], config: DocumentCorpusConfig,
            rng: np.random.Generator) -> list[str]:
    """Create a near-duplicate by substituting a fraction of the words."""
    mutated = list(words)
    num_mutations = max(1, int(len(words) * config.mutation_rate))
    for _ in range(num_mutations):
        position = int(rng.integers(0, len(mutated)))
        mutated[position] = _word(int(rng.integers(0, config.vocabulary_size)))
    if rng.random() < 0.5 and len(mutated) > config.shingle_length + 1:
        # Occasionally drop a word as well, shifting the shingles after it.
        drop = int(rng.integers(0, len(mutated)))
        del mutated[drop]
    return mutated
