"""Synthetic workload generators, dataset statistics and TSV loaders."""

from repro.datasets.documents import (
    DocumentCorpus,
    DocumentCorpusConfig,
    generate_document_corpus,
    shingle_document,
)
from repro.datasets.ip_cookie import (
    GeneratedDataset,
    IPCookieConfig,
    dataset_label,
    generate_ip_cookie_dataset,
    generate_preset,
    input_tuples,
    realistic_dataset_config,
    scaled_memory_budget,
    small_dataset_config,
)
from repro.datasets.loaders import (
    read_input_tuples,
    read_multisets,
    write_input_tuples,
    write_multisets,
    write_similar_pairs,
)
from repro.datasets.stats import (
    DistributionSummary,
    elements_per_multiset,
    frequency_histogram,
    log_binned_histogram,
    multisets_per_element,
    skew_ratio,
    summarise_distribution,
)
from repro.datasets.workload import (
    MutationStreamConfig,
    QueryWorkloadConfig,
    RequestWorkloadConfig,
    generate_mutation_stream,
    generate_open_loop_arrivals,
    generate_query_workload,
    generate_request_workload,
    workload_statistics,
)
from repro.datasets.zipf import BoundedZipf, clipped_zipf_sizes

__all__ = [
    "BoundedZipf",
    "DistributionSummary",
    "DocumentCorpus",
    "DocumentCorpusConfig",
    "GeneratedDataset",
    "IPCookieConfig",
    "MutationStreamConfig",
    "QueryWorkloadConfig",
    "RequestWorkloadConfig",
    "clipped_zipf_sizes",
    "dataset_label",
    "elements_per_multiset",
    "frequency_histogram",
    "generate_document_corpus",
    "generate_ip_cookie_dataset",
    "generate_mutation_stream",
    "generate_open_loop_arrivals",
    "generate_preset",
    "generate_query_workload",
    "generate_request_workload",
    "input_tuples",
    "log_binned_histogram",
    "multisets_per_element",
    "read_input_tuples",
    "read_multisets",
    "realistic_dataset_config",
    "scaled_memory_budget",
    "shingle_document",
    "skew_ratio",
    "small_dataset_config",
    "summarise_distribution",
    "workload_statistics",
    "write_input_tuples",
    "write_multisets",
    "write_similar_pairs",
]
