"""Synthetic IP–cookie workload generator with planted proxy communities.

The paper's datasets are proprietary Google search-log extracts: each IP is
a multiset of the cookies observed with it, and groups of IPs belonging to
the same ISP load balancer share most of their cookies.  This generator
produces a synthetic equivalent preserving the properties the algorithms
care about:

* the number of distinct cookies per IP is Zipf-skewed (Fig. 2);
* the number of IPs per cookie is Zipf-skewed (Fig. 3);
* *planted proxy groups*: disjoint sets of IPs that share a per-group cookie
  pool, so their pairwise Ruzicka similarity is high and the ground-truth
  communities are known;
* background IPs share cookies only incidentally.

Both marginal distributions are controlled *directly* with a configuration
model: every IP draws a target number of distinct cookies, every cookie
draws a target number of IPs, and incidences are formed by matching the two
stub multisets at random.  This keeps the candidate-pair volume (the sum of
``C(Freq(a_k), 2)`` over cookies — what the Similarity1 reducers expand)
predictable at laptop scale while preserving the skew that drives the
paper's load-balancing arguments.

Two presets scale the paper's "small" (82M IPs / 133M cookies) and
"realistic" (454M IPs / 2.2B cookies) datasets down to laptop size while
keeping the same *relative* pressure on the algorithms: with the fixed
per-machine memory budget of :data:`PAPER_SCALED_MEMORY`, the small preset's
lookup table and frequency-sorted alphabet fit in memory and the realistic
preset's do not — reproducing the failures of Lookup and VCL reported in
section 7.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.multiset import Multiset
from repro.datasets.zipf import clipped_zipf_sizes

#: The per-machine memory budget (in bytes) that scales the paper's 1GB down
#: to the synthetic presets: the small preset's side data fits, the realistic
#: preset's lookup table and VCL alphabet do not.
PAPER_SCALED_MEMORY = 64 * 1024

#: The per-machine disk budget paired with :data:`PAPER_SCALED_MEMORY`
#: (the paper pairs 1GB of memory with 10GB of disk).
PAPER_SCALED_DISK = 100 * PAPER_SCALED_MEMORY


@dataclass(frozen=True)
class IPCookieConfig:
    """Parameters of the synthetic IP–cookie workload."""

    num_ips: int = 300
    num_cookies: int = 2_000
    #: Zipf exponent of the per-IP distinct-cookie count (Fig. 2 skew).
    ip_cardinality_exponent: float = 1.3
    #: Largest / smallest distinct-cookie count of a background IP.
    max_cookies_per_ip: int = 150
    min_cookies_per_ip: int = 3
    #: Zipf exponent of the per-cookie IP count (Fig. 3 skew).
    cookie_frequency_exponent: float = 1.6
    #: Largest number of background IPs sharing one cookie.
    max_ips_per_cookie: int = 40
    #: Number of planted proxy (load-balancer) groups.
    num_proxy_groups: int = 8
    #: Number of IPs per planted group.
    ips_per_proxy_group: int = 6
    #: Number of cookies in each group's shared pool.
    cookies_per_proxy_pool: int = 60
    #: Probability that a proxy IP observes any given pool cookie.
    proxy_cookie_affinity: float = 0.9
    #: Expected multiplicity of an observed cookie (geometric distribution).
    mean_multiplicity: float = 2.0
    #: Random seed.
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.num_ips < 1 or self.num_cookies < 1:
            raise DatasetError("num_ips and num_cookies must be positive")
        if self.num_proxy_groups * self.ips_per_proxy_group > self.num_ips:
            raise DatasetError(
                "planted proxy groups need more IPs than the dataset contains")
        if not (0.0 < self.proxy_cookie_affinity <= 1.0):
            raise DatasetError("proxy_cookie_affinity must be in (0, 1]")
        if self.min_cookies_per_ip < 1:
            raise DatasetError("min_cookies_per_ip must be at least 1")
        if self.max_cookies_per_ip < self.min_cookies_per_ip:
            raise DatasetError("max_cookies_per_ip must be >= min_cookies_per_ip")
        if self.max_ips_per_cookie < 1:
            raise DatasetError("max_ips_per_cookie must be at least 1")
        if self.mean_multiplicity < 1.0:
            raise DatasetError("mean_multiplicity must be at least 1")


@dataclass
class GeneratedDataset:
    """A generated workload plus its ground truth."""

    config: IPCookieConfig
    multisets: list[Multiset]
    #: Ground-truth proxy communities, as sets of IP identifiers.
    proxy_groups: list[set] = field(default_factory=list)

    @property
    def proxy_ips(self) -> set:
        """All IP identifiers belonging to a planted proxy group."""
        members: set = set()
        for group in self.proxy_groups:
            members.update(group)
        return members

    def multisets_by_id(self) -> dict:
        """Index the generated multisets by identifier."""
        return {multiset.id: multiset for multiset in self.multisets}


def _ip_name(index: int) -> str:
    """A synthetic dotted-quad style identifier for IP ``index``."""
    return f"10.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}"


def _cookie_name(index: int) -> str:
    return f"c{index:07d}"


def _proxy_cookie_name(group_index: int, cookie_index: int) -> str:
    return f"p{group_index:03d}x{cookie_index:05d}"


def generate_ip_cookie_dataset(config: IPCookieConfig | None = None) -> GeneratedDataset:
    """Generate a synthetic IP–cookie dataset with planted proxy groups."""
    config = config or IPCookieConfig()
    rng = np.random.default_rng(config.seed)

    # Target marginals: distinct cookies per IP (Fig. 2) and IPs per cookie
    # (Fig. 3), both bounded Zipf.
    ip_cardinalities = clipped_zipf_sizes(
        rng, config.num_ips, config.max_cookies_per_ip,
        config.ip_cardinality_exponent, config.min_cookies_per_ip)
    cookie_frequencies = clipped_zipf_sizes(
        rng, config.num_cookies, config.max_ips_per_cookie,
        config.cookie_frequency_exponent, 1)

    # Configuration model: one stub per desired (cookie, IP) incidence on the
    # cookie side, matched to IP demands.  If the cookie side is short,
    # popular cookies absorb the remainder.
    demand = int(ip_cardinalities.sum())
    cookie_stubs = np.repeat(np.arange(config.num_cookies), cookie_frequencies)
    if len(cookie_stubs) < demand:
        extra = rng.choice(config.num_cookies, size=demand - len(cookie_stubs),
                           p=cookie_frequencies / cookie_frequencies.sum())
        cookie_stubs = np.concatenate([cookie_stubs, extra])
    rng.shuffle(cookie_stubs)
    cookie_stubs = cookie_stubs[:demand]

    # Planted proxy groups occupy the first IP indices.
    proxy_groups: list[set] = []
    ip_group: dict[int, int] = {}
    next_ip = 0
    for group_index in range(config.num_proxy_groups):
        members = set()
        for _ in range(config.ips_per_proxy_group):
            members.add(_ip_name(next_ip))
            ip_group[next_ip] = group_index
            next_ip += 1
        proxy_groups.append(members)

    multisets: list[Multiset] = []
    cursor = 0
    for ip_index in range(config.num_ips):
        take = int(ip_cardinalities[ip_index])
        assigned = cookie_stubs[cursor:cursor + take]
        cursor += take
        counts: dict[str, int] = {}
        for cookie_index in assigned:
            cookie = _cookie_name(int(cookie_index))
            multiplicity = 1 + int(rng.geometric(1.0 / config.mean_multiplicity))
            counts[cookie] = counts.get(cookie, 0) + multiplicity

        group_index = ip_group.get(ip_index)
        if group_index is not None:
            # Members of the same load balancer observe (most of) the same
            # pool of cookies, with correlated multiplicities.
            for pool_cookie in range(config.cookies_per_proxy_pool):
                if rng.random() >= config.proxy_cookie_affinity:
                    continue
                cookie = _proxy_cookie_name(group_index, pool_cookie)
                multiplicity = 1 + int(rng.geometric(1.0 / config.mean_multiplicity))
                counts[cookie] = counts.get(cookie, 0) + multiplicity

        if not counts:
            counts[_cookie_name(int(rng.integers(0, config.num_cookies)))] = 1
        multisets.append(Multiset(_ip_name(ip_index), counts))

    return GeneratedDataset(config=config, multisets=multisets,
                            proxy_groups=proxy_groups)


# ---------------------------------------------------------------------------
# Presets mirroring the paper's two datasets (scaled down)
# ---------------------------------------------------------------------------


def small_dataset_config(seed: int = 2012) -> IPCookieConfig:
    """Scaled-down analogue of the paper's *small* dataset.

    The paper's small dataset has ~82M IPs and ~133M cookies (about 1.6
    cookies per IP); this preset keeps that ratio and the skew while staying
    small enough for every algorithm — including VCL — to finish, exactly
    the role the small dataset plays in section 7.1.
    """
    return IPCookieConfig(
        num_ips=400,
        num_cookies=1_500,
        ip_cardinality_exponent=1.6,
        max_cookies_per_ip=500,
        min_cookies_per_ip=3,
        cookie_frequency_exponent=1.9,
        max_ips_per_cookie=25,
        num_proxy_groups=10,
        ips_per_proxy_group=5,
        cookies_per_proxy_pool=35,
        proxy_cookie_affinity=0.9,
        mean_multiplicity=2.0,
        seed=seed,
    )


def realistic_dataset_config(seed: int = 2013) -> IPCookieConfig:
    """Scaled-down analogue of the paper's *realistic* dataset.

    The paper's realistic dataset has ~454M IPs and ~2.2B cookies (about 4.8
    cookies per IP) — more IPs, a much larger alphabet, heavier tails.  This
    preset is ~5x the small preset with a larger alphabet-to-entity ratio,
    which is what breaks the Lookup table and the VCL alphabet load under
    the fixed :data:`PAPER_SCALED_MEMORY` budget.
    """
    return IPCookieConfig(
        num_ips=2_000,
        num_cookies=12_000,
        ip_cardinality_exponent=1.55,
        max_cookies_per_ip=500,
        min_cookies_per_ip=4,
        cookie_frequency_exponent=1.9,
        max_ips_per_cookie=40,
        num_proxy_groups=25,
        ips_per_proxy_group=6,
        cookies_per_proxy_pool=60,
        proxy_cookie_affinity=0.9,
        mean_multiplicity=2.2,
        seed=seed,
    )


def scaled_memory_budget(config: IPCookieConfig | None = None) -> int:
    """The fixed per-machine memory budget used by the figure benchmarks.

    The paper runs every experiment with 1GB per machine regardless of
    dataset; the scaled equivalent is likewise a constant.  The ``config``
    argument is accepted for API symmetry but does not change the value.
    """
    return PAPER_SCALED_MEMORY


def dataset_label(config: IPCookieConfig) -> str:
    """A short human-readable label for a dataset configuration."""
    return f"{config.num_ips}ips-{config.num_cookies}cookies-seed{config.seed}"


def generate_preset(name: str, seed: int | None = None) -> GeneratedDataset:
    """Generate one of the named presets (``"small"`` or ``"realistic"``)."""
    if name == "small":
        config = small_dataset_config(seed if seed is not None else 2012)
    elif name == "realistic":
        config = realistic_dataset_config(seed if seed is not None else 2013)
    else:
        raise DatasetError(f"unknown dataset preset {name!r}; "
                           "expected 'small' or 'realistic'")
    return generate_ip_cookie_dataset(config)


def input_tuples(multisets: Sequence[Multiset]) -> list:
    """Explode multisets into the raw tuples the pipelines consume."""
    from repro.core.records import explode_multisets

    return explode_multisets(multisets)
