"""Exact incremental maintenance of a materialized similarity join.

:class:`JoinView` holds the full similar-pair set of a
:class:`~repro.engine.spec.JoinSpec` over a corpus and keeps it correct as
the corpus churns, without re-running the batch join per update.  The
incremental path reuses the same two structures the serving index maintains
(inverted postings over effective multiplicities, ``Uni`` partials per
multiset) plus upper-bound candidate pruning, so applying a
:class:`~repro.streaming.changes.ChangeBatch` touches only the pairs that
involve a written identifier:

1. snapshot the current scores of every pair involving a written id;
2. apply the writes to the underlying index (postings + ``Uni`` retract /
   extend, exactly as the serving layer does);
3. re-derive the neighbours of every written id that survived the batch by
   scanning only its own elements' posting lists;
4. diff the two snapshots and emit :class:`~repro.streaming.changes.PairDelta`
   events — pairs between two *unwritten* ids cannot move, so the diff is
   exact.

The result is *exact*, not approximate: every partial result is a sum of
integer-valued effective multiplicities (exact in floating point), so the
incrementally maintained scores are bit-identical to what a from-scratch
engine re-join computes on the mutated corpus — the property the stateful
Hypothesis suite in ``tests/test_streaming.py`` asserts.

For large batches the incremental path stops paying: when most of the
corpus is rewritten, one batch re-join is cheaper than thousands of posting
rescans.  :meth:`JoinView.decide` prices both strategies with the same
:class:`~repro.mapreduce.costmodel.CostParameters` discipline the engine
planner uses — estimate the work, convert through the calibrated rates,
pick the cheapest — and ``apply(..., strategy="auto")`` acts on the
decision.  The re-join path executes the view's own spec through a
:class:`~repro.engine.engine.SimilarityEngine` and diffs the complete pair
maps, so both strategies emit identical deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.exceptions import StreamingError
from repro.core.multiset import Multiset, MultisetId
from repro.core.records import SimilarPair, canonical_pair
from repro.engine.spec import APPROXIMATE_ALGORITHMS, JoinSpec
from repro.mapreduce.costmodel import DEFAULT_COST_PARAMETERS, CostParameters
from repro.serving.bootstrap import multisets_from_input
from repro.serving.index import QueryMatch, SimilarityIndex, sort_matches
from repro.streaming.changes import (
    DELETE,
    UPSERT,
    Change,
    ChangeBatch,
    PairDelta,
    sort_deltas,
)

#: Apply strategies.
INCREMENTAL = "incremental"
REJOIN = "rejoin"
AUTO_STRATEGY = "auto"

APPLY_STRATEGIES = (AUTO_STRATEGY, INCREMENTAL, REJOIN)

#: MapReduce steps a distributed re-join pays start/stop overhead for (the
#: joining phase plus the two similarity steps, as in the paper's pipelines).
_REJOIN_PIPELINE_JOBS = 4
#: Estimated bytes of one posting visit / one written record, matching the
#: planner's container-plus-words accounting.
_POSTING_BYTES = 32.0

#: Subscriber callback signature: ``callback(view, batch, deltas)``.
Subscriber = Callable[["JoinView", ChangeBatch, Sequence[PairDelta]], None]


@dataclass(frozen=True)
class ApplyPlan:
    """The priced decision for one batch: incremental apply vs full re-join.

    Mirrors the engine planner's "price the candidates, pick the cheapest
    feasible" discipline at mutation granularity: both strategies are
    converted to predicted seconds through the same calibrated cost rates,
    and ``strategy`` names the cheaper one.
    """

    strategy: str
    #: Predicted cost of scanning only the affected posting lists.
    incremental_seconds: float
    #: Predicted cost of re-running the batch join on the mutated corpus.
    rejoin_seconds: float
    #: Distinct identifiers the batch writes.
    touched: int
    #: Posting entries the incremental neighbour rescans would visit.
    postings_to_scan: int
    #: Unpruned candidate-pair volume of a from-scratch re-join.
    candidate_records: int
    reason: str

    def explain(self) -> str:
        """One-line EXPLAIN-style rendering of the decision."""
        return (f"ApplyPlan: strategy={self.strategy!r} "
                f"(incremental {self.incremental_seconds:.3f} s vs "
                f"re-join {self.rejoin_seconds:.3f} s; {self.reason})")


class JoinView:
    """The materialized pair set of a join spec, maintained under mutation.

    Parameters
    ----------
    spec:
        The join the view materializes.  Specs a view cannot maintain
        *exactly* are rejected: ``algorithm="minhash"`` (approximate
        banding) and ``stop_word_frequency`` (pairs computed on filtered
        data would not match incremental rescans).
    data:
        The corpus, in any shape :func:`repro.serving.multisets_from_input`
        accepts.
    pairs:
        The spec's similar pairs over ``data``, when already computed (the
        :meth:`~repro.engine.result.JoinResult.to_view` handoff).  ``None``
        derives the initial pair set from the view's own index — identical,
        by the exactness argument above, just not free.
    engine:
        Optional :class:`~repro.engine.engine.SimilarityEngine` the re-join
        strategy executes on (borrowed, never closed).  Without one, a
        throwaway serial-backend engine is created per re-join.
    """

    def __init__(self, spec: JoinSpec, data, *,
                 pairs: Sequence[SimilarPair] | None = None,
                 engine=None) -> None:
        if spec.algorithm in APPROXIMATE_ALGORITHMS or spec.allows_inexact:
            raise StreamingError(
                "cannot maintain an exact view of an approximate join "
                f"(algorithm={spec.algorithm!r}, recall={spec.recall!r}): "
                "banding or sampling can miss true pairs; pick an exact "
                "algorithm and drop the recall target")
        if spec.stop_word_frequency is not None:
            raise StreamingError(
                "cannot maintain a view of a stop-word-filtered join: its "
                "pairs are computed on filtered data and would not match "
                "incremental rescans of the live postings")
        self.spec = spec
        self.threshold = float(spec.threshold)
        self._engine = engine
        self._index = SimilarityIndex(spec.measure, intern=spec.intern)
        self.measure = self._index.measure
        multisets = multisets_from_input(data)
        self._index.bulk_load(multisets)
        self._pairs: dict[tuple, float] = {}
        self._partners: dict[MultisetId, set[MultisetId]] = {}
        if pairs is None:
            self._ingest_pairs(self._derive_pairs())
        else:
            self._ingest_pairs(
                (pair.first, pair.second, pair.similarity) for pair in pairs)
        self._subscribers: list[Subscriber] = []
        self._version = 0
        self._counters: dict[str, int] = {}

    # -- durability ------------------------------------------------------------

    def persist(self, destination, snapshot_every: int | None = None):
        """Make this view durable: snapshot now, log every batch after.

        Opens (or borrows) a :class:`~repro.storage.ViewStore` on
        ``destination`` and attaches it, so each subsequent
        :meth:`apply` commits its batch to the store's mutation log
        before returning.  Returns the
        :class:`~repro.storage.ViewSubscription`; call its ``detach()``
        to stop logging.  After a crash, :meth:`recover` rebuilds the
        exact pre-crash view from the file.
        """
        from repro.storage import ViewStore

        return ViewStore(destination).attach(view=self,
                                             snapshot_every=snapshot_every)

    @classmethod
    def recover(cls, source, *, engine=None) -> "JoinView":
        """Rebuild a persisted view: load its snapshot, replay its log.

        The recovered pair map is *bit-identical* to what the lost
        process held after its last durably applied batch — replay runs
        the incremental strategy, whose scores match a from-scratch
        re-join exactly (the property the streaming test suite asserts).
        ``engine`` is an optional
        :class:`~repro.engine.engine.SimilarityEngine` for the rebuilt
        view's future re-joins.
        """
        from repro.storage import ViewStore

        with ViewStore(source) as store:
            return store.load(engine=engine)

    # -- construction internals ----------------------------------------------

    def _derive_pairs(self) -> Iterator[tuple]:
        for multiset_id in list(self._index.ids()):
            for match in self._index.neighbours(multiset_id, self.threshold):
                yield multiset_id, match.multiset_id, match.similarity

    def _ingest_pairs(self, triples) -> None:
        for id_a, id_b, similarity in triples:
            for multiset_id in (id_a, id_b):
                if multiset_id not in self._index:
                    raise StreamingError(
                        f"pair references multiset {multiset_id!r} which is "
                        "not in the view's corpus; the join result and the "
                        "data must describe the same collection")
            self._set_pair(canonical_pair(id_a, id_b), similarity)

    # -- pair-map bookkeeping -------------------------------------------------

    def _set_pair(self, pair: tuple, similarity: float) -> None:
        self._pairs[pair] = similarity
        self._partners.setdefault(pair[0], set()).add(pair[1])
        self._partners.setdefault(pair[1], set()).add(pair[0])

    def _drop_pair(self, pair: tuple) -> None:
        del self._pairs[pair]
        for own, other in (pair, pair[::-1]):
            partners = self._partners.get(own)
            if partners is not None:
                partners.discard(other)
                if not partners:
                    del self._partners[own]

    # -- read surface ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic batch version; bumped once per applied batch."""
        return self._version

    @property
    def num_members(self) -> int:
        """How many multisets the view currently holds."""
        return len(self._index)

    @property
    def num_pairs(self) -> int:
        """How many similar pairs the view currently materializes."""
        return len(self._pairs)

    def __contains__(self, multiset_id: object) -> bool:
        return multiset_id in self._index

    def get(self, multiset_id: MultisetId) -> Multiset | None:
        """The current multiset under this identifier, if held."""
        return self._index.get(multiset_id)

    def members(self) -> list[Multiset]:
        """The current corpus, in index order."""
        return [self._index.get(multiset_id)
                for multiset_id in self._index.ids()]

    def pairs(self) -> dict[tuple, float]:
        """A copy of the ``{(first, second): similarity}`` pair map."""
        return dict(self._pairs)

    def score(self, id_a: MultisetId, id_b: MultisetId) -> float | None:
        """The maintained similarity of a pair, or ``None`` if below ``t``."""
        return self._pairs.get(canonical_pair(id_a, id_b))

    def similar_pairs(self) -> list[SimilarPair]:
        """The materialized pairs as sorted :class:`SimilarPair` records."""
        return sorted(SimilarPair(first, second, similarity)
                      for (first, second), similarity in self._pairs.items())

    def __iter__(self) -> Iterator[SimilarPair]:
        return iter(self.similar_pairs())

    def matches_for(self, member_id: MultisetId) -> list[QueryMatch]:
        """The maintained partners of one member, best first.

        This is the view-side equivalent of
        :meth:`~repro.serving.index.SimilarityIndex.neighbours` at the
        view's threshold, answered from the pair map without any posting
        scan — the serving subscriber warms caches from it.
        """
        if member_id not in self._index:
            raise StreamingError(f"multiset {member_id!r} is not in the view")
        return sort_matches(
            QueryMatch(partner,
                       self._pairs[canonical_pair(member_id, partner)])
            for partner in self._partners.get(member_id, ()))

    def counters(self) -> dict[str, int]:
        """Maintenance counters (batches per strategy, deltas per kind...)."""
        return dict(self._counters)

    def _increment(self, counter: str, amount: int = 1) -> None:
        self._counters[counter] = self._counters.get(counter, 0) + amount

    # -- subscriptions ---------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register a ``callback(view, batch, deltas)``; returns it."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a previously registered subscriber."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            raise StreamingError(
                "subscriber is not registered on this view") from None

    # -- mutation --------------------------------------------------------------

    def upsert(self, multiset: Multiset,
               strategy: str = AUTO_STRATEGY) -> list[PairDelta]:
        """Apply a single-upsert batch."""
        return self.apply(ChangeBatch.of(Change.upsert(multiset)),
                          strategy=strategy)

    def delete(self, multiset_id: MultisetId,
               strategy: str = AUTO_STRATEGY) -> list[PairDelta]:
        """Apply a single-delete batch."""
        return self.apply(ChangeBatch.of(Change.delete(multiset_id)),
                          strategy=strategy)

    def apply(self, changes, strategy: str = AUTO_STRATEGY) -> list[PairDelta]:
        """Apply a change batch; returns the sorted pair deltas it caused.

        ``strategy`` forces the maintenance path (``"incremental"`` or
        ``"rejoin"``); the default ``"auto"`` consults :meth:`decide`.
        Validation runs before any write, so a bad batch (a delete naming
        an unknown identifier) leaves the view untouched.
        """
        if strategy not in APPLY_STRATEGIES:
            raise StreamingError(
                f"unknown apply strategy {strategy!r}; "
                f"expected one of {APPLY_STRATEGIES}")
        batch = ChangeBatch.coerce(changes)
        self._validate(batch)
        if not batch:
            return []
        if strategy == AUTO_STRATEGY:
            strategy = self._price(batch).strategy
        if strategy == INCREMENTAL:
            deltas = self._apply_incremental(batch)
        else:
            deltas = self._apply_rejoin(batch)
        self._version += 1
        self._increment(f"streaming/batches_{strategy}")
        self._increment("streaming/changes_applied", len(batch))
        for delta in deltas:
            self._increment(f"streaming/{delta.kind}")
        for subscriber in list(self._subscribers):
            subscriber(self, batch, deltas)
        return deltas

    def _validate(self, batch: ChangeBatch) -> None:
        """Check every change against the evolving membership, write-free.

        O(batch): the evolving live set is tracked as a batch-local overlay
        over the index instead of a full membership copy, so single-change
        batches on a large corpus stay cheap.
        """
        added: set = set()
        deleted: set = set()
        for change in batch:
            target = change.target
            if change.kind == UPSERT:
                added.add(target)
                deleted.discard(target)
            else:
                live = (target in added
                        or (target not in deleted and target in self._index))
                if not live:
                    raise StreamingError(
                        f"change batch deletes multiset {target!r} "
                        "which the view does not hold at that point")
                deleted.add(target)
                added.discard(target)

    def _write(self, batch: ChangeBatch) -> None:
        """Apply the batch's writes to the index, in order."""
        for change in batch:
            if change.kind == DELETE:
                self._index.remove(change.target)
            else:
                self._index.add(change.multiset,
                                replace=change.target in self._index)

    # -- the two strategies ----------------------------------------------------

    def _apply_incremental(self, batch: ChangeBatch) -> list[PairDelta]:
        touched = batch.targets()
        old_affected = {
            canonical_pair(target, partner): None
            for target in touched
            for partner in self._partners.get(target, ())}
        for pair in old_affected:
            old_affected[pair] = self._pairs[pair]
        self._write(batch)
        new_affected: dict[tuple, float] = {}
        for target in touched:
            if target not in self._index:
                continue
            for match in self._index.neighbours(target, self.threshold):
                new_affected[canonical_pair(target, match.multiset_id)] = \
                    match.similarity
        return self._commit_diff(old_affected, new_affected)

    def _apply_rejoin(self, batch: ChangeBatch) -> list[PairDelta]:
        self._write(batch)
        corpus = self.members()
        if self._engine is not None:
            result = self._engine.run(self.spec, corpus)
        else:
            from repro.engine.engine import SimilarityEngine

            with SimilarityEngine() as engine:
                result = engine.run(self.spec, corpus)
        new_pairs = {pair.pair: pair.similarity for pair in result}
        return self._commit_diff(dict(self._pairs), new_pairs)

    def _commit_diff(self, old: dict[tuple, float],
                     new: dict[tuple, float]) -> list[PairDelta]:
        """Diff two pair maps, update the view's state, emit sorted deltas."""
        deltas: list[PairDelta] = []
        for pair, previous in old.items():
            if pair not in new:
                deltas.append(PairDelta.removed(*pair, previous=previous))
                self._drop_pair(pair)
        for pair, similarity in new.items():
            previous = old.get(pair)
            if pair not in old:
                deltas.append(PairDelta.added(*pair, similarity=similarity))
                self._set_pair(pair, similarity)
            elif previous != similarity:
                deltas.append(PairDelta.changed(*pair, similarity=similarity,
                                                previous=previous))
                self._set_pair(pair, similarity)
        return sort_deltas(deltas)

    # -- strategy pricing ------------------------------------------------------

    def decide(self, changes) -> ApplyPlan:
        """Price incremental apply vs full re-join for a batch.

        Both estimates go through the engine's calibrated
        :class:`CostParameters` — the incremental side charges every posting
        entry the neighbour rescans would visit, the re-join side charges
        the full input scan plus the unpruned candidate volume (the same
        ``sum_e C(df_e, 2)`` the planner prices) plus the pipeline's
        start/stop overhead when the spec names a distributed algorithm.
        """
        batch = ChangeBatch.coerce(changes)
        self._validate(batch)
        return self._price(batch)

    def _price(self, batch: ChangeBatch) -> ApplyPlan:
        """The pricing behind :meth:`decide`, for an already-valid batch."""
        params = self._cost_parameters()
        unit = params.record_overhead_bytes + _POSTING_BYTES
        postings_to_scan = 0
        touched_records = 0
        for change in batch:
            # Charge the rescan of the incoming contents and the retraction
            # of whatever is currently stored under the same identifier.
            sources = [change.multiset] if change.kind == UPSERT else []
            stored = self._index.get(change.target)
            if stored is not None:
                sources.append(stored)
            for source in sources:
                touched_records += len(source)
                for element in source:
                    postings_to_scan += self._index.document_frequency(element)
        incremental_seconds = ((postings_to_scan + touched_records) * unit
                               / params.machine_throughput)
        sizes = self._index.posting_list_sizes()
        candidate_records = sum(df * (df - 1) // 2 for df in sizes)
        rejoin_work = (self._index.num_postings + candidate_records) * unit
        rejoin_overhead = (0.0 if self.spec.algorithm in
                           ("exact", "inverted_index", "ppjoin")
                           else _REJOIN_PIPELINE_JOBS
                           * params.job_overhead_seconds)
        rejoin_seconds = (rejoin_overhead
                          + rejoin_work / params.machine_throughput)
        if incremental_seconds <= rejoin_seconds:
            strategy = INCREMENTAL
            reason = (f"rescanning {postings_to_scan} postings for "
                      f"{len(batch.targets())} written ids beats re-joining "
                      f"{candidate_records} candidate pairs")
        else:
            strategy = REJOIN
            reason = (f"batch rewrites enough of the corpus that one "
                      f"re-join over {candidate_records} candidate pairs "
                      f"beats {postings_to_scan} posting rescans")
        return ApplyPlan(strategy=strategy,
                         incremental_seconds=incremental_seconds,
                         rejoin_seconds=rejoin_seconds,
                         touched=len(batch.targets()),
                         postings_to_scan=postings_to_scan,
                         candidate_records=candidate_records,
                         reason=reason)

    def _cost_parameters(self) -> CostParameters:
        if self.spec.cost_parameters is not None:
            return self.spec.cost_parameters
        if self._engine is not None:
            return self._engine.cost_parameters
        return DEFAULT_COST_PARAMETERS

    def __repr__(self) -> str:
        return (f"JoinView(measure={self.measure.name!r}, "
                f"threshold={self.threshold}, members={self.num_members}, "
                f"pairs={self.num_pairs}, version={self._version})")
