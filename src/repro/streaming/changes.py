"""The record types of the mutation stream: changes in, pair deltas out.

A corpus under live traffic evolves as a stream of *changes* — upserts
(insert-or-replace of a whole multiset) and deletes — grouped into
:class:`ChangeBatch` units of application.  A maintained
:class:`~repro.streaming.view.JoinView` consumes batches and emits
:class:`PairDelta` events describing exactly how the materialized similar-
pair set moved: a pair entering the result (``pair_added``), leaving it
(``pair_removed``) or staying above the threshold with a different score
(``score_changed``).  Replaying the deltas over the previous pair set with
:func:`apply_deltas` reconstructs the new pair set exactly — that is the
contract the stateful property suite asserts.

This module deliberately depends only on :mod:`repro.core` so the dataset
generators can produce change batches without importing the view machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, MutableMapping, Sequence

from repro.core.exceptions import StreamingError
from repro.core.multiset import Multiset, MultisetId
from repro.core.records import canonical_pair

#: Change kinds.
UPSERT = "upsert"
DELETE = "delete"

#: Pair-delta kinds.
PAIR_ADDED = "pair_added"
PAIR_REMOVED = "pair_removed"
SCORE_CHANGED = "score_changed"

DELTA_KINDS = (PAIR_ADDED, PAIR_REMOVED, SCORE_CHANGED)


@dataclass(frozen=True, slots=True)
class Change:
    """One mutation: upsert a whole multiset, or delete one by identifier.

    Build instances through :meth:`upsert` / :meth:`delete`; the constructor
    validates that the payload matches the kind (an upsert carries the new
    multiset, a delete carries only the identifier).
    """

    kind: str
    multiset: Multiset | None = None
    multiset_id: MultisetId | None = None

    def __post_init__(self) -> None:
        if self.kind == UPSERT:
            if not isinstance(self.multiset, Multiset):
                raise StreamingError(
                    f"an {UPSERT} change carries the new Multiset, "
                    f"got {self.multiset!r}")
        elif self.kind == DELETE:
            if self.multiset is not None:
                raise StreamingError(
                    f"a {DELETE} change names an identifier only; "
                    "pass multiset_id, not the multiset")
        else:
            raise StreamingError(
                f"unknown change kind {self.kind!r}; "
                f"expected {UPSERT!r} or {DELETE!r}")

    @classmethod
    def upsert(cls, multiset: Multiset) -> "Change":
        """Insert ``multiset``, replacing any entity with the same id."""
        return cls(kind=UPSERT, multiset=multiset)

    @classmethod
    def delete(cls, multiset_id: MultisetId) -> "Change":
        """Remove the entity with this identifier."""
        return cls(kind=DELETE, multiset_id=multiset_id)

    @property
    def target(self) -> MultisetId:
        """The identifier this change writes."""
        if self.kind == UPSERT:
            return self.multiset.id
        return self.multiset_id


@dataclass(frozen=True)
class ChangeBatch:
    """An ordered group of changes applied as one logical write.

    Within a batch, later changes to the same identifier win (stream
    semantics); the view applies the whole batch before emitting a single
    consolidated set of pair deltas.
    """

    changes: tuple[Change, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "changes", tuple(self.changes))
        for position, change in enumerate(self.changes):
            if not isinstance(change, Change):
                raise StreamingError(
                    f"ChangeBatch items must be Change records; item "
                    f"{position} is {type(change).__name__}")

    @classmethod
    def of(cls, *changes: Change) -> "ChangeBatch":
        """Build a batch from individual changes."""
        return cls(changes)

    @classmethod
    def coerce(cls, changes) -> "ChangeBatch":
        """Accept a batch, a single change or an iterable of changes."""
        if isinstance(changes, ChangeBatch):
            return changes
        if isinstance(changes, Change):
            return cls((changes,))
        return cls(tuple(changes))

    def __iter__(self) -> Iterator[Change]:
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __bool__(self) -> bool:
        return bool(self.changes)

    @property
    def upserts(self) -> tuple[Change, ...]:
        """The upsert changes, in batch order."""
        return tuple(change for change in self.changes if change.kind == UPSERT)

    @property
    def deletes(self) -> tuple[Change, ...]:
        """The delete changes, in batch order."""
        return tuple(change for change in self.changes if change.kind == DELETE)

    def targets(self) -> list[MultisetId]:
        """The written identifiers, deduplicated, in first-write order."""
        seen: dict[MultisetId, None] = {}
        for change in self.changes:
            seen.setdefault(change.target)
        return list(seen)


@dataclass(frozen=True, slots=True)
class PairDelta:
    """One movement of the materialized pair set.

    ``similarity`` is the score *after* the batch (``None`` for
    ``pair_removed``); ``previous`` is the score *before* it (``None`` for
    ``pair_added``).  ``first < second`` canonically, as everywhere else.
    """

    first: MultisetId
    second: MultisetId
    kind: str
    similarity: float | None = None
    previous: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise StreamingError(
                f"unknown delta kind {self.kind!r}; expected one of {DELTA_KINDS}")
        if self.kind == PAIR_REMOVED:
            if self.similarity is not None or self.previous is None:
                raise StreamingError(
                    f"a {PAIR_REMOVED} delta carries previous= only")
        elif self.similarity is None:
            raise StreamingError(f"a {self.kind} delta carries similarity=")
        elif self.kind == PAIR_ADDED and self.previous is not None:
            raise StreamingError(f"a {PAIR_ADDED} delta has no previous score")
        elif self.kind == SCORE_CHANGED and self.previous is None:
            raise StreamingError(f"a {SCORE_CHANGED} delta carries previous=")

    @property
    def pair(self) -> tuple[MultisetId, MultisetId]:
        """The affected unordered pair, canonically ordered."""
        return (self.first, self.second)

    @classmethod
    def added(cls, id_a: MultisetId, id_b: MultisetId,
              similarity: float) -> "PairDelta":
        first, second = canonical_pair(id_a, id_b)
        return cls(first, second, PAIR_ADDED, similarity=similarity)

    @classmethod
    def removed(cls, id_a: MultisetId, id_b: MultisetId,
                previous: float) -> "PairDelta":
        first, second = canonical_pair(id_a, id_b)
        return cls(first, second, PAIR_REMOVED, previous=previous)

    @classmethod
    def changed(cls, id_a: MultisetId, id_b: MultisetId,
                similarity: float, previous: float) -> "PairDelta":
        first, second = canonical_pair(id_a, id_b)
        return cls(first, second, SCORE_CHANGED,
                   similarity=similarity, previous=previous)


def sort_deltas(deltas: Iterable[PairDelta]) -> list[PairDelta]:
    """Deterministic delta order: by pair, then kind.

    Mixed identifier types fall back to their representation, like every
    other ordering in the package.
    """
    materialised = list(deltas)
    try:
        return sorted(materialised,
                      key=lambda delta: (delta.first, delta.second, delta.kind))
    except TypeError:
        return sorted(materialised,
                      key=lambda delta: (repr(delta.first), repr(delta.second),
                                         delta.kind))


def apply_deltas(pairs: MutableMapping[tuple, float],
                 deltas: Sequence[PairDelta]) -> MutableMapping[tuple, float]:
    """Replay deltas over a ``{(first, second): similarity}`` map, in place.

    This is the consumer side of the delta contract: a subscriber holding
    the previous pair set reconstructs the new one without recomputing any
    similarity.  Replay is strict — adding a pair that is already present,
    or removing/adjusting one that is not, raises, because a delta stream
    that does not match the state it is applied to is a correctness bug.
    """
    for delta in deltas:
        if delta.kind == PAIR_ADDED:
            if delta.pair in pairs:
                raise StreamingError(
                    f"delta adds pair {delta.pair!r} which is already present")
            pairs[delta.pair] = delta.similarity
        elif delta.kind == PAIR_REMOVED:
            if delta.pair not in pairs:
                raise StreamingError(
                    f"delta removes pair {delta.pair!r} which is not present")
            del pairs[delta.pair]
        else:
            if delta.pair not in pairs:
                raise StreamingError(
                    f"delta rescores pair {delta.pair!r} which is not present")
            pairs[delta.pair] = delta.similarity
    return pairs
