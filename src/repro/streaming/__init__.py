"""Incremental join maintenance: exact delta views over mutation streams.

The batch engine answers "which pairs are similar *now*"; this subsystem
keeps that answer correct while the corpus churns:

* :class:`~repro.streaming.changes.Change` / :class:`ChangeBatch` — the
  mutation stream (upserts and deletes, applied batch-at-a-time);
* :class:`~repro.streaming.view.JoinView` — the materialized pair set of a
  :class:`~repro.engine.spec.JoinSpec`, maintained exactly under mutation
  and emitting :class:`~repro.streaming.changes.PairDelta` events whose
  cumulative effect matches a from-scratch engine re-join bit for bit;
* :func:`~repro.streaming.subscribers.attach_serving` — stream deltas into
  a serving node or sharded fleet, re-warming result caches from the pair
  map instead of re-running the join bootstrap.

Views come from :meth:`repro.SimilarityEngine.materialize` or
:meth:`repro.JoinResult.to_view`; seeded mutation streams come from
:func:`repro.datasets.generate_mutation_stream`.
"""

from repro.streaming.changes import (
    DELETE,
    PAIR_ADDED,
    PAIR_REMOVED,
    SCORE_CHANGED,
    UPSERT,
    Change,
    ChangeBatch,
    PairDelta,
    apply_deltas,
    sort_deltas,
)
from repro.streaming.subscribers import ServingSubscription, attach_serving
from repro.streaming.view import (
    APPLY_STRATEGIES,
    ApplyPlan,
    JoinView,
)

__all__ = [
    "APPLY_STRATEGIES",
    "ApplyPlan",
    "Change",
    "ChangeBatch",
    "DELETE",
    "JoinView",
    "PAIR_ADDED",
    "PAIR_REMOVED",
    "PairDelta",
    "SCORE_CHANGED",
    "ServingSubscription",
    "UPSERT",
    "apply_deltas",
    "attach_serving",
    "sort_deltas",
]
