"""Streaming deltas into the serving layer.

:func:`attach_serving` keeps a :class:`~repro.serving.node.ServingNode` or a
:class:`~repro.serving.service.ShardedSimilarityService` in lockstep with a
:class:`~repro.streaming.view.JoinView`: every applied change batch is
routed into the target's index, and — because the view already holds the
exact post-batch pair set — every member's threshold-query answer at the
view's threshold is re-warmed straight from the pair map.  That replaces
the previous deployment story, where keeping a fleet's caches warm under
churn meant re-running :func:`repro.serving.bootstrap_from_join` (a full
batch join) after every corpus change: the subscriber pays
``O(members + pairs)`` dictionary work per batch and never scans a posting
list to warm a cache.

Warming re-seeds *every* member (not just the written ones) because a
serving write invalidates the node's whole result cache — the entries of
unwritten members are gone either way, and re-deriving them from the pair
map costs no similarity computation.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import StreamingError
from repro.core.multiset import MultisetId
from repro.serving.bootstrap import warm_member_caches
from repro.serving.node import ServingNode
from repro.serving.service import ShardedSimilarityService
from repro.streaming.changes import DELETE, ChangeBatch, PairDelta
from repro.streaming.view import JoinView


class ServingSubscription:
    """A live link from a view to a serving node or sharded service.

    Construct through :func:`attach_serving`.  The target must serve the
    view's measure and must not use stop-word pruning when ``warm=True``
    (warmed exact answers would not match what pruned queries compute once
    evicted — the same guard the join bootstrap applies).  An empty target
    is bulk-loaded from the view; a pre-loaded target must hold exactly the
    view's members.
    """

    def __init__(self, view: JoinView,
                 target: ServingNode | ShardedSimilarityService, *,
                 warm: bool = True) -> None:
        if not isinstance(target, (ServingNode, ShardedSimilarityService)):
            raise StreamingError(
                "attach_serving targets a ServingNode or a "
                f"ShardedSimilarityService, got {type(target).__name__}")
        if target.measure.name != view.measure.name:
            raise StreamingError(
                f"serving target measure {target.measure.name!r} does not "
                f"match the view's measure {view.measure.name!r}")
        self.view = view
        self.target = target
        self.warm = warm
        if warm:
            for node in self._nodes():
                if node.index.stop_word_frequency is not None:
                    raise StreamingError(
                        "cannot warm caches of an index with stop-word "
                        "pruning: the view's exact pairs would not match "
                        "what live queries compute once the cache is "
                        "invalidated; attach with warm=False")
        self._load()
        if warm:
            self._warm_all()
        self._callback = view.subscribe(self._on_batch)

    # -- lifecycle -------------------------------------------------------------

    def detach(self) -> None:
        """Stop following the view; the target keeps its current state."""
        self.view.unsubscribe(self._callback)

    # -- target plumbing (node == one-shard fleet) -----------------------------

    def _nodes(self) -> list[ServingNode]:
        if isinstance(self.target, ShardedSimilarityService):
            return list(self.target.nodes)
        return [self.target]

    def _node_for(self, multiset_id: MultisetId) -> ServingNode:
        if isinstance(self.target, ShardedSimilarityService):
            return self.target.node_for(multiset_id)
        return self.target

    def _shard_for(self, multiset_id: MultisetId) -> int:
        if isinstance(self.target, ShardedSimilarityService):
            return self.target.shard_for(multiset_id)
        return 0

    def _load(self) -> None:
        members = self.view.members()
        if len(self.target) == 0:
            self.target.bulk_load(members)
            return
        # Identifiers alone are not enough: a target loaded from a stale
        # snapshot under the same ids would serve answers disagreeing with
        # the view the moment its caches are invalidated.
        if len(self.target) != len(members) or any(
                self._node_for(member.id).index.get(member.id) != member
                for member in members):
            raise StreamingError(
                "a pre-loaded serving target must hold exactly the view's "
                "members (same identifiers and contents); load an empty "
                "target through attach_serving instead")

    # -- delta handling --------------------------------------------------------

    def _on_batch(self, view: JoinView, batch: ChangeBatch,
                  deltas: Sequence[PairDelta]) -> None:
        for change in batch:
            if change.kind == DELETE:
                self.target.remove(change.target)
            else:
                node = self._node_for(change.target)
                node.add(change.multiset,
                         replace=change.target in node.index)
        if self.warm:
            self._warm_all()

    def _warm_all(self) -> None:
        """Re-seed every member's threshold answer from the view's pair map."""
        warm_member_caches(
            self._nodes(), self._shard_for, self.view.members(),
            lambda member: self.view.matches_for(member.id),
            self.view.threshold)


def attach_serving(view: JoinView,
                   target: ServingNode | ShardedSimilarityService, *,
                   warm: bool = True) -> ServingSubscription:
    """Keep a serving node or fleet in sync with a maintained view.

    Loads the target from the view (when empty), optionally warms every
    member's threshold-query cache entry from the view's pair map, and
    subscribes so each applied batch updates the target and re-warms —
    no batch join ever re-runs.  Returns the subscription; call
    :meth:`ServingSubscription.detach` to stop following the view.
    """
    return ServingSubscription(view, target, warm=warm)
