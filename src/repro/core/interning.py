"""Element interning: dense integer dictionaries for hot-path kernels.

The pipelines and the serving index shuffle records keyed by arbitrary
hashable alphabet elements (cookie strings in the paper's workload) and by
arbitrary multiset identifiers (IP strings).  Hashing and comparing those
keys — and carrying them through every shuffle — dominates the per-record
cost once the algorithmic work per record is small.  This module provides
the shared *interning* layer that replaces them with dense integers:

* :class:`ElementDictionary` — an immutable element ⇄ id mapping whose ids
  are assigned in **ascending document frequency** order (the rarest element
  gets id 0).  This is the same global ordering prefix-filtering algorithms
  (VCL, PPJoin) sort by, so one dictionary serves both the merge-scan
  kernels and any frequency-ordered consumer;
* :class:`InternedMultiset` — the canonical array representation of a
  multiset: parallel tuples of sorted element ids and their multiplicities.
  Two interned multisets can be compared with a linear merge scan instead of
  per-element dict probes (see :mod:`repro.similarity.kernels`);
* :class:`LocalInterner` — a lightweight append-only interner for consumers
  that only need ids to be *consistent within a scope* (one reduce group,
  one serving index), not globally frequency-ordered;
* :class:`PairCodec` — packs a canonical ``(id_i, id_j)`` pair of dense ids
  into a single integer, turning the Similarity2 shuffle key into one
  machine word;
* :class:`InterningContext` — the bundle the V-SMART-Join driver builds in
  its interning pass: element dictionary, multiset-id dictionary and pair
  codec, with helpers to intern the raw input tuples and to restore the
  original identifiers on the final similar pairs.

Interning never changes results: multiplicities are preserved exactly and
every consumer maps ids back to the original objects at its boundary.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.core.exceptions import ReproError
from repro.core.multiset import Element, Multiset, MultisetId
from repro.core.records import InputTuple, SimilarPair


class InterningError(ReproError):
    """A lookup of an element or identifier that was never interned."""


def _sort_key(value: Hashable) -> tuple[str, str]:
    """A deterministic total-order key for arbitrary hashable values.

    Mirrors the representation fallback of the record types: values of one
    type sort naturally through their repr for the common string/int cases,
    and mixed-type collections still get a stable order.
    """
    return (type(value).__name__, repr(value))


def sort_mixed(values: Iterable[Hashable]) -> list:
    """Sort possibly mixed-type hashables deterministically.

    Directly comparable collections (all-string or all-int identifiers, the
    common case) keep their natural order; anything else falls back to the
    type-name/repr key, exactly like the canonical pair ordering in
    :mod:`repro.core.records`.
    """
    materialised = list(values)
    try:
        return sorted(materialised)
    except TypeError:
        return sorted(materialised, key=_sort_key)


class ElementDictionary:
    """An immutable element ⇄ dense-id dictionary in document-frequency order.

    ``elements[i]`` is the element with id ``i``; ids ascend with document
    frequency (ties broken deterministically), so id 0 is the rarest
    element.  Frequency order costs nothing to produce — the builders count
    frequencies anyway — and makes the ids directly usable as the global
    element ordering of prefix-filtering algorithms.
    """

    __slots__ = ("_elements", "_ids", "_frequencies")

    def __init__(self, ordered_elements: Sequence[Element],
                 frequencies: Mapping[Element, int] | None = None) -> None:
        self._elements: tuple = tuple(ordered_elements)
        self._ids: dict = {element: index
                           for index, element in enumerate(self._elements)}
        if len(self._ids) != len(self._elements):
            raise InterningError("dictionary elements must be distinct")
        self._frequencies = dict(frequencies) if frequencies else {}

    # -- builders ----------------------------------------------------------

    @classmethod
    def from_document_frequencies(
            cls, frequencies: Mapping[Element, int]) -> "ElementDictionary":
        """Build a dictionary from an element → document-frequency mapping."""
        ordered = sorted(frequencies,
                         key=lambda element: (frequencies[element],
                                              _sort_key(element)))
        return cls(ordered, frequencies)

    @classmethod
    def from_multisets(cls,
                       multisets: Iterable[Multiset]) -> "ElementDictionary":
        """Build a dictionary by counting document frequencies of a corpus."""
        frequencies: dict = {}
        for multiset in multisets:
            for element in multiset:
                frequencies[element] = frequencies.get(element, 0) + 1
        return cls.from_document_frequencies(frequencies)

    @classmethod
    def from_input_tuples(
            cls, records: Iterable[InputTuple]) -> "ElementDictionary":
        """Build a dictionary from exploded ``(Mi, a_k, f_ik)`` records.

        Duplicate ``(multiset, element)`` records (legal in raw logs; their
        multiplicities are summed downstream) count once towards the
        element's document frequency.
        """
        seen: set = set()
        frequencies: dict = {}
        for record in records:
            incidence = (record.multiset_id, record.element)
            if incidence in seen:
                continue
            seen.add(incidence)
            frequencies[record.element] = frequencies.get(record.element, 0) + 1
        return cls.from_document_frequencies(frequencies)

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: object) -> bool:
        return element in self._ids

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def id_of(self, element: Element) -> int:
        """The dense id of ``element``; raises for unknown elements."""
        try:
            return self._ids[element]
        except KeyError:
            raise InterningError(
                f"element {element!r} is not in the dictionary") from None

    def get(self, element: Element) -> int | None:
        """The dense id of ``element``, or ``None`` when unknown."""
        return self._ids.get(element)

    def element_of(self, element_id: int) -> Element:
        """The element carrying dense id ``element_id``."""
        try:
            return self._elements[element_id]
        except IndexError:
            raise InterningError(
                f"element id {element_id} is out of range "
                f"(dictionary has {len(self._elements)} elements)") from None

    def frequency_of(self, element: Element) -> int:
        """The document frequency recorded for ``element`` (0 if unknown)."""
        return self._frequencies.get(element, 0)

    # -- interning ---------------------------------------------------------

    # -- persistence ---------------------------------------------------------

    def to_records(self) -> list[tuple[int, Element, int]]:
        """The dictionary as ``(element_id, element, frequency)`` rows.

        Rows ascend by id, so a consumer that stores them and replays them
        through :meth:`from_records` reconstructs the exact dictionary —
        including the document-frequency order the ids encode.  The storage
        tier (:mod:`repro.storage`) persists dictionaries in this shape.
        """
        frequency_of = self._frequencies.get
        return [(element_id, element, frequency_of(element, 0))
                for element_id, element in enumerate(self._elements)]

    @classmethod
    def from_records(
            cls, records: Iterable[tuple[int, Element, int]],
    ) -> "ElementDictionary":
        """Rebuild a dictionary from :meth:`to_records` rows (any order).

        The ids must form the contiguous range ``0 .. n-1``; anything else
        means the rows do not describe one complete dictionary.
        """
        materialised = sorted(records)
        elements = []
        frequencies: dict = {}
        for expected, (element_id, element, frequency) in enumerate(materialised):
            if element_id != expected:
                raise InterningError(
                    f"dictionary records carry id {element_id} where "
                    f"{expected} was expected; ids must be contiguous from 0")
            elements.append(element)
            if frequency:
                frequencies[element] = frequency
        return cls(elements, frequencies)

    def intern_multiset(self, multiset: Multiset) -> "InternedMultiset":
        """Intern a multiset into its canonical sorted-array representation.

        Raises :class:`InterningError` when the multiset carries an element
        the dictionary has never seen (same contract as :meth:`id_of`).
        """
        ids = self._ids
        try:
            pairs = sorted((ids[element], multiplicity)
                           for element, multiplicity in multiset.items())
        except KeyError as missing:
            raise InterningError(
                f"multiset {multiset.id!r} contains element {missing.args[0]!r}"
                " which is not in the dictionary") from None
        return InternedMultiset(
            multiset.id,
            tuple(pair[0] for pair in pairs),
            tuple(float(pair[1]) for pair in pairs))

    def __repr__(self) -> str:
        return f"ElementDictionary(elements={len(self._elements)})"


class InternedMultiset:
    """The canonical array representation of a multiset.

    ``element_ids`` is a strictly ascending tuple of dense element ids and
    ``multiplicities`` the parallel tuple of (float) multiplicities.  The
    sorted-array form is what the merge-scan kernels in
    :mod:`repro.similarity.kernels` consume.
    """

    __slots__ = ("id", "element_ids", "multiplicities", "cardinality")

    def __init__(self, multiset_id: MultisetId,
                 element_ids: tuple, multiplicities: tuple) -> None:
        if len(element_ids) != len(multiplicities):
            raise InterningError(
                "element_ids and multiplicities must be parallel sequences")
        self.id = multiset_id
        self.element_ids = element_ids
        self.multiplicities = multiplicities
        self.cardinality = float(sum(multiplicities))

    def __len__(self) -> int:
        return len(self.element_ids)

    @property
    def underlying_cardinality(self) -> int:
        """``|U(Mi)|`` — the number of distinct elements present."""
        return len(self.element_ids)

    def items(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(element_id, multiplicity)`` pairs in id order."""
        return zip(self.element_ids, self.multiplicities)

    def __repr__(self) -> str:
        return (f"InternedMultiset(id={self.id!r}, "
                f"|U(M)|={len(self.element_ids)}, |M|={self.cardinality})")


class LocalInterner:
    """An append-only element → dense-id interner for scoped consumers.

    Ids are assigned in first-appearance order, which is all a merge-scan
    needs: both operands of a comparison must agree on the ordering, not on
    any global property.  Used by the VCL kernel reducer (one interner per
    reduce group) and the serving index (one per index lifetime).
    """

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: dict = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, element: object) -> bool:
        return element in self._ids

    def intern(self, element: Element) -> int:
        """The dense id of ``element``, assigning the next id when new."""
        ids = self._ids
        element_id = ids.get(element)
        if element_id is None:
            element_id = len(ids)
            ids[element] = element_id
        return element_id

    def get(self, element: Element) -> int | None:
        """The dense id of ``element``, or ``None`` when never interned."""
        return self._ids.get(element)

    def items(self) -> Iterator[tuple[Element, int]]:
        """Iterate ``(element, dense id)`` pairs in id-assignment order."""
        return iter(self._ids.items())

    @classmethod
    def from_items(cls,
                   items: Iterable[tuple[Element, int]]) -> "LocalInterner":
        """Rebuild an interner from :meth:`items` pairs.

        The pairs must arrive in id order with ids contiguous from 0 — the
        shape :meth:`items` produces and the storage tier persists — so the
        rebuilt interner assigns future ids exactly as the original would.
        """
        interner = cls()
        ids = interner._ids
        for element, element_id in items:
            if element_id != len(ids) or element in ids:
                raise InterningError(
                    f"interner items are not a contiguous id assignment at "
                    f"({element!r}, {element_id})")
            ids[element] = element_id
        return interner

    def intern_multiset(self, multiset: Multiset) -> InternedMultiset:
        """Intern a multiset, assigning ids to any new elements."""
        intern = self.intern
        pairs = sorted((intern(element), multiplicity)
                       for element, multiplicity in multiset.items())
        return InternedMultiset(
            multiset.id,
            tuple(pair[0] for pair in pairs),
            tuple(float(pair[1]) for pair in pairs))


def intern_corpus(
        multisets: Sequence[Multiset],
) -> tuple[ElementDictionary, list[InternedMultiset]]:
    """Intern a whole corpus: build the dictionary, intern every member."""
    dictionary = ElementDictionary.from_multisets(multisets)
    return dictionary, [dictionary.intern_multiset(multiset)
                        for multiset in multisets]


class PairCodec:
    """Packs a canonical pair of dense ids into a single integer.

    With ``num_ids`` distinct identifiers, each id fits in
    ``(num_ids - 1).bit_length()`` bits; a pair is packed as
    ``(first << shift) | second``.  Because dense multiset ids are assigned
    in ascending canonical order of the original identifiers, numeric order
    of the dense ids *is* the canonical pair order, so ``first < second``
    packs/unpacks losslessly.
    """

    __slots__ = ("shift", "_mask")

    def __init__(self, num_ids: int) -> None:
        if num_ids < 0:
            raise InterningError(f"num_ids must be >= 0, got {num_ids}")
        self.shift = max(1, (num_ids - 1).bit_length()) if num_ids else 1
        self._mask = (1 << self.shift) - 1

    def pack(self, first: int, second: int) -> int:
        """Pack an ordered ``(first, second)`` id pair into one int."""
        return (first << self.shift) | second

    def unpack(self, packed: int) -> tuple[int, int]:
        """Recover the ``(first, second)`` id pair from a packed int."""
        return packed >> self.shift, packed & self._mask

    def __repr__(self) -> str:
        return f"PairCodec(shift={self.shift})"


class InterningContext:
    """The driver-side bundle of one batch interning pass.

    Holds the element dictionary (document-frequency order), the multiset-id
    dictionary (ascending canonical order of the original identifiers, so
    dense-id order equals canonical pair order) and the pair codec sized to
    the corpus.
    """

    __slots__ = ("elements", "multiset_ids", "_multiset_id_of", "codec")

    def __init__(self, elements: ElementDictionary,
                 multiset_ids: Sequence[MultisetId]) -> None:
        self.elements = elements
        self.multiset_ids: tuple = tuple(multiset_ids)
        self._multiset_id_of: dict = {
            original: index
            for index, original in enumerate(self.multiset_ids)}
        if len(self._multiset_id_of) != len(self.multiset_ids):
            raise InterningError("multiset identifiers must be distinct")
        self.codec = PairCodec(len(self.multiset_ids))

    @classmethod
    def from_input_tuples(
            cls, records: Sequence[InputTuple]) -> "InterningContext":
        """Build the context from the exploded pipeline input."""
        elements = ElementDictionary.from_input_tuples(records)
        multiset_ids = sort_mixed({record.multiset_id for record in records})
        return cls(elements, multiset_ids)

    def intern_records(self,
                       records: Iterable[InputTuple]) -> list[InputTuple]:
        """Rewrite raw input tuples onto dense integer ids."""
        element_id_of = self.elements.id_of
        multiset_id_of = self._multiset_id_of
        return [InputTuple(multiset_id_of[record.multiset_id],
                           element_id_of(record.element),
                           record.multiplicity)
                for record in records]

    def restore_pairs(self,
                      pairs: Iterable[SimilarPair]) -> list[SimilarPair]:
        """Map the dense ids of final similar pairs back to the originals."""
        originals = self.multiset_ids
        return [SimilarPair.make(originals[pair.first], originals[pair.second],
                                 pair.similarity)
                for pair in pairs]

    def __repr__(self) -> str:
        return (f"InterningContext(elements={len(self.elements)}, "
                f"multisets={len(self.multiset_ids)})")
