"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  Subsystems define narrower
subclasses (for example :class:`MemoryBudgetExceeded` raised by the
MapReduce simulator) so tests and the experiment harness can assert on the
precise failure mode the paper describes (e.g. the Lookup algorithm not
being able to load its lookup table on the realistic dataset).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro package."""


class InvalidMultisetError(ReproError):
    """Raised when a multiset is constructed with invalid contents.

    Multiplicities must be positive integers and element identifiers must be
    hashable.  Zero or negative multiplicities are rejected rather than
    silently dropped so that data-loading bugs surface early.
    """


class InvalidVectorError(ReproError):
    """Raised when a sparse vector is constructed with invalid contents."""


class MeasureNotApplicableError(ReproError):
    """Raised when a similarity measure cannot be evaluated by a framework.

    The V-SMART-Join framework only supports Nominal Similarity Measures
    whose partial results are unilateral or conjunctive (paper section 3.2).
    Measures that declare a disjunctive partial trigger this error when
    handed to the MapReduce drivers, while remaining usable for exact
    sequential evaluation.
    """


class UnknownMeasureError(ReproError):
    """Raised when a measure name is not present in the measure registry."""


class MapReduceError(ReproError):
    """Base class for errors raised by the MapReduce simulator."""


class JobConfigurationError(MapReduceError):
    """Raised when a job specification is internally inconsistent."""


class UnsupportedFeatureError(MapReduceError):
    """Raised when a job requires an engine feature the cluster lacks.

    The paper stresses that Hadoop does not support secondary keys; running
    the Online-Aggregation joining algorithm on a Hadoop-profile cluster
    therefore raises this error.
    """


class BackendError(MapReduceError):
    """Raised when an execution backend cannot be constructed or driven.

    Covers missing optional dependencies (``get_backend("sql",
    engine="duckdb")`` without the ``repro[duckdb]`` extra installed),
    invalid backend options and backend-internal failures that are not a
    job's fault.  The message always names the remedy — the dependency and
    the extra to install, or the valid option values.
    """


class MemoryBudgetExceeded(MapReduceError):
    """Raised when a task needs more memory than its machine provides.

    This models the thrashing / out-of-memory failures the paper reports:
    the Lookup algorithm failing to load its lookup table and VCL failing to
    load the frequency-sorted alphabet on the realistic dataset.
    """

    def __init__(self, message: str, required_bytes: int = 0,
                 budget_bytes: int = 0) -> None:
        super().__init__(message)
        self.required_bytes = int(required_bytes)
        self.budget_bytes = int(budget_bytes)

    def __reduce__(self):
        # Preserve the byte attributes when the exception is pickled across
        # a process boundary (raised inside a ProcessBackend worker).
        return (type(self), (str(self), self.required_bytes, self.budget_bytes))


class DiskBudgetExceeded(MapReduceError):
    """Raised when a job writes more intermediate data than the disk budget."""

    def __init__(self, message: str, required_bytes: int = 0,
                 budget_bytes: int = 0) -> None:
        super().__init__(message)
        self.required_bytes = int(required_bytes)
        self.budget_bytes = int(budget_bytes)

    def __reduce__(self):
        return (type(self), (str(self), self.required_bytes, self.budget_bytes))


class JobTimeoutError(MapReduceError):
    """Raised when a job's simulated run time exceeds the scheduler limit.

    The paper reports that the VCL kernel mappers were killed by the
    MapReduce scheduler after 48 hours on the realistic dataset; the
    simulated scheduler reproduces that behaviour through this exception.
    """

    def __init__(self, message: str, simulated_seconds: float = 0.0,
                 limit_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.simulated_seconds = float(simulated_seconds)
        self.limit_seconds = float(limit_seconds)

    def __reduce__(self):
        return (type(self), (str(self), self.simulated_seconds, self.limit_seconds))


class PipelineError(MapReduceError):
    """Raised when a multi-job pipeline cannot be assembled or executed."""


class DatasetError(ReproError):
    """Raised by workload generators and loaders on invalid parameters."""


class ServingError(ReproError):
    """Raised by the online similarity-serving subsystem.

    Covers configuration errors (invalid shard counts, incompatible
    bootstrap inputs) and write errors such as adding a multiset under an
    identifier that is already indexed.
    """


class CommunityError(ReproError):
    """Raised by the community-discovery post-processing utilities."""


class StorageError(ReproError):
    """Raised by the durable persistence tier (:mod:`repro.storage`).

    Covers values the storage codec cannot round-trip exactly (identifiers
    and elements must be built from the supported hashable types), files
    that do not contain the requested artifact (recovering a view from a
    database that never held one), schema-version mismatches and corrupted
    mutation logs.
    """


class ServerError(ReproError):
    """Raised by the network-facing serving tier (:mod:`repro.server`).

    Covers server configuration errors (invalid queue capacities, admin
    operations that the deployment mode does not support) and request
    payloads that parse as JSON but do not describe a valid operation.
    """


class QueueFullError(ServerError):
    """Raised when a bounded server queue rejects an admission.

    Carries the backpressure hint the HTTP layer surfaces as a
    ``Retry-After`` header alongside the 429 status.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0,
                 queue: str = "") -> None:
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)
        self.queue = queue

    def __reduce__(self):
        return (type(self), (str(self), self.retry_after_seconds, self.queue))


class StreamingError(ReproError):
    """Raised by the incremental view-maintenance subsystem.

    Covers malformed change batches (a delete naming an identifier the view
    does not hold), specs a view cannot maintain exactly (approximate
    MinHash joins, stop-word-filtered joins) and serving targets that
    cannot be kept in sync with a view.
    """


class ResilienceError(ReproError):
    """Raised by the replication / fault-tolerance tier (:mod:`repro.resilience`).

    Covers replica-set configuration errors (replication factors below one,
    recovering a replica that is not down) and the fault-path subclasses
    below, each of which maps to its own wire error code.
    """


class ReplicaUnavailableError(ResilienceError):
    """Raised when no healthy replica can serve a call.

    Surfaced to clients as ``503`` with a ``Retry-After`` hint: the
    condition is transient — a replica recovery or health-check readmission
    restores service — so the right client response is backoff-and-retry,
    not failure classification.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)

    def __reduce__(self):
        return (type(self), (str(self), self.retry_after_seconds))


class ReplicaDivergenceError(ResilienceError):
    """Raised when replicas of one shard disagree after a fanned-in write.

    Replicas apply the same write stream, so their member counts and write
    versions must advance in lockstep; a divergence means a replica
    silently dropped or duplicated a write and can no longer be trusted to
    serve exact answers.
    """


class CircuitOpenError(ResilienceError):
    """Raised by a client-side circuit breaker refusing to place a call.

    The endpoint has failed enough consecutive calls that further attempts
    are presumed wasted; ``retry_after_seconds`` is the time until the
    breaker half-opens and allows a probe through.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)

    def __reduce__(self):
        return (type(self), (str(self), self.retry_after_seconds))


class DeadlineExceededError(ResilienceError):
    """Raised when a call (or request) exceeds its deadline.

    Raised client-side when retries would overrun the caller's deadline and
    server-side when a request's execution exceeds the configured
    per-request timeout (surfaced as ``504``).
    """

    def __init__(self, message: str, deadline_seconds: float = 0.0,
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.deadline_seconds = float(deadline_seconds)
        self.retry_after_seconds = retry_after_seconds

    def __reduce__(self):
        return (type(self), (str(self), self.deadline_seconds,
                             self.retry_after_seconds))


class InjectedFaultError(ResilienceError):
    """An artificial failure raised by a :class:`repro.resilience.FaultPolicy`.

    Only fault-injection harnesses (the chaos suite, the availability
    benchmark) raise this; seeing it escape to a client means a resilience
    layer failed to mask a fault it was configured to absorb.
    """
