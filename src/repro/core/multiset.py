"""Multiset data model.

The paper (section 3.1) represents each entity ``Mi`` as a multiset over an
alphabet ``A``: a mapping from alphabet elements to positive integer
multiplicities.  The motivating application represents each IP address as a
multiset of the cookies observed with it, the multiplicity being the number
of times the cookie appeared with that IP.

This module provides an immutable :class:`Multiset` with the vocabulary used
throughout the paper:

* ``cardinality`` — ``|Mi| = sum_k f_{i,k}`` (sum of multiplicities),
* ``underlying_set`` — ``U(Mi)``, the set of elements with positive
  multiplicity,
* ``underlying_cardinality`` — ``|U(Mi)|``, the number of distinct elements,
* intersection / union / symmetric-difference cardinalities used by the
  similarity measures,
* the *set expansion* of a multiset (Chaudhuri et al. [10]), which rewrites
  each element ``a`` of multiplicity ``f`` into ``f`` distinct set elements
  ``(a, 1) .. (a, f)`` so that set-only algorithms (e.g. MinHash) can be
  applied to multisets.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Any, Hashable

from repro.core.exceptions import InvalidMultisetError

Element = Hashable
MultisetId = Hashable


class Multiset(Mapping):
    """An immutable multiset (bag) of hashable elements.

    Parameters
    ----------
    multiset_id:
        The identifier of the entity (for example an IP address).  Any
        hashable value is accepted.
    elements:
        A mapping from element to positive integer multiplicity, or an
        iterable of ``(element, multiplicity)`` pairs.

    Raises
    ------
    InvalidMultisetError
        If any multiplicity is not a positive integer.
    """

    __slots__ = ("_id", "_elements", "_cardinality", "_hash", "_estimated_bytes")

    def __init__(self, multiset_id: MultisetId,
                 elements: Mapping[Element, int] | Iterable[tuple[Element, int]]) -> None:
        if isinstance(elements, Mapping):
            items = elements.items()
        else:
            items = list(elements)
        frozen: dict[Element, int] = {}
        total = 0
        for element, multiplicity in items:
            if isinstance(multiplicity, bool) or not isinstance(multiplicity, int):
                raise InvalidMultisetError(
                    f"multiplicity of element {element!r} must be an int, "
                    f"got {type(multiplicity).__name__}")
            if multiplicity <= 0:
                raise InvalidMultisetError(
                    f"multiplicity of element {element!r} must be positive, "
                    f"got {multiplicity}")
            if element in frozen:
                raise InvalidMultisetError(
                    f"element {element!r} appears more than once in the input")
            frozen[element] = multiplicity
            total += multiplicity
        self._id = multiset_id
        self._elements = frozen
        self._cardinality = total
        self._hash: int | None = None
        self._estimated_bytes: int | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_counts(cls, multiset_id: MultisetId,
                    counts: Mapping[Element, int]) -> "Multiset":
        """Build a multiset from a ``{element: multiplicity}`` mapping."""
        return cls(multiset_id, counts)

    @classmethod
    def from_iterable(cls, multiset_id: MultisetId,
                      elements: Iterable[Element]) -> "Multiset":
        """Build a multiset by counting occurrences in an iterable.

        This matches how the IP/cookie workload is formed: every observed
        (IP, cookie) event increments the multiplicity of that cookie.
        """
        counts: dict[Element, int] = {}
        for element in elements:
            counts[element] = counts.get(element, 0) + 1
        return cls(multiset_id, counts)

    @classmethod
    def from_set(cls, multiset_id: MultisetId,
                 elements: Iterable[Element]) -> "Multiset":
        """Build a multiset with multiplicity one for each distinct element."""
        return cls(multiset_id, {element: 1 for element in set(elements)})

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, element: Element) -> int:
        return self._elements[element]

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: object) -> bool:
        return element in self._elements

    # -- identity and equality ---------------------------------------------

    @property
    def id(self) -> MultisetId:
        """The entity identifier of this multiset."""
        return self._id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._id == other._id and self._elements == other._elements

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._id, frozenset(self._elements.items())))
        return self._hash

    def __repr__(self) -> str:
        preview = dict(sorted(self._elements.items(), key=repr)[:4])
        suffix = ", ..." if len(self._elements) > 4 else ""
        return (f"Multiset(id={self._id!r}, |M|={self._cardinality}, "
                f"|U(M)|={len(self._elements)}, elements={preview}{suffix})")

    # -- cardinalities -----------------------------------------------------

    @property
    def cardinality(self) -> int:
        """``|Mi|`` — the sum of all multiplicities."""
        return self._cardinality

    @property
    def underlying_cardinality(self) -> int:
        """``|U(Mi)|`` — the number of distinct elements present."""
        return len(self._elements)

    @property
    def underlying_set(self) -> frozenset:
        """``U(Mi)`` — the set of elements with positive multiplicity."""
        return frozenset(self._elements)

    def multiplicity(self, element: Element) -> int:
        """Return ``f_{i,k}`` for ``element``; zero when absent."""
        return self._elements.get(element, 0)

    def estimated_bytes(self) -> int:
        """Approximate serialised size of this multiset, cached.

        Whole multisets travel as single records in the VCL baseline, so
        their size is requested once per prefix element; caching keeps the
        simulator's bookkeeping linear instead of quadratic.
        """
        if self._estimated_bytes is None:
            size = 16
            for element, multiplicity in self._elements.items():
                size += 8
                size += len(element) + 4 if isinstance(element, str) else 8
                _ = multiplicity
            size += len(self._id) + 4 if isinstance(self._id, str) else 8
            self._estimated_bytes = size
        return self._estimated_bytes

    def counts(self) -> dict[Element, int]:
        """Return a copy of the ``{element: multiplicity}`` mapping."""
        return dict(self._elements)

    # -- pairwise cardinalities --------------------------------------------

    def intersection_cardinality(self, other: "Multiset") -> int:
        """``|Mi ∩ Mj| = sum_k min(f_{i,k}, f_{j,k})``."""
        small, large = self._ordered_by_size(other)
        return sum(min(multiplicity, large._elements.get(element, 0))
                   for element, multiplicity in small._elements.items())

    def union_cardinality(self, other: "Multiset") -> int:
        """``|Mi ∪ Mj| = sum_k max(f_{i,k}, f_{j,k})``."""
        return (self._cardinality + other._cardinality
                - self.intersection_cardinality(other))

    def symmetric_difference_cardinality(self, other: "Multiset") -> int:
        """``|Mi Δ Mj| = sum_k |f_{i,k} - f_{j,k}|``."""
        return (self._cardinality + other._cardinality
                - 2 * self.intersection_cardinality(other))

    def dot_product(self, other: "Multiset") -> int:
        """``sum_k f_{i,k} * f_{j,k}`` over the common elements."""
        small, large = self._ordered_by_size(other)
        return sum(multiplicity * large._elements.get(element, 0)
                   for element, multiplicity in small._elements.items())

    def underlying_intersection_cardinality(self, other: "Multiset") -> int:
        """``|U(Mi) ∩ U(Mj)|`` — number of shared distinct elements."""
        small, large = self._ordered_by_size(other)
        return sum(1 for element in small._elements if element in large._elements)

    def underlying_union_cardinality(self, other: "Multiset") -> int:
        """``|U(Mi) ∪ U(Mj)|`` — number of distinct elements overall."""
        return (len(self._elements) + len(other._elements)
                - self.underlying_intersection_cardinality(other))

    def common_elements(self, other: "Multiset") -> list[Element]:
        """Return the elements present in both underlying sets."""
        small, large = self._ordered_by_size(other)
        return [element for element in small._elements if element in large._elements]

    def _ordered_by_size(self, other: "Multiset") -> tuple["Multiset", "Multiset"]:
        if len(self._elements) <= len(other._elements):
            return self, other
        return other, self

    # -- transformations ----------------------------------------------------

    def restrict(self, allowed: Iterable[Element]) -> "Multiset":
        """Return a copy containing only the elements in ``allowed``.

        Used by the stop-word preprocessing step, which discards elements
        shared by more than ``q`` multisets.
        """
        allowed_set = set(allowed)
        kept = {element: multiplicity
                for element, multiplicity in self._elements.items()
                if element in allowed_set}
        return Multiset(self._id, kept)

    def without_elements(self, removed: Iterable[Element]) -> "Multiset":
        """Return a copy with the given elements removed."""
        removed_set = set(removed)
        kept = {element: multiplicity
                for element, multiplicity in self._elements.items()
                if element not in removed_set}
        return Multiset(self._id, kept)

    def underlying_multiset(self) -> "Multiset":
        """Return the underlying set as a multiset with unit multiplicities."""
        return Multiset(self._id, {element: 1 for element in self._elements})

    def set_expansion(self) -> frozenset:
        """Return the set expansion of Chaudhuri et al. [10].

        Each element ``a`` with multiplicity ``f`` is expanded into the
        ``f`` distinct pairs ``(a, 1) .. (a, f)``.  The Ruzicka similarity of
        two multisets equals the Jaccard similarity of their expansions,
        which lets set-only algorithms such as MinHash handle multisets.
        """
        expanded = set()
        for element, multiplicity in self._elements.items():
            for occurrence in range(1, multiplicity + 1):
                expanded.add((element, occurrence))
        return frozenset(expanded)

    def scaled(self, factor: int) -> "Multiset":
        """Return a copy with every multiplicity multiplied by ``factor``."""
        if not isinstance(factor, int) or factor <= 0:
            raise InvalidMultisetError(
                f"scale factor must be a positive int, got {factor!r}")
        return Multiset(self._id,
                        {element: multiplicity * factor
                         for element, multiplicity in self._elements.items()})

    def with_id(self, multiset_id: MultisetId) -> "Multiset":
        """Return a copy carrying a different entity identifier."""
        return Multiset(multiset_id, self._elements)

    def to_tuples(self) -> list[tuple[MultisetId, Element, int]]:
        """Return raw input tuples ``(Mi, a_k, f_{i,k})`` for the MR jobs.

        The V-SMART-Join joining phase consumes the dataset in exactly this
        exploded representation (one record per element) so that multisets
        with vast underlying cardinalities never have to travel as a single
        indivisible record.
        """
        return [(self._id, element, multiplicity)
                for element, multiplicity in self._elements.items()]


def content_signature(multiset: Multiset) -> frozenset:
    """The content identity of a multiset: its (element, multiplicity) pairs.

    The identifier is ignored, so two multisets with equal contents produce
    equal signatures regardless of how they were constructed (the same
    idiom :meth:`Multiset.__hash__` uses).  The serving layer keys its
    result cache on this, and the workload statistics use it to count
    distinct (cacheable) queries.
    """
    return frozenset(multiset.items())


def multiset_collection_statistics(multisets: Iterable[Multiset]) -> dict[str, Any]:
    """Compute simple aggregate statistics over a collection of multisets.

    Returns a dictionary with the number of multisets, the number of distinct
    alphabet elements, the total number of (element, multiset) incidences and
    the min / max / mean underlying cardinality.  Used by the dataset
    generators and the Fig. 2 / Fig. 3 benchmarks.
    """
    count = 0
    incidences = 0
    alphabet: set = set()
    min_underlying: int | None = None
    max_underlying = 0
    total_cardinality = 0
    for multiset in multisets:
        count += 1
        underlying = multiset.underlying_cardinality
        incidences += underlying
        total_cardinality += multiset.cardinality
        alphabet.update(multiset.underlying_set)
        if min_underlying is None or underlying < min_underlying:
            min_underlying = underlying
        if underlying > max_underlying:
            max_underlying = underlying
    return {
        "num_multisets": count,
        "num_elements": len(alphabet),
        "num_incidences": incidences,
        "total_cardinality": total_cardinality,
        "min_underlying_cardinality": min_underlying or 0,
        "max_underlying_cardinality": max_underlying,
        "mean_underlying_cardinality": (incidences / count) if count else 0.0,
    }
