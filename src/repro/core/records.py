"""Record types flowing through the V-SMART-Join MapReduce pipelines.

The paper names three record shapes explicitly:

* *raw input tuples* ``<Mi, m_{i,k}>`` — one record per (multiset, element)
  incidence, carrying the multiplicity ``f_{i,k}``;
* *joined tuples* ``<Mi, Uni(Mi), m_{i,k}>`` — the output of the joining
  phase, where every element record also carries the unilateral partial
  results of its multiset;
* *similar pairs* ``<Mi, Mj, Sim(Mi, Mj)>`` — the final output.

These are represented as small frozen dataclasses so they hash, compare and
sort deterministically, which the shuffle stage of the simulator relies on.
They carry ``slots=True`` because millions of them are alive at once in a
big join — slots cut the per-record memory (no ``__dict__``) and speed up
field access; the default slot-aware ``__getstate__`` keeps them picklable
across the :class:`~repro.mapreduce.backends.ProcessBackend` boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

from repro.core.multiset import Element, Multiset, MultisetId

UniPartials = Tuple[float, ...]


@dataclass(frozen=True, order=True, slots=True)
class InputTuple:
    """A raw input record ``<Mi, a_k, f_{i,k}>``.

    The whole dataset handed to the MapReduce pipelines is a collection of
    these records, never whole multisets, so that entities with vast
    underlying cardinalities do not have to fit in any single machine's
    memory (a central design point of the paper).
    """

    multiset_id: MultisetId
    element: Element
    multiplicity: float

    def __post_init__(self) -> None:
        if self.multiplicity <= 0:
            raise ValueError(
                f"InputTuple multiplicity must be positive, got {self.multiplicity}")


@dataclass(frozen=True, order=True, slots=True)
class JoinedTuple:
    """A joined record ``<Mi, Uni(Mi), a_k, f_{i,k}>``.

    Produced by the joining phase (Online-Aggregation, Lookup or Sharding)
    and consumed by the Similarity1 step.  ``uni`` is the tuple of unilateral
    partial results of the owning multiset under the measure being computed.
    """

    multiset_id: MultisetId
    uni: UniPartials
    element: Element
    multiplicity: float


@dataclass(frozen=True, order=True, slots=True)
class PostingEntry:
    """One inverted-index posting ``<Mi, Uni(Mi), f_{i,k}>`` for an element.

    This is the value type of the Similarity1 map output, keyed by the
    alphabet element ``a_k``.
    """

    multiset_id: MultisetId
    uni: UniPartials
    multiplicity: float


@dataclass(frozen=True, order=True, slots=True)
class PairKey:
    """The candidate-pair key ``<Mi, Mj, Uni(Mi), Uni(Mj)>``.

    The pair is canonicalised so ``first < second`` (by string representation
    when the identifiers are not mutually comparable), matching the
    deduplication-free behaviour of the paper's Similarity1 reducer which
    emits every unordered pair exactly once per shared element.
    """

    first: MultisetId
    second: MultisetId
    uni_first: UniPartials
    uni_second: UniPartials

    @classmethod
    def make(cls, id_a: MultisetId, uni_a: UniPartials,
             id_b: MultisetId, uni_b: UniPartials) -> "PairKey":
        """Build a canonically ordered pair key."""
        if _ordered_before(id_a, id_b):
            return cls(id_a, id_b, uni_a, uni_b)
        return cls(id_b, id_a, uni_b, uni_a)


@dataclass(frozen=True, order=True, slots=True)
class PairContribution:
    """A per-shared-element contribution ``<f_{i,k}, f_{j,k}>`` for a pair."""

    multiplicity_first: float
    multiplicity_second: float


@dataclass(frozen=True, order=True, slots=True)
class SimilarPair:
    """A final output record ``<Mi, Mj, Sim(Mi, Mj)>``."""

    first: MultisetId
    second: MultisetId
    similarity: float

    @classmethod
    def make(cls, id_a: MultisetId, id_b: MultisetId,
             similarity: float) -> "SimilarPair":
        """Build a canonically ordered similar pair."""
        if _ordered_before(id_a, id_b):
            return cls(id_a, id_b, similarity)
        return cls(id_b, id_a, similarity)

    @property
    def pair(self) -> tuple[MultisetId, MultisetId]:
        """The unordered pair as a canonical ``(first, second)`` tuple."""
        return (self.first, self.second)


def _ordered_before(id_a: Hashable, id_b: Hashable) -> bool:
    """Return True when ``id_a`` canonically precedes ``id_b``.

    Identifiers are usually of one type (strings or ints) and directly
    comparable; the representation fallback keeps the ordering total when a
    dataset mixes identifier types.
    """
    try:
        return id_a < id_b  # type: ignore[operator]
    except TypeError:
        return repr(id_a) < repr(id_b)


def canonical_pair(id_a: MultisetId, id_b: MultisetId) -> tuple[MultisetId, MultisetId]:
    """Return the unordered pair ``{id_a, id_b}`` in canonical order."""
    if _ordered_before(id_a, id_b):
        return (id_a, id_b)
    return (id_b, id_a)


def resolve_record_type(records, allowed: tuple[type, ...],
                        exception_type: type[Exception]) -> type:
    """Determine the single record type of a materialised input collection.

    The pipelines and the serving bootstrap both accept collections of
    either whole multisets or raw input tuples, but never a mixture — a
    mixed collection is almost always a data-loading bug.  The first record
    picks the expected type from ``allowed``; any record of a different
    type raises ``exception_type`` (each caller supplies its subsystem's
    exception class).
    """
    first = records[0]
    record_type = next((candidate for candidate in allowed
                        if isinstance(first, candidate)), None)
    if record_type is None:
        expected = " or ".join(candidate.__name__ for candidate in allowed)
        raise exception_type(
            f"input records must be {expected} instances; "
            f"got {type(first).__name__}")
    for position, record in enumerate(records):
        if not isinstance(record, record_type):
            raise exception_type(
                f"mixed input record types: expected {record_type.__name__} "
                f"records but item {position} is {type(record).__name__}")
    return record_type


def explode_multisets(multisets) -> list[InputTuple]:
    """Explode an iterable of multisets into raw :class:`InputTuple` records.

    This is the representation the V-SMART-Join pipelines consume; it is the
    inverse of :func:`assemble_multisets`.
    """
    records: list[InputTuple] = []
    for multiset in multisets:
        for element, multiplicity in multiset.items():
            records.append(InputTuple(multiset.id, element, multiplicity))
    return records


def assemble_multisets(records) -> dict[MultisetId, Multiset]:
    """Group raw :class:`InputTuple` records back into multisets.

    Multiplicities of duplicate (multiset, element) records are summed, which
    mirrors how a log-aggregation preprocessing step would behave.
    """
    counts: dict[MultisetId, dict[Element, int]] = {}
    for record in records:
        per_multiset = counts.setdefault(record.multiset_id, {})
        per_multiset[record.element] = (per_multiset.get(record.element, 0)
                                        + int(record.multiplicity))
    return {multiset_id: Multiset(multiset_id, elements)
            for multiset_id, elements in counts.items()}
