"""Sparse non-negative vector data model.

The paper notes (section 3.1) that representing multisets as non-negative
vectors is trivial when the alphabet is totally ordered, and that the
V-SMART-Join framework applies uniformly to sets, multisets and vectors.
:class:`SparseVector` is the vector-flavoured sibling of
:class:`repro.core.multiset.Multiset`: dimensions are alphabet elements and
weights are non-negative floats (not necessarily integers), which is what
document models with tf-idf weights produce.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from typing import Hashable

from repro.core.exceptions import InvalidVectorError
from repro.core.multiset import Multiset

Dimension = Hashable
VectorId = Hashable


class SparseVector(Mapping):
    """An immutable sparse vector with non-negative weights.

    Parameters
    ----------
    vector_id:
        Identifier of the entity this vector represents.
    weights:
        Mapping from dimension to strictly positive weight, or an iterable of
        ``(dimension, weight)`` pairs.  Zero weights are rejected: a sparse
        vector stores only its support.
    """

    __slots__ = ("_id", "_weights", "_l1", "_l2", "_hash")

    def __init__(self, vector_id: VectorId,
                 weights: Mapping[Dimension, float] | Iterable[tuple[Dimension, float]]) -> None:
        if isinstance(weights, Mapping):
            items = weights.items()
        else:
            items = list(weights)
        frozen: dict[Dimension, float] = {}
        l1 = 0.0
        l2_sq = 0.0
        for dimension, weight in items:
            value = float(weight)
            if not math.isfinite(value):
                raise InvalidVectorError(
                    f"weight of dimension {dimension!r} must be finite, got {weight!r}")
            if value <= 0.0:
                raise InvalidVectorError(
                    f"weight of dimension {dimension!r} must be positive, got {weight!r}")
            if dimension in frozen:
                raise InvalidVectorError(
                    f"dimension {dimension!r} appears more than once in the input")
            frozen[dimension] = value
            l1 += value
            l2_sq += value * value
        self._id = vector_id
        self._weights = frozen
        self._l1 = l1
        self._l2 = math.sqrt(l2_sq)
        self._hash: int | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_multiset(cls, multiset: Multiset) -> "SparseVector":
        """View a multiset as a sparse vector of its multiplicities."""
        return cls(multiset.id, {element: float(multiplicity)
                                 for element, multiplicity in multiset.items()})

    @classmethod
    def unit(cls, vector_id: VectorId,
             weights: Mapping[Dimension, float]) -> "SparseVector":
        """Build an L2-normalised vector from raw weights.

        Unit vectors are what the approximate cosine approaches the paper
        criticises (Elsayed et al. [13]) operate on; they discard the size of
        the entity, which is exactly the information the IP/cookie workload
        needs to keep.
        """
        vector = cls(vector_id, weights)
        norm = vector.l2_norm
        if norm == 0.0:
            raise InvalidVectorError("cannot normalise an empty vector")
        return cls(vector_id, {dimension: weight / norm
                               for dimension, weight in vector.items()})

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, dimension: Dimension) -> float:
        return self._weights[dimension]

    def __iter__(self) -> Iterator[Dimension]:
        return iter(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, dimension: object) -> bool:
        return dimension in self._weights

    # -- identity ----------------------------------------------------------

    @property
    def id(self) -> VectorId:
        """The entity identifier of this vector."""
        return self._id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._id == other._id and self._weights == other._weights

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._id, frozenset(self._weights.items())))
        return self._hash

    def __repr__(self) -> str:
        return (f"SparseVector(id={self._id!r}, dims={len(self._weights)}, "
                f"l1={self._l1:.4g}, l2={self._l2:.4g})")

    # -- norms and supports --------------------------------------------------

    @property
    def l1_norm(self) -> float:
        """Sum of weights — the vector analogue of multiset cardinality."""
        return self._l1

    @property
    def l2_norm(self) -> float:
        """Euclidean norm of the vector."""
        return self._l2

    @property
    def support(self) -> frozenset:
        """The set of dimensions with non-zero weight — ``U(Mi)``."""
        return frozenset(self._weights)

    @property
    def support_size(self) -> int:
        """Number of non-zero dimensions — ``|U(Mi)|``."""
        return len(self._weights)

    def weight(self, dimension: Dimension) -> float:
        """Return the weight of ``dimension``; zero when absent."""
        return self._weights.get(dimension, 0.0)

    # -- pairwise operations -------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """``sum_k f_{i,k} * f_{j,k}`` over the shared support."""
        small, large = self._ordered_by_size(other)
        return sum(weight * large._weights.get(dimension, 0.0)
                   for dimension, weight in small._weights.items())

    def min_sum(self, other: "SparseVector") -> float:
        """``sum_k min(f_{i,k}, f_{j,k})`` — the generalised intersection."""
        small, large = self._ordered_by_size(other)
        return sum(min(weight, large._weights.get(dimension, 0.0))
                   for dimension, weight in small._weights.items())

    def max_sum(self, other: "SparseVector") -> float:
        """``sum_k max(f_{i,k}, f_{j,k})`` — the generalised union."""
        return self._l1 + other._l1 - self.min_sum(other)

    def cosine(self, other: "SparseVector") -> float:
        """The standard vector cosine similarity."""
        if self._l2 == 0.0 or other._l2 == 0.0:
            return 0.0
        return self.dot(other) / (self._l2 * other._l2)

    def _ordered_by_size(self, other: "SparseVector") -> tuple["SparseVector", "SparseVector"]:
        if len(self._weights) <= len(other._weights):
            return self, other
        return other, self

    # -- transformations ----------------------------------------------------

    def to_multiset(self, rounding: str = "exact") -> Multiset:
        """Convert to a multiset; weights must be (near-)integers.

        ``rounding='exact'`` requires every weight to be an integer value;
        ``rounding='round'`` rounds weights to the nearest positive integer.
        """
        counts: dict[Dimension, int] = {}
        for dimension, weight in self._weights.items():
            if rounding == "exact":
                if abs(weight - round(weight)) > 1e-9:
                    raise InvalidVectorError(
                        f"dimension {dimension!r} has non-integer weight {weight}")
                counts[dimension] = int(round(weight))
            elif rounding == "round":
                counts[dimension] = max(1, int(round(weight)))
            else:
                raise InvalidVectorError(f"unknown rounding mode {rounding!r}")
        return Multiset(self._id, counts)

    def to_tuples(self) -> list[tuple[VectorId, Dimension, float]]:
        """Return the exploded ``(id, dimension, weight)`` representation."""
        return [(self._id, dimension, weight)
                for dimension, weight in self._weights.items()]
