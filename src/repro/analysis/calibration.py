"""Calibration of the simulated cluster for the paper-scale experiments.

The figure benchmarks run the scaled-down synthetic presets on a simulated
cluster whose knobs are scaled the same way the datasets are:

* :func:`paper_scale_cluster` — a cluster with the paper's machine counts
  (100–900) but a per-machine memory budget scaled so that the *small*
  preset's side data fits and the *realistic* preset's does not (mirroring
  the 1GB-per-machine budget against the proprietary datasets);
* :func:`paper_scale_cost_parameters` — cost-model rates chosen so that, at
  the synthetic data volumes, per-machine processing time and the fixed
  per-job overhead are of comparable magnitude — which is the regime the
  paper describes ("a large portion of the run times were spent in starting
  and stopping the MapReduce runs") and the regime in which the figure
  shapes (VCL's plateau, Online-Aggregation's superior scale-out) emerge.

Absolute simulated seconds are not meaningful; only the comparisons between
algorithms and across sweep points are.
"""

from __future__ import annotations

from repro.datasets.ip_cookie import PAPER_SCALED_DISK, PAPER_SCALED_MEMORY
from repro.mapreduce.cluster import GOOGLE_MAPREDUCE, Cluster, ClusterProfile
from repro.mapreduce.costmodel import CostParameters

#: Simulated scheduler kill limit: the paper's 48 hours.
SCHEDULER_LIMIT_SECONDS = 48 * 3600.0


def paper_scale_cost_parameters() -> CostParameters:
    """Cost-model rates calibrated for the scaled-down synthetic presets."""
    return CostParameters(
        job_overhead_seconds=10.0,
        machine_throughput=2_000.0,
        network_bandwidth=1_000.0,
        side_data_load_rate=180.0,
        record_overhead_bytes=64.0,
    )


def paper_scale_cluster(num_machines: int = 500,
                        profile: ClusterProfile = GOOGLE_MAPREDUCE) -> Cluster:
    """The scaled-down analogue of the paper's experimental cluster."""
    return Cluster(
        num_machines=num_machines,
        memory_per_machine=PAPER_SCALED_MEMORY,
        disk_per_machine=PAPER_SCALED_DISK,
        profile=profile,
        scheduler_limit_seconds=SCHEDULER_LIMIT_SECONDS,
    )
