"""Shared experiment harness used by the figure benchmarks and examples.

Each of the paper's figures compares algorithms across a sweep (threshold,
machine count, the sharding parameter C).  The harness runs one algorithm on
one configuration, converts the failure modes the paper reports into
statuses instead of exceptions ("did not finish" rows in the figures), and
provides sweep helpers that return plain dictionaries the benchmarks format
into tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.exceptions import (
    DiskBudgetExceeded,
    JobTimeoutError,
    MemoryBudgetExceeded,
    UnsupportedFeatureError,
)
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair
from repro.engine.engine import SimilarityEngine
from repro.engine.spec import ENGINE_ALGORITHMS, JoinSpec
from repro.mapreduce.backends import ExecutionBackend
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.costmodel import DEFAULT_COST_PARAMETERS, CostParameters

#: Status values an experiment run can end with.
STATUS_OK = "ok"
STATUS_OUT_OF_MEMORY = "out_of_memory"
STATUS_TIMEOUT = "timeout"
STATUS_UNSUPPORTED = "unsupported"
STATUS_OUT_OF_DISK = "out_of_disk"

#: The distributed contenders the figure sweeps compare (``run_algorithm``
#: itself accepts every engine algorithm, ``"auto"`` included).
ALGORITHMS = ("online_aggregation", "lookup", "sharding", "vcl")


@dataclass
class AlgorithmOutcome:
    """The outcome of running one algorithm on one configuration."""

    algorithm: str
    status: str
    simulated_seconds: float | None = None
    joining_seconds: float | None = None
    similarity_seconds: float | None = None
    num_pairs: int | None = None
    pairs: list[SimilarPair] | None = None
    detail: str = ""
    #: Measured per-job statistics of the executed pipeline (empty for
    #: in-memory algorithms and failed runs) — the raw material of
    #: :class:`repro.engine.calibration.CalibrationProfile` training.
    job_stats: list = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """Whether the run produced a result (as opposed to failing)."""
        return self.status == STATUS_OK

    def time_or_none(self) -> float | None:
        """Simulated seconds when finished, ``None`` otherwise."""
        return self.simulated_seconds if self.finished else None


def run_algorithm(algorithm: str,
                  multisets: Sequence[Multiset],
                  measure: str = "ruzicka",
                  threshold: float = 0.5,
                  cluster: Cluster | None = None,
                  sharding_threshold: int = 64,
                  stop_word_frequency: int | None = None,
                  chunk_size: int | None = None,
                  use_combiners: bool = True,
                  vcl_element_order: str = "frequency",
                  vcl_super_element_groups: int | None = None,
                  cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                  backend: str | ExecutionBackend = "serial",
                  intern: bool = True,
                  prune_candidates: bool = True,
                  keep_pairs: bool = True) -> AlgorithmOutcome:
    """Run one algorithm and capture its outcome, including failure modes.

    A thin wrapper over :class:`~repro.engine.engine.SimilarityEngine`: any
    engine algorithm can be selected by name — the V-SMART-Join joining
    algorithms, the VCL baseline, the sequential baselines, or ``"auto"``
    to let the planner choose (the outcome then reports the algorithm the
    plan picked).  Memory-budget violations, simulated-scheduler kills,
    disk exhaustion and missing engine features are converted into statuses,
    mirroring how the paper reports algorithms that "never succeeded to
    finish".  ``backend`` selects the execution backend; outcomes (pairs,
    counters, simulated times and failure statuses) are backend-invariant.
    """
    if algorithm not in ENGINE_ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"expected one of {ENGINE_ALGORITHMS}")
    spec = JoinSpec(measure=measure, threshold=threshold, algorithm=algorithm,
                    sharding_threshold=sharding_threshold,
                    stop_word_frequency=stop_word_frequency,
                    chunk_size=chunk_size, use_combiners=use_combiners,
                    intern=intern, prune_candidates=prune_candidates,
                    vcl_element_order=vcl_element_order,
                    vcl_super_element_groups=vcl_super_element_groups)
    try:
        with SimilarityEngine(cluster=cluster, backend=backend,
                              cost_parameters=cost_parameters) as engine:
            result = engine.run(spec, multisets)
        return AlgorithmOutcome(
            algorithm=result.algorithm,
            status=STATUS_OK,
            simulated_seconds=result.simulated_seconds,
            joining_seconds=result.joining_seconds,
            similarity_seconds=result.similarity_seconds,
            num_pairs=len(result.pairs),
            pairs=result.pairs if keep_pairs else None,
            job_stats=list(result.pipeline.job_stats),
        )
    except MemoryBudgetExceeded as error:
        return AlgorithmOutcome(algorithm=algorithm, status=STATUS_OUT_OF_MEMORY,
                                detail=str(error))
    except DiskBudgetExceeded as error:
        return AlgorithmOutcome(algorithm=algorithm, status=STATUS_OUT_OF_DISK,
                                detail=str(error))
    except JobTimeoutError as error:
        return AlgorithmOutcome(algorithm=algorithm, status=STATUS_TIMEOUT,
                                detail=str(error))
    except UnsupportedFeatureError as error:
        return AlgorithmOutcome(algorithm=algorithm, status=STATUS_UNSUPPORTED,
                                detail=str(error))


def threshold_sweep(algorithms: Iterable[str],
                    multisets: Sequence[Multiset],
                    thresholds: Iterable[float],
                    cluster: Cluster | None = None,
                    **run_options) -> dict[float, dict[str, AlgorithmOutcome]]:
    """Run each algorithm at each threshold (the Fig. 4 sweep)."""
    results: dict[float, dict[str, AlgorithmOutcome]] = {}
    for threshold in thresholds:
        per_algorithm: dict[str, AlgorithmOutcome] = {}
        for algorithm in algorithms:
            per_algorithm[algorithm] = run_algorithm(
                algorithm, multisets, threshold=threshold, cluster=cluster,
                **run_options)
        results[threshold] = per_algorithm
    return results


def machine_sweep(algorithms: Iterable[str],
                  multisets: Sequence[Multiset],
                  machine_counts: Iterable[int],
                  base_cluster: Cluster,
                  **run_options) -> dict[int, dict[str, AlgorithmOutcome]]:
    """Run each algorithm at each cluster size (the Fig. 5 / Fig. 6 sweeps)."""
    results: dict[int, dict[str, AlgorithmOutcome]] = {}
    for machines in machine_counts:
        cluster = base_cluster.with_machines(machines)
        per_algorithm: dict[str, AlgorithmOutcome] = {}
        for algorithm in algorithms:
            per_algorithm[algorithm] = run_algorithm(
                algorithm, multisets, cluster=cluster, **run_options)
        results[machines] = per_algorithm
    return results


def sharding_parameter_sweep(multisets: Sequence[Multiset],
                             parameter_values: Iterable[int],
                             cluster: Cluster,
                             measure: str = "ruzicka",
                             threshold: float = 0.5,
                             cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS
                             ) -> dict[int, dict[str, float]]:
    """Sweep the Sharding parameter C and split Sharding1 / Sharding2 times.

    This is the Fig. 7 experiment: the Sharding1 time falls as C rises (fewer
    table entries to emit), the Sharding2 time rises (more on-the-fly
    aggregation) and the total stays roughly flat.
    """
    results: dict[int, dict[str, float]] = {}
    for parameter in parameter_values:
        # intern=False / prune_candidates=False keep the C sweep on the
        # paper's raw-identifier cost model with the unpruned candidate
        # stream, like the other figure experiments.
        spec = JoinSpec(algorithm="sharding", measure=measure,
                        threshold=threshold,
                        sharding_threshold=int(parameter),
                        intern=False, prune_candidates=False)
        with SimilarityEngine(cluster=cluster,
                              cost_parameters=cost_parameters) as engine:
            outcome = engine.run(spec, multisets)
        stats = {s.job_name: s.simulated_seconds for s in outcome.pipeline.job_stats}
        results[int(parameter)] = {
            "sharding1_seconds": stats.get("sharding1", 0.0),
            "sharding2_seconds": stats.get("sharding2", 0.0),
            "joining_seconds": outcome.joining_seconds,
            "total_seconds": outcome.simulated_seconds,
            "num_pairs": float(len(outcome.pairs)),
        }
    return results


def agreement_check(outcomes: Iterable[AlgorithmOutcome]) -> bool:
    """Whether every finished outcome reports the same number of pairs.

    The paper notes that "all the algorithms produced the same number of
    similar pairs of IPs for each value of t"; the benchmarks assert the
    same property on the simulator.
    """
    counts = {outcome.num_pairs for outcome in outcomes if outcome.finished}
    return len(counts) <= 1
