"""Experiment harness and reporting used by the figure benchmarks."""

from repro.analysis.experiments import (
    ALGORITHMS,
    STATUS_OK,
    STATUS_OUT_OF_DISK,
    STATUS_OUT_OF_MEMORY,
    STATUS_TIMEOUT,
    STATUS_UNSUPPORTED,
    AlgorithmOutcome,
    agreement_check,
    machine_sweep,
    run_algorithm,
    sharding_parameter_sweep,
    threshold_sweep,
)
from repro.analysis.reporting import (
    format_counters,
    format_sweep_table,
    format_table,
    outcome_cell,
    relative_drop,
    speedup,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmOutcome",
    "STATUS_OK",
    "STATUS_OUT_OF_DISK",
    "STATUS_OUT_OF_MEMORY",
    "STATUS_TIMEOUT",
    "STATUS_UNSUPPORTED",
    "agreement_check",
    "format_counters",
    "format_sweep_table",
    "format_table",
    "machine_sweep",
    "outcome_cell",
    "relative_drop",
    "run_algorithm",
    "sharding_parameter_sweep",
    "speedup",
    "threshold_sweep",
]
