"""Plain-text reporting helpers for benchmarks and EXPERIMENTS.md.

The benchmarks print the same rows and series the paper's figures show; this
module formats those results as aligned ASCII tables so they are readable in
terminal output and can be pasted into EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.experiments import AlgorithmOutcome


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Format rows as an aligned, pipe-separated ASCII table."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(widths[index])
                            for index, header in enumerate(headers)))
    lines.append("-+-".join("-" * width for width in widths[:len(headers)]))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[index])
                                for index, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def outcome_cell(outcome: AlgorithmOutcome) -> str:
    """Render one algorithm outcome as a table cell (time or failure tag)."""
    if outcome.finished and outcome.simulated_seconds is not None:
        return f"{outcome.simulated_seconds:,.0f}s"
    tags = {
        "out_of_memory": "DNF (out of memory)",
        "timeout": "DNF (killed by scheduler)",
        "unsupported": "N/A (engine feature missing)",
        "out_of_disk": "DNF (out of disk)",
    }
    return tags.get(outcome.status, outcome.status)


def format_sweep_table(sweep: Mapping[object, Mapping[str, AlgorithmOutcome]],
                       algorithms: Sequence[str],
                       sweep_column: str,
                       title: str | None = None) -> str:
    """Format a sweep result (threshold or machine-count keyed) as a table."""
    headers = [sweep_column] + list(algorithms)
    rows = []
    for key in sorted(sweep):
        row: list[object] = [key]
        for algorithm in algorithms:
            outcome = sweep[key].get(algorithm)
            row.append(outcome_cell(outcome) if outcome is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def speedup(reference_seconds: float | None,
            subject_seconds: float | None) -> float | None:
    """``reference / subject`` — how many times faster the subject is.

    Returns ``None`` when either run did not finish.
    """
    if not reference_seconds or not subject_seconds:
        return None
    return reference_seconds / subject_seconds


def relative_drop(first_seconds: float | None,
                  last_seconds: float | None) -> float | None:
    """Relative run-time reduction between two sweep endpoints (0.35 = 35%)."""
    if not first_seconds or not last_seconds:
        return None
    return (first_seconds - last_seconds) / first_seconds


def format_counters(counters: Mapping[str, int], prefix: str = "") -> str:
    """Format job counters (optionally filtered by prefix) as aligned text."""
    selected = {name: value for name, value in sorted(counters.items())
                if name.startswith(prefix)}
    if not selected:
        return "(no counters)"
    width = max(len(name) for name in selected)
    return "\n".join(f"{name.ljust(width)}  {value:,}" for name, value in selected.items())
