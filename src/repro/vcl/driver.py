"""High-level driver for the VCL baseline.

:class:`VCLJoin` chains the frequency preprocessing, kernel and
deduplication jobs and returns the same result shape as
:class:`repro.vsmart.driver.VSmartJoin`, so the benchmarks can run both
frameworks side by side.  Unlike V-SMART-Join, VCL consumes whole multisets
as single records — the representation responsible for its memory and
replication bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.exceptions import JobConfigurationError
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair
from repro.mapreduce.backends import ExecutionBackend
from repro.mapreduce.cluster import Cluster, laptop_cluster
from repro.mapreduce.costmodel import DEFAULT_COST_PARAMETERS, CostParameters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.runner import LocalJobRunner, PipelineResult
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.registry import get_measure
from repro.vcl.grouping import SuperElementGrouping
from repro.vcl.kernel import build_dedup_job, build_frequency_job, build_kernel_job

#: Canonical-order modes for the VCL alphabet.
FREQUENCY_ORDER = "frequency"
HASH_ORDER = "hash"


@dataclass(frozen=True)
class VCLConfig:
    """Configuration of a VCL run.

    ``element_order`` selects how the alphabet is canonically ordered:
    ``"frequency"`` (requires loading the whole frequency map into every
    kernel mapper, the paper's default) or ``"hash"`` (the fallback used on
    the realistic dataset).  ``super_element_groups`` enables grouping with
    the given number of super-elements; ``None`` disables grouping (one
    element per group, the configuration the VCL authors recommend).
    """

    measure: str | NominalSimilarityMeasure = "ruzicka"
    threshold: float = 0.5
    element_order: str = FREQUENCY_ORDER
    super_element_groups: int | None = None
    #: Verify pairs on the interned merge-scan kernels (identical results;
    #: ``False`` restores the dict-probe reference path).
    intern: bool = True

    def __post_init__(self) -> None:
        validate_threshold(self.threshold)
        if self.element_order not in (FREQUENCY_ORDER, HASH_ORDER):
            raise JobConfigurationError(
                f"element_order must be {FREQUENCY_ORDER!r} or {HASH_ORDER!r}, "
                f"got {self.element_order!r}")
        if self.super_element_groups is not None and self.super_element_groups < 1:
            raise JobConfigurationError("super_element_groups must be >= 1")

    def resolved_measure(self) -> NominalSimilarityMeasure:
        """Resolve and validate the configured measure."""
        measure = get_measure(self.measure)
        measure.check_supported()
        return measure

    def grouping(self) -> SuperElementGrouping | None:
        """The super-element grouping, or ``None`` when disabled."""
        if self.super_element_groups is None:
            return None
        return SuperElementGrouping(self.super_element_groups)


@dataclass
class VCLJoinResult:
    """The outcome of a VCL run."""

    pairs: list[SimilarPair]
    pipeline: PipelineResult
    config: VCLConfig

    @property
    def simulated_seconds(self) -> float:
        """Total simulated run time of the VCL pipeline."""
        return self.pipeline.simulated_seconds

    def counters(self) -> dict[str, int]:
        """All job counters summed over the pipeline."""
        return self.pipeline.counters()


class VCLJoin:
    """Run the VCL baseline on a simulated cluster.

    ``backend`` selects the execution backend, exactly as for
    :class:`~repro.vsmart.driver.VSmartJoin`; results are backend-invariant.
    """

    def __init__(self, config: VCLConfig | None = None,
                 cluster: Cluster | None = None,
                 cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                 enforce_budgets: bool = True,
                 backend: str | ExecutionBackend = "serial") -> None:
        self.config = config or VCLConfig()
        self.cluster = cluster or laptop_cluster()
        self.runner = LocalJobRunner(self.cluster, cost_parameters,
                                     enforce_budgets=enforce_budgets,
                                     backend=backend)

    def close(self) -> None:
        """Release the execution backend when the driver created it."""
        self.runner.close()

    def __enter__(self) -> "VCLJoin":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(self, multisets: Iterable[Multiset] | Dataset) -> VCLJoinResult:
        """Execute the VCL pipeline and return the similar pairs."""
        measure = self.config.resolved_measure()
        dataset = multisets if isinstance(multisets, Dataset) else Dataset(
            "vcl_input", list(multisets))
        job_stats = []

        frequencies: dict | None = None
        use_frequency_order = self.config.element_order == FREQUENCY_ORDER
        if use_frequency_order:
            frequency_result = self.runner.run(build_frequency_job(), dataset)
            job_stats.append(frequency_result.stats)
            frequencies = dict(frequency_result.output.records)

        kernel_job = build_kernel_job(measure, self.config.threshold,
                                      frequencies,
                                      use_frequency_order=use_frequency_order,
                                      grouping=self.config.grouping(),
                                      intern=self.config.intern)
        kernel_result = self.runner.run(kernel_job, dataset)
        job_stats.append(kernel_result.stats)

        dedup_result = self.runner.run(build_dedup_job(), kernel_result.output)
        job_stats.append(dedup_result.stats)

        pairs = sorted(dedup_result.output.records)
        pipeline = PipelineResult(
            name="vcl",
            output=dedup_result.output,
            job_stats=job_stats,
            artifacts={
                "measure": measure.name,
                "threshold": self.config.threshold,
                "element_order": self.config.element_order,
            },
        )
        return VCLJoinResult(pairs=pairs, pipeline=pipeline, config=self.config)


def vcl_join(multisets: Iterable[Multiset],
             measure: str | NominalSimilarityMeasure = "ruzicka",
             threshold: float = 0.5,
             cluster: Cluster | None = None,
             backend: str | ExecutionBackend = "serial",
             *,
             cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
             enforce_budgets: bool = True,
             **config_overrides) -> list[SimilarPair]:
    """Deprecated one-call API; use :func:`repro.join` / the engine instead.

    .. deprecated:: 1.3
        ``vcl_join(...)`` is superseded by the unified engine::

            repro.join(multisets, algorithm="vcl", measure=...,
                       threshold=...).pairs

        The shim delegates to the engine (which executes through this
        module's :class:`VCLJoin`, so the pairs are bit-identical to a
        direct driver call) and — unlike the historical function, which
        silently dropped them — forwards ``cost_parameters`` and
        ``enforce_budgets`` to the driver.  Both are keyword-only so the
        historical positional argument order keeps working.
    """
    import warnings

    warnings.warn(
        "vcl_join() is deprecated; use repro.join(data, algorithm='vcl', "
        "...) or SimilarityEngine.run(JoinSpec(...)) instead",
        DeprecationWarning, stacklevel=2)
    from repro.engine.engine import join as engine_join

    spec_fields = {f"vcl_{name}" if name in ("element_order",
                                             "super_element_groups") else name:
                   value for name, value in config_overrides.items()}
    result = engine_join(multisets, cluster=cluster,
                         cost_parameters=cost_parameters,
                         enforce_budgets=enforce_budgets, backend=backend,
                         measure=measure, threshold=threshold,
                         algorithm="vcl", **spec_fields)
    return result.pairs
