"""Prefix filtering for the VCL baseline (paper section 6).

VCL (Vernica, Carey and Li [33]) is a MapReduce adaptation of PPJoin+ whose
kernel step replicates every multiset once per *prefix element*.  The prefix
of an entity, under a global canonical ordering of the alphabet, is the
smallest leading portion such that two entities sharing no prefix element
cannot reach the similarity threshold.

This module implements the weighted (multiset-aware) prefix:

* elements of ``U(Mi)`` are sorted by a global rank (ascending element
  frequency, as in the paper, or a hash of the element when the frequency
  list cannot be loaded);
* the *suffix* is grown greedily from the most frequent end while its total
  multiplicity stays strictly below the measure's size lower bound
  ``size_lower_bound(|Mi|, t)`` — the smallest overlap a qualifying partner
  must reach; everything else is the prefix.

With unit multiplicities this reduces to the classical prefix length
``|U| - ceil(t |U|) + 1`` for Jaccard.  The correctness argument (any
similar pair shares its canonically smallest common element, which must lie
in both prefixes) holds for every measure providing a positive
``size_lower_bound``; measures without one fall back to "the whole entity is
the prefix", which degenerates to the exhaustive inverted-index join but
never loses pairs.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.core.multiset import Multiset
from repro.mapreduce.partitioner import stable_hash
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold

RankFunction = Callable[[Hashable], tuple]


class FrequencyRank:
    """Rank elements by ascending global frequency (rare elements first).

    Ties are broken by a stable hash so the order is total and deterministic.
    A class (rather than a closure) so that mappers holding a rank function
    stay picklable for the process execution backend.
    """

    __slots__ = ("frequencies",)

    def __init__(self, frequencies: dict) -> None:
        self.frequencies = frequencies

    def __call__(self, element: Hashable) -> tuple:
        return (self.frequencies.get(element, 0), stable_hash(element, salt="vcl-rank"))


class HashRank:
    """Rank elements by their hash signature (no side data needed)."""

    __slots__ = ()

    def __call__(self, element: Hashable) -> tuple:
        return (stable_hash(element, salt="vcl-rank"),)


def frequency_rank_function(frequencies: dict) -> RankFunction:
    """The ordering VCL uses when the frequency-sorted alphabet fits in memory."""
    return FrequencyRank(frequencies)


def hash_rank_function() -> RankFunction:
    """The fallback ordering the paper applied on the realistic dataset.

    Needs no side data but loses the benefit of putting rare elements in the
    prefix.
    """
    return HashRank()


def ordered_elements(multiset: Multiset, rank: RankFunction) -> list:
    """Return ``U(Mi)`` sorted by the global canonical order."""
    return sorted(multiset.underlying_set, key=rank)


def prefix_elements(multiset: Multiset, rank: RankFunction,
                    measure: NominalSimilarityMeasure,
                    threshold: float) -> list:
    """Compute the prefix of ``multiset`` for ``measure`` at ``threshold``.

    Returns the prefix elements in canonical order.  The suffix (the dropped
    elements) always has total effective multiplicity strictly below the
    measure's ``size_lower_bound`` of the entity, which guarantees that any
    qualifying pair shares at least one prefix element of each side.
    """
    limit = validate_threshold(threshold)
    elements = ordered_elements(multiset, rank)
    size = sum(measure.effective_multiplicity(multiset.multiplicity(element))
               for element in elements)
    bound = measure.size_lower_bound(size, limit)
    if bound <= 0:
        return elements
    suffix_weight = 0.0
    cut = len(elements)
    for index in range(len(elements) - 1, -1, -1):
        weight = measure.effective_multiplicity(
            multiset.multiplicity(elements[index]))
        if suffix_weight + weight < bound:
            suffix_weight += weight
            cut = index
        else:
            break
    prefix = elements[:cut]
    if not prefix and elements:
        # Degenerate thresholds (t very close to 0) can make the bound
        # vacuous; keep at least one element so the pair is still generated.
        prefix = elements[:1]
    return prefix


def prefix_length_classic(underlying_cardinality: int,
                          measure: NominalSimilarityMeasure,
                          threshold: float) -> int:
    """The classical (set) prefix length ``|U| - ceil(t' |U|) + 1``.

    Exposed for tests that check the weighted prefix reduces to the
    classical one on sets.
    """
    return measure.prefix_size(underlying_cardinality, validate_threshold(threshold))
