"""Super-element grouping for VCL (paper section 6.2).

To shrink the alphabet that VCL mappers must hold in memory, Vernica et al.
proposed hashing elements into a fixed number of *super-elements* and
running prefix filtering on the grouped representation.  Grouping makes the
prefixes coarser, so pairs that share a prefix super-element without sharing
a prefix element ("superfluous pairs") reach the reducers and must be weeded
out by exact verification — which, as the paper's experiments showed,
consistently costs more than the memory it saves.  The ablation benchmark
``bench_ablation_vcl_grouping`` reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.multiset import Multiset
from repro.mapreduce.partitioner import stable_hash


@dataclass(frozen=True)
class SuperElementGrouping:
    """Hash-based grouping of alphabet elements into super-elements.

    ``num_groups`` is the size of the super-element alphabet; one element per
    group (i.e. no grouping) is the configuration the VCL authors ended up
    recommending.
    """

    num_groups: int

    def __post_init__(self) -> None:
        if self.num_groups < 1:
            raise ValueError("num_groups must be at least 1")

    def group_of(self, element: object) -> int:
        """The super-element identifier of an alphabet element."""
        return stable_hash(element, salt="vcl-grouping") % self.num_groups

    def group_multiset(self, multiset: Multiset) -> Multiset:
        """Rewrite a multiset over super-elements (multiplicities summed).

        The grouped representation never underestimates similarity for the
        min/sum measures used here, so prefix filtering on it cannot lose
        pairs — it only admits superfluous candidates.
        """
        grouped: dict[int, int] = {}
        for element, multiplicity in multiset.items():
            group = self.group_of(element)
            grouped[group] = grouped.get(group, 0) + multiplicity
        return Multiset(multiset.id, grouped)
