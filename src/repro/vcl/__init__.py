"""The VCL baseline: a MapReduce adaptation of PPJoin+ (Vernica et al.)."""

from repro.vcl.driver import (
    FREQUENCY_ORDER,
    HASH_ORDER,
    VCLConfig,
    VCLJoin,
    VCLJoinResult,
    vcl_join,
)
from repro.vcl.grouping import SuperElementGrouping
from repro.vcl.kernel import (
    DeduplicationMapper,
    DeduplicationReducer,
    ElementFrequencyMapper,
    ElementFrequencyReducer,
    VCLKernelMapper,
    VCLKernelReducer,
    build_dedup_job,
    build_frequency_job,
    build_kernel_job,
)
from repro.vcl.prefix import (
    frequency_rank_function,
    hash_rank_function,
    ordered_elements,
    prefix_elements,
    prefix_length_classic,
)

__all__ = [
    "DeduplicationMapper",
    "DeduplicationReducer",
    "ElementFrequencyMapper",
    "ElementFrequencyReducer",
    "FREQUENCY_ORDER",
    "HASH_ORDER",
    "SuperElementGrouping",
    "VCLConfig",
    "VCLJoin",
    "VCLJoinResult",
    "VCLKernelMapper",
    "VCLKernelReducer",
    "build_dedup_job",
    "build_frequency_job",
    "build_kernel_job",
    "frequency_rank_function",
    "hash_rank_function",
    "ordered_elements",
    "prefix_elements",
    "prefix_length_classic",
    "vcl_join",
]
