"""The VCL kernel and supporting MapReduce jobs (paper section 6.2).

The VCL baseline consists of three MapReduce steps:

* a **preprocessing** step that counts the global frequency of every
  alphabet element (needed to sort the alphabet by frequency);
* the **kernel** step: every mapper loads the frequency-ordered alphabet
  into memory, computes the prefix of each multiset and replicates the
  *entire multiset* once per prefix element; each reducer receives, for one
  element, every multiset having that element in its prefix
  (``materializes_input``), and computes the exact similarity of every pair
  in the group;
* a **deduplication** step, since a pair sharing several prefix elements is
  produced by several reducers.

The two scalability problems the paper attributes to VCL fall out of this
structure on the simulator: the map output volume is proportional to
``|Prefix(Mi)| x |U(Mi)|`` (replication of whole multisets), and both the
alphabet side data and the whole-multiset records must fit in memory.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.interning import LocalInterner
from repro.core.multiset import Multiset
from repro.core.records import SimilarPair, canonical_pair
from repro.mapreduce.job import JobSpec, Mapper, Reducer, SummingCombiner, TaskContext
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.kernels import interned_similarity, interned_unilateral
from repro.vcl.grouping import SuperElementGrouping
from repro.vcl.prefix import (
    RankFunction,
    frequency_rank_function,
    hash_rank_function,
    prefix_elements,
)


class ElementFrequencyMapper(Mapper):
    """Count element frequencies: ``<Mi, {m_ik}> -> (<a_k, 1>)*``."""

    def map(self, record: Multiset, context: TaskContext) -> Iterator[tuple]:
        for element in record.underlying_set:
            yield (element, 1)


class ElementFrequencyReducer(Reducer):
    """Sum the per-element counts into ``<a_k, Freq(a_k)>`` records."""

    materializes_input = False

    def reduce(self, key: object, values: Sequence[int],
               context: TaskContext) -> Iterator[tuple]:
        yield (key, sum(values))


def build_frequency_job(name: str = "vcl_frequencies") -> JobSpec:
    """Build the VCL preprocessing job that counts element frequencies."""
    return JobSpec(name=name,
                   mapper=ElementFrequencyMapper(),
                   reducer=ElementFrequencyReducer(),
                   combiner=SummingCombiner())


class VCLKernelMapper(Mapper):
    """``mapVCL``: replicate each whole multiset per prefix element.

    The rank function is either frequency-based (requiring the full
    frequency map as side data) or hash-based (no side data, the fallback the
    paper tried on the realistic dataset).  With super-element grouping the
    prefix is computed on the grouped representation, which shrinks the
    alphabet but admits superfluous candidate pairs.
    """

    def __init__(self, measure: NominalSimilarityMeasure, threshold: float,
                 use_frequency_order: bool = True,
                 grouping: SuperElementGrouping | None = None) -> None:
        self.measure = measure
        self.threshold = validate_threshold(threshold)
        self.use_frequency_order = use_frequency_order
        self.grouping = grouping
        self._rank: RankFunction = hash_rank_function()

    def setup(self, context: TaskContext) -> None:
        if self.use_frequency_order:
            frequencies = context.side_data or {}
            self._rank = frequency_rank_function(frequencies)
        else:
            self._rank = hash_rank_function()

    def map(self, record: Multiset, context: TaskContext) -> Iterator[tuple]:
        if self.grouping is not None:
            prefix_source = self.grouping.group_multiset(record)
        else:
            prefix_source = record
        prefix = prefix_elements(prefix_source, self._rank,
                                 self.measure, self.threshold)
        context.increment("vcl/prefix_elements", len(prefix))
        for element in prefix:
            yield (element, record)


class VCLKernelReducer(Reducer):
    """``reduceVCL``: verify every pair of multisets sharing a prefix element.

    The reduce value list holds whole multisets and must be materialised, so
    the runner's memory budget applies; the similarity of each pair is
    computed exactly from the full multisets (no partial results needed,
    which is why VCL can afford to — and must — ship whole entities).

    With ``intern=True`` (the default) each group is interned once — a
    per-group :class:`~repro.core.interning.LocalInterner` maps elements to
    dense ids and every member becomes a sorted array — so the quadratic
    pair verification runs on the merge-scan kernels with the ``Uni``
    partials folded once per member instead of once per pair.  The
    similarity values are identical either way.
    """

    materializes_input = True

    def __init__(self, measure: NominalSimilarityMeasure, threshold: float,
                 intern: bool = True) -> None:
        self.measure = measure
        self.threshold = validate_threshold(threshold)
        self.intern = intern

    def reduce(self, key: object, values: Sequence[Multiset],
               context: TaskContext) -> Iterator[tuple]:
        multisets = list(values)
        if self.intern and len(multisets) > 1:
            yield from self._reduce_interned(multisets, context)
            return
        for index_i in range(len(multisets)):
            entity_i = multisets[index_i]
            for index_j in range(index_i + 1, len(multisets)):
                entity_j = multisets[index_j]
                if entity_i.id == entity_j.id:
                    continue
                context.increment("vcl/pairs_verified", 1)
                similarity = self.measure.similarity(entity_i, entity_j)
                if similarity >= self.threshold:
                    yield (canonical_pair(entity_i.id, entity_j.id), similarity)

    def _reduce_interned(self, multisets: list[Multiset],
                         context: TaskContext) -> Iterator[tuple]:
        measure = self.measure
        interner = LocalInterner()
        interned = [interner.intern_multiset(multiset) for multiset in multisets]
        unis = [interned_unilateral(measure, entity) for entity in interned]
        for index_i in range(len(interned)):
            entity_i = interned[index_i]
            for index_j in range(index_i + 1, len(interned)):
                entity_j = interned[index_j]
                if entity_i.id == entity_j.id:
                    continue
                context.increment("vcl/pairs_verified", 1)
                similarity = interned_similarity(measure, entity_i, entity_j,
                                                 unis[index_i], unis[index_j])
                if similarity >= self.threshold:
                    yield (canonical_pair(entity_i.id, entity_j.id), similarity)


def build_kernel_job(measure: NominalSimilarityMeasure, threshold: float,
                     frequencies: dict | None,
                     use_frequency_order: bool = True,
                     grouping: SuperElementGrouping | None = None,
                     name: str = "vcl_kernel",
                     intern: bool = True) -> JobSpec:
    """Build the VCL kernel job.

    ``frequencies`` is the element-frequency map produced by the
    preprocessing job; it becomes mapper side data when frequency ordering is
    requested (and must therefore fit in every mapper's memory).  ``intern``
    selects the merge-scan pair verification of the reducer (identical
    results, array-backed kernels).
    """
    mapper = VCLKernelMapper(measure, threshold, use_frequency_order, grouping)
    side_data = frequencies if use_frequency_order else None
    return JobSpec(name=name,
                   mapper=mapper,
                   reducer=VCLKernelReducer(measure, threshold, intern=intern),
                   side_data=side_data)


class DeduplicationMapper(Mapper):
    """Key candidate results by their canonical pair for deduplication."""

    def map(self, record: tuple, context: TaskContext) -> Iterator[tuple]:
        pair, similarity = record
        yield (pair, similarity)


class DeduplicationReducer(Reducer):
    """Emit each similar pair exactly once (duplicates agree on the value)."""

    materializes_input = False

    def reduce(self, key: tuple, values: Sequence[float],
               context: TaskContext) -> Iterator[SimilarPair]:
        context.increment("vcl/duplicate_results", max(0, len(values) - 1))
        first, second = key
        yield SimilarPair(first, second, values[0])


def build_dedup_job(name: str = "vcl_dedup") -> JobSpec:
    """Build the VCL post-processing job removing duplicate pair results."""
    return JobSpec(name=name,
                   mapper=DeduplicationMapper(),
                   reducer=DeduplicationReducer())
