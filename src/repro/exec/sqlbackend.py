"""SQL-pushdown backend: compile V-SMART-Join phases into set-oriented SQL.

:class:`SqlBackend` recognises the three reduce shapes of the paper's
pipelines and replaces their Python reduce loops with one aggregation
query each, executed over SQLite (stdlib) or DuckDB (the optional
``repro[duckdb]`` extra):

* **Similarity2** — the conjunctive fold per candidate pair becomes
  ``SELECT gid, SUM(c0), ... GROUP BY gid``;
* **Similarity1** — the quadratic candidate enumeration per element
  becomes a self-join of the postings table
  (``a.gid = b.gid AND a.gidx < b.gidx AND a.mid <> b.mid``), ordered to
  reproduce the serial nested loop exactly; upper-bound pruning and
  record construction stay in Python so floats stay bit-identical;
* **Online-Aggregation** — the ``Uni`` accumulation per multiset becomes
  the same grouped ``SUM``.

Parity contract: results, counters and stats are bit-identical to the
serial backend.  Pushing a float fold into SQL reorders the additions, so
each compiler *gates* on the inputs: partials must be merged by the base
measure's element-wise sum, the identity must be all zeros, and every
component must be an integral float (the V-SMART-Join partials are sums
of integer multiplicities and minima/products thereof, so this holds for
every stock measure) with group totals below ``2**53`` — integer-valued
float addition is associative below that bound, making ``SUM`` order
independent.  When a gate fails — or the job is not one of the three
shapes (sharding, lookup table building, chunked or stop-worded
Similarity1, arbitrary user jobs) — the backend falls back to the exact
generic Python path, so it is always safe to select.

Pushdown observability lands in the reserved ``sql/`` counter namespace
(``sql/pushdown_jobs``, ``sql/fallback_jobs``), excluded from the parity
contract like ``shuffle/``.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Iterator, Sequence

from repro.core.exceptions import BackendError
from repro.core.records import JoinedTuple, SimilarPair
from repro.exec.accounting import ReduceAccounting
from repro.mapreduce.backends import ExecutionBackend
from repro.mapreduce.phases import Spill, spill_record
from repro.mapreduce.types import KeyValue, estimate_record_bytes
from repro.similarity.base import NominalSimilarityMeasure
from repro.vsmart.online_aggregation import UNI_TAG, OnlineAggregationReducer
from repro.vsmart.similarity_phase import Similarity1Reducer, Similarity2Reducer

#: Largest magnitude at which float addition of integers is still exact.
_EXACT_SUM_BOUND = 2.0 ** 53


def _load_duckdb() -> Any:
    try:
        import duckdb
    except ImportError as error:
        raise BackendError(
            "the 'sql' backend with engine='duckdb' requires the optional "
            "duckdb dependency, which is not installed; install it with "
            "pip install 'repro[duckdb]' (or use the stdlib default "
            "engine='sqlite', which needs nothing extra)") from error
    return duckdb


class _Scratch:
    """Minimal uniform cursor API over a sqlite3 or duckdb connection."""

    def __init__(self, connection: Any) -> None:
        self._connection = connection

    def run(self, sql: str) -> None:
        self._connection.execute(sql)

    def load(self, sql: str, rows: Sequence[tuple]) -> None:
        self._connection.executemany(sql, rows)

    def rows(self, sql: str) -> list[tuple]:
        return self._connection.execute(sql).fetchall()

    def close(self) -> None:
        self._connection.close()


class SqlBackend(ExecutionBackend):
    """Execute the V-SMART-Join reduce phases as SQL aggregations.

    ``engine`` selects ``"sqlite"`` (stdlib, the default) or ``"duckdb"``
    (requires the ``repro[duckdb]`` extra; missing it raises
    :class:`~repro.core.exceptions.BackendError` here, at construction,
    never mid-job).  ``database`` optionally points the scratch space at a
    file (per-job tables are dropped and recreated); the default is a
    private in-memory database per job.
    """

    name = "sql"

    def __init__(self, num_workers: int | None = None, *,
                 engine: str = "sqlite",
                 database: str | None = None) -> None:
        # As for the disk backend: map/combine must match the serial
        # runner exactly, so the backend always uses one worker.
        super().__init__(1)
        engine_name = str(engine).strip().lower()
        if engine_name not in ("sqlite", "duckdb"):
            raise BackendError(
                f"unknown SQL engine {engine!r} for the 'sql' backend; "
                f"choose 'sqlite' (stdlib) or 'duckdb' (needs the "
                f"repro[duckdb] extra)")
        self._duckdb = _load_duckdb() if engine_name == "duckdb" else None
        self.engine = engine_name
        self.database = database

    def run_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> list[Any]:
        return [function(task) for task in tasks]

    # -- job orchestration ----------------------------------------------------

    def execute_phases(self, runner: Any, job: Any, dataset: Any,
                       stats: Any, counters: Any,
                       num_reducers: int) -> list[Any] | None:
        compiler = self._compiler_for(job)
        if compiler is None:
            return None  # not a known phase shape: generic path
        map_output, _ = runner._run_map_phase(
            job, dataset, stats, counters, num_reducers, build_spill=False)
        if job.combiner is not None:
            map_output, _ = runner._run_combine_phase(
                job, map_output, stats, counters, num_reducers,
                build_spill=False)
        stats.shuffle_bytes = (stats.combine.bytes_out
                               if job.combiner is not None
                               else stats.map.bytes_out)
        stats.spilled_bytes = stats.shuffle_bytes
        # Group exactly as the serial shuffle does, then hand the reduce
        # phase to the compiled query.
        spill: Spill = {}
        partitioner = job.partitioner
        for key_value in map_output:
            spill_record(spill, partitioner(key_value.key, num_reducers),
                         key_value)
        partitions = runner._finish_shuffle(job, spill)
        output_records = compiler(runner, job, partitions, stats, counters)
        if output_records is None:
            # A pushdown gate failed (non-integral partials, overridden
            # merge, oversized sums): run the exact Python reduce.
            counters.increment("sql/fallback_jobs", 1)
            return runner._run_reduce_phase(job, partitions, stats, counters)
        counters.increment("sql/pushdown_jobs", 1)
        return output_records

    def _compiler_for(self, job: Any) -> Callable[..., list[Any] | None] | None:
        reducer = job.reducer
        if isinstance(reducer, Similarity2Reducer):
            return self._reduce_similarity2
        if isinstance(reducer, Similarity1Reducer):
            config = reducer.config
            # Chunked reducers emit chunk-pair records (different job
            # shape) and stop-worded ones drop whole groups; both keep
            # the exact Python loop.
            if config.chunk_size is None and config.stop_word_frequency is None:
                return self._reduce_similarity1
            return None
        if isinstance(reducer, OnlineAggregationReducer):
            return self._reduce_online_aggregation
        return None

    # -- scratch databases ----------------------------------------------------

    def _connect(self) -> _Scratch:
        if self.engine == "duckdb":
            return _Scratch(self._duckdb.connect(self.database or ":memory:"))
        connection = sqlite3.connect(self.database or ":memory:",
                                     timeout=5.0, isolation_level=None)
        # Mirror repro.storage.StorageEngine's pragma discipline so
        # file-backed scratch databases behave like the persistence
        # tier's stores (WAL readers don't block the writer, bounded
        # lock waits instead of immediate failures).
        connection.execute("PRAGMA busy_timeout = 5000")
        connection.execute("PRAGMA journal_mode = WAL")
        connection.execute("PRAGMA synchronous = NORMAL")
        connection.execute("PRAGMA foreign_keys = ON")
        return _Scratch(connection)

    def _grouped_sums(self, arity: int,
                      rows: list[tuple]) -> dict[int, tuple[float, ...]] | None:
        """Sum integral partials per group: ``gid -> component sums``.

        Returns ``None`` when any total reaches ``2**53`` (float addition
        would no longer be exact in every order — fall back to Python).
        """
        columns = ", ".join(f"c{index} DOUBLE" for index in range(arity))
        selects = ", ".join(f"SUM(c{index})" for index in range(arity))
        marks = ", ".join("?" for _ in range(arity + 1))
        scratch = self._connect()
        try:
            scratch.run("DROP TABLE IF EXISTS partials")
            scratch.run(f"CREATE TABLE partials (gid BIGINT, {columns})")
            scratch.load(f"INSERT INTO partials VALUES ({marks})", rows)
            result = scratch.rows(
                f"SELECT gid, {selects} FROM partials GROUP BY gid ORDER BY gid")
            scratch.run("DROP TABLE partials")
        finally:
            scratch.close()
        sums: dict[int, tuple[float, ...]] = {}
        for row in result:
            components = tuple(float(total) for total in row[1:])
            if any(not (abs(component) < _EXACT_SUM_BOUND)
                   for component in components):
                return None
            sums[int(row[0])] = components
        return sums

    # -- phase compilers ------------------------------------------------------

    def _reduce_similarity2(self, runner: Any, job: Any, partitions: dict,
                            stats: Any, counters: Any) -> list[Any] | None:
        """``SUM`` the conjunctive partials per candidate pair."""
        reducer = job.reducer
        measure = reducer.measure
        zero = _pushdown_zero(measure, "conj")
        if zero is None:
            return None
        arity = len(zero)
        groups: list[tuple[int, Any, int, int]] = []
        rows: list[tuple] = []
        for gid, partition, key, key_values in _serial_groups(partitions):
            bytes_in = 0
            for key_value in key_values:
                components = _integral_components(key_value.value, arity)
                if components is None:
                    return None
                rows.append((gid, *components))
                bytes_in += estimate_record_bytes(key_value)
            groups.append((partition, key, len(key_values), bytes_in))
        sums = self._grouped_sums(arity, rows)
        if sums is None:
            return None

        accounting = ReduceAccounting(runner, job)
        context = accounting.context
        codec = reducer.pair_codec
        threshold = reducer.threshold
        for gid, (partition, key, group_records, bytes_in) in enumerate(groups):
            conj = sums[gid]
            if codec is None:
                first, second = key.first, key.second
                uni_first, uni_second = key.uni_first, key.uni_second
            else:
                packed, uni_first, uni_second = key
                first, second = codec.unpack(packed)
            similarity = measure.combine(uni_first, uni_second, conj)
            accounting.start_group(job, key, group_records, bytes_in, False)
            context.increment("similarity2/pairs_evaluated", 1)
            bytes_out = 0
            records_out = 0
            if similarity >= threshold:
                context.increment("similarity2/pairs_output", 1)
                bytes_out = accounting.emit(SimilarPair(first, second, similarity))
                records_out = 1
            accounting.finish_group(partition, group_records, bytes_in,
                                    bytes_out, records_out)
        return accounting.finish(job, stats, counters)

    def _reduce_similarity1(self, runner: Any, job: Any, partitions: dict,
                            stats: Any, counters: Any) -> list[Any] | None:
        """Self-join the postings table to enumerate candidate pairs."""
        reducer = job.reducer
        candidate_filter = reducer.filter
        groups: list[tuple[int, Any, int, int, int]] = []
        postings: list[Any] = []
        rows: list[tuple[int, int, int]] = []
        mid_codes: dict[Any, int] = {}
        for gid, partition, key, key_values in _serial_groups(partitions):
            start = len(postings)
            bytes_in = 0
            for key_value in key_values:
                posting = key_value.value
                code = mid_codes.setdefault(posting.multiset_id, len(mid_codes))
                rows.append((len(postings), gid, code))
                postings.append(posting)
                bytes_in += estimate_record_bytes(key_value)
            groups.append((partition, key, start, len(postings), bytes_in))

        scratch = self._connect()
        try:
            scratch.run("DROP TABLE IF EXISTS postings")
            scratch.run(
                "CREATE TABLE postings (gidx BIGINT, gid BIGINT, mid BIGINT)")
            scratch.load("INSERT INTO postings VALUES (?, ?, ?)", rows)
            # One pair row per unordered posting pair of each element that
            # belongs to two different multisets, in exactly the serial
            # reducer's nested-loop order.
            pair_rows = scratch.rows(
                "SELECT a.gid, a.gidx, b.gidx FROM postings a "
                "JOIN postings b ON b.gid = a.gid AND b.gidx > a.gidx "
                "AND b.mid <> a.mid "
                "ORDER BY a.gid, a.gidx, b.gidx")
            scratch.run("DROP TABLE postings")
        finally:
            scratch.close()

        accounting = ReduceAccounting(runner, job)
        context = accounting.context
        row_index = 0
        total_rows = len(pair_rows)
        for gid, (partition, key, start, stop, bytes_in) in enumerate(groups):
            frequency = stop - start
            # materializes_input is True here (chunking gated out above),
            # so the budget check applies exactly as in the serial task.
            accounting.start_group(job, key, frequency, bytes_in, True)
            context.increment("similarity1/elements", 1)
            bytes_out = 0
            records_out = 0
            pruned = 0
            while row_index < total_rows and pair_rows[row_index][0] == gid:
                _gid, gidx_i, gidx_j = pair_rows[row_index]
                row_index += 1
                posting_i = postings[gidx_i]
                posting_j = postings[gidx_j]
                if candidate_filter.rejects(posting_i, posting_j):
                    pruned += 1
                    continue
                context.increment("similarity1/candidate_records", 1)
                bytes_out += accounting.emit(
                    candidate_filter.pair_record(posting_i, posting_j))
                records_out += 1
            if pruned:
                context.increment("similarity1/candidates_pruned", pruned)
            accounting.finish_group(partition, frequency, bytes_in,
                                    bytes_out, records_out)
        return accounting.finish(job, stats, counters)

    def _reduce_online_aggregation(self, runner: Any, job: Any,
                                   partitions: dict, stats: Any,
                                   counters: Any) -> list[Any] | None:
        """``SUM`` the per-element ``Uni`` contributions per multiset."""
        reducer = job.reducer
        measure = reducer.measure
        zero = _pushdown_zero(measure, "uni")
        if zero is None:
            return None
        arity = len(zero)
        groups: list[tuple[int, Any, int, int, list[tuple]]] = []
        rows: list[tuple] = []
        for gid, partition, key, key_values in _serial_groups(partitions):
            bytes_in = 0
            elements: list[tuple] = []
            saw_element = False
            for key_value in key_values:
                bytes_in += estimate_record_bytes(key_value)
                value = key_value.value
                if not isinstance(value, tuple) or len(value) < 2:
                    return None
                if value[0] == UNI_TAG:
                    # The serial reducer folds Uni records as it meets
                    # them; the SUM is only equivalent while every Uni
                    # record precedes every element record (which the
                    # secondary sort guarantees — this gate is belt and
                    # braces against hand-built value lists).
                    if saw_element:
                        return None
                    components = _integral_components(value[1], arity)
                    if components is None:
                        return None
                    rows.append((gid, *components))
                else:
                    if len(value) != 3:
                        return None
                    saw_element = True
                    elements.append((value[1], value[2]))
            groups.append((partition, key, len(key_values), bytes_in, elements))
        sums = self._grouped_sums(arity, rows)
        if sums is None:
            return None

        accounting = ReduceAccounting(runner, job)
        context = accounting.context
        for gid, (partition, key, group_records, bytes_in,
                  elements) in enumerate(groups):
            uni = sums.get(gid, zero)
            accounting.start_group(job, key, group_records, bytes_in, False)
            bytes_out = 0
            records_out = 0
            for element, multiplicity in elements:
                bytes_out += accounting.emit(
                    JoinedTuple(key, uni, element, multiplicity))
                records_out += 1
            context.increment("online_aggregation/multisets", 1)
            accounting.finish_group(partition, group_records, bytes_in,
                                    bytes_out, records_out)
        return accounting.finish(job, stats, counters)


# -- pushdown gates -----------------------------------------------------------


def _serial_groups(partitions: dict) -> Iterator[tuple[int, int, Any,
                                                       list[KeyValue]]]:
    """Yield ``(gid, partition, key, records)`` in the serial reduce order."""
    gid = 0
    for partition in sorted(partitions):
        for key, key_values in partitions[partition].items():
            yield gid, partition, key, key_values
            gid += 1


def _pushdown_zero(measure: Any, which: str) -> tuple[float, ...] | None:
    """The measure's fold identity, if SQL ``SUM`` reproduces its fold.

    A grouped ``SUM`` equals the serial left fold only when the measure
    merges partials with the base class's element-wise addition and folds
    from an all-zero identity; measures overriding either keep the exact
    Python loop.
    """
    if which == "conj":
        if type(measure).conj_merge is not NominalSimilarityMeasure.conj_merge:
            return None
        zero = measure.conj_zero()
    else:
        if type(measure).uni_merge is not NominalSimilarityMeasure.uni_merge:
            return None
        zero = measure.uni_zero()
    if not zero or any(component != 0.0 for component in zero):
        return None
    return tuple(float(component) for component in zero)


def _integral_components(value: Any, arity: int) -> list[float] | None:
    """The partial's components as integral floats, or ``None`` to gate out."""
    if not isinstance(value, tuple) or len(value) != arity:
        return None
    components: list[float] = []
    for component in value:
        if isinstance(component, bool) or not isinstance(component, (int, float)):
            return None
        number = float(component)
        if not number.is_integer():
            return None
        components.append(number)
    return components
