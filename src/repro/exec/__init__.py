"""Out-of-core and SQL-pushdown execution backends.

This package plugs two production-shaped execution strategies into the
:class:`~repro.mapreduce.backends.ExecutionBackend` seam:

* ``"disk"`` — :class:`DiskShuffleBackend`: the shuffle spills sorted
  runs to temporary files under a byte budget and streams reduce groups
  back through a k-way merge, so joins run on corpora far larger than
  memory;
* ``"sql"`` — :class:`SqlBackend`: the V-SMART-Join reduce phases
  (Similarity1/2, Online-Aggregation) compile into set-oriented SQL over
  SQLite or DuckDB, with an exact Python fallback for everything else.

Both are bit-identical to the serial backend in results, counters and
statistics; their physical telemetry lives in the reserved ``shuffle/``
and ``sql/`` counter namespaces.  Importing this package registers both
under their names, and :func:`repro.mapreduce.backends.get_backend`
imports it lazily, so ``get_backend("disk")`` and every
``JoinSpec(backend=...)`` string just work.
"""

from repro.exec.diskshuffle import DEFAULT_MEMORY_BUDGET_BYTES, DiskShuffleBackend
from repro.exec.shuffle import ExternalGrouper
from repro.exec.sqlbackend import SqlBackend
from repro.mapreduce.backends import register_backend

register_backend(DiskShuffleBackend)
register_backend(SqlBackend)

__all__ = [
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "DiskShuffleBackend",
    "ExternalGrouper",
    "SqlBackend",
]
