"""Group-by-group replication of the generic reduce task's accounting.

Both ``repro.exec`` backends replace the runner's reduce *task* machinery
(:func:`repro.mapreduce.phases.execute_reduce_task`) with their own loops
— a streaming merge of spilled runs, or a SQL aggregation — but the parity
contract requires the resulting :class:`~repro.mapreduce.types.JobStats`
and counters to be bit-identical to the serial path.
:class:`ReduceAccounting` centralises that bookkeeping so each backend
only supplies the per-group record flow:

* call :meth:`start_group` before reducing a group — it tracks group
  maxima and, for materialising reducers, enforces the per-machine memory
  budget in the same order (and with the same message) as the serial
  runner;
* feed every emitted record through :meth:`emit`;
* call :meth:`finish_group` with the group's totals;
* call :meth:`finish` once at the end — it runs the reducer's ``cleanup``
  hook (charged to machine 0, as in the serial task), folds the phase
  partial into the job stats and returns the output records.
"""

from __future__ import annotations

from typing import Any

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import TaskContext
from repro.mapreduce.phases import check_memory_budget
from repro.mapreduce.types import PhaseStats, estimate_record_bytes


class ReduceAccounting:
    """Exact stats/counters bookkeeping for a custom reduce loop."""

    def __init__(self, runner: Any, job: Any) -> None:
        self.task_counters = Counters()
        self.context = TaskContext(self.task_counters, job.side_data,
                                   runner.cluster.num_machines, job.name)
        self.overhead = runner.cost_parameters.record_overhead_bytes
        self.machines = runner.cluster.num_machines
        self.memory_budget = (runner.cluster.memory_per_machine
                              if runner.enforce_budgets else None)
        self.phase = PhaseStats()
        self.output_records: list[Any] = []
        self.reduce_groups = 0
        self.max_group_records = 0
        self.max_group_bytes = 0
        self.peak_task_memory = 0
        # One reduce task per job on these single-worker backends, so the
        # lifecycle hooks run exactly once, as on the serial backend.
        job.reducer.setup(self.context)

    def start_group(self, job: Any, key: Any, group_records: int,
                    bytes_in: int, materializes_input: bool) -> None:
        """Account a group about to be reduced; may raise on memory budget."""
        self.reduce_groups += 1
        if group_records > self.max_group_records:
            self.max_group_records = group_records
        if bytes_in > self.max_group_bytes:
            self.max_group_bytes = bytes_in
        if materializes_input:
            if bytes_in > self.peak_task_memory:
                self.peak_task_memory = bytes_in
            check_memory_budget(job.name, f"reduce value list of key {key!r}",
                                bytes_in, self.memory_budget)

    def emit(self, record: Any) -> int:
        """Collect one output record, returning its estimated size."""
        self.output_records.append(record)
        return estimate_record_bytes(record)

    def finish_group(self, partition: int, group_records: int, bytes_in: int,
                     bytes_out: int, records_out: int) -> None:
        """Fold one reduced group into the phase statistics."""
        work = bytes_in + bytes_out + self.overhead * group_records
        phase = self.phase
        phase.records_in += group_records
        phase.records_out += records_out
        phase.bytes_in += bytes_in
        phase.bytes_out += bytes_out
        phase.add_machine_work(partition % self.machines, work)

    def finish(self, job: Any, stats: Any, counters: Counters) -> list[Any]:
        """Run cleanup, merge everything into the job stats, return output."""
        cleanup_bytes = 0
        cleanup_count = 0
        for record in job.reducer.cleanup(self.context):
            self.output_records.append(record)
            cleanup_bytes += estimate_record_bytes(record)
            cleanup_count += 1
        if cleanup_count:
            self.phase.records_out += cleanup_count
            self.phase.bytes_out += cleanup_bytes
            self.phase.add_machine_work(
                0, cleanup_bytes + self.overhead * cleanup_count)
        stats.reduce.merge(self.phase)
        stats.reduce_groups += self.reduce_groups
        stats.max_group_records = max(stats.max_group_records,
                                      self.max_group_records)
        stats.max_group_bytes = max(stats.max_group_bytes,
                                    self.max_group_bytes)
        stats.peak_task_memory = max(stats.peak_task_memory,
                                     self.peak_task_memory)
        counters.merge_dict(self.task_counters.as_dict())
        return self.output_records
