"""Out-of-core shuffle backend: joins on corpora larger than memory.

The in-memory runner holds the whole shuffle — every intermediate record,
grouped by key — in one dictionary, which caps the corpus a join can
handle at available RAM.  :class:`DiskShuffleBackend` replaces exactly
that stage with the external merge sort of
:class:`~repro.exec.shuffle.ExternalGrouper`: map and combine run through
the runner's own (serial) loops, the partitioned output is spilled to
sorted run files under a configurable byte budget, and the reduce phase
streams groups back from a k-way merge one at a time, so peak memory is
bounded by the budget plus the largest single reduce group.

Parity contract: output records, counters and :class:`JobStats` are
bit-identical to the :class:`~repro.mapreduce.backends.SerialBackend` —
the grouper reproduces the serial shuffle's exact group order (see its
module docstring), and the streaming reduce replicates the serial task's
accounting through :class:`~repro.exec.accounting.ReduceAccounting`.
``spilled_bytes`` stays the *modeled* quantity (the shuffle volume, as on
every backend), so simulated times agree across backends even when the
cost model charges a disk term; the physical run-file telemetry is
reported separately through counters in the reserved ``shuffle/``
namespace (``shuffle/runs_written``, ``shuffle/bytes_spilled``,
``shuffle/merge_passes``, ``shuffle/peak_buffer_bytes``,
``shuffle/spilled_records``).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, Sequence

from repro.core.exceptions import BackendError
from repro.exec.accounting import ReduceAccounting
from repro.exec.shuffle import ExternalGrouper
from repro.mapreduce.backends import ExecutionBackend
from repro.mapreduce.types import KeyValue, estimate_record_bytes

#: Default spill budget: small enough that big benchmark corpora actually
#: go out of core, large enough that unit-test joins stay in memory.
DEFAULT_MEMORY_BUDGET_BYTES = 32 * 1024 * 1024


class DiskShuffleBackend(ExecutionBackend):
    """Run jobs with an external (disk-spilling) shuffle.

    ``memory_budget_bytes`` bounds the shuffle buffer (per worker; this
    backend always runs one), ``temp_dir`` overrides where run files live
    and ``merge_fan_in`` caps how many runs one merge pass reads.  The
    temporary directory is created per job and removed when the job
    finishes — including on error or cancellation.
    """

    name = "disk"

    def __init__(self, num_workers: int | None = None, *,
                 memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
                 temp_dir: str | None = None,
                 merge_fan_in: int = 8) -> None:
        # Map/combine/reduce loops must match the serial runner exactly,
        # so the backend always uses one worker (as SerialBackend does).
        super().__init__(1)
        if int(memory_budget_bytes) < 1:
            raise BackendError(
                f"disk backend memory_budget_bytes must be at least 1 byte, "
                f"got {memory_budget_bytes!r}")
        if int(merge_fan_in) < 2:
            raise BackendError(
                f"disk backend merge_fan_in must be at least 2, "
                f"got {merge_fan_in!r}")
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.temp_dir = temp_dir
        self.merge_fan_in = int(merge_fan_in)

    def run_tasks(self, function: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> list[Any]:
        return [function(task) for task in tasks]

    def execute_phases(self, runner: Any, job: Any, dataset: Any,
                       stats: Any, counters: Any,
                       num_reducers: int) -> list[Any] | None:
        """Run the job with the shuffle going through spill files."""
        map_output, _ = runner._run_map_phase(
            job, dataset, stats, counters, num_reducers, build_spill=False)
        if job.combiner is not None:
            map_output, _ = runner._run_combine_phase(
                job, map_output, stats, counters, num_reducers,
                build_spill=False)
        stats.shuffle_bytes = (stats.combine.bytes_out
                               if job.combiner is not None
                               else stats.map.bytes_out)
        stats.spilled_bytes = stats.shuffle_bytes
        if job.reducer is None:
            return list(map_output)

        grouper = ExternalGrouper(self.memory_budget_bytes,
                                  temp_dir=self.temp_dir,
                                  merge_fan_in=self.merge_fan_in)
        try:
            partitioner = job.partitioner
            for key_value in map_output:
                grouper.add(partitioner(key_value.key, num_reducers),
                            key_value, estimate_record_bytes(key_value))
            output_records = _streaming_reduce(runner, job,
                                               grouper.iter_groups(),
                                               stats, counters)
            telemetry = dict(grouper.telemetry)
        finally:
            grouper.close()
        for name, value in telemetry.items():
            counters.increment(f"shuffle/{name}", value)
        return output_records


def _streaming_reduce(runner: Any, job: Any,
                      groups: Iterator[tuple[int, Hashable, list[KeyValue]]],
                      stats: Any, counters: Any) -> list[Any]:
    """Reduce groups as they stream out of the merge, serially accounted."""
    reducer = job.reducer
    accounting = ReduceAccounting(runner, job)
    sort_by_secondary = (job.requires_secondary_keys
                         and runner.cluster.profile.supports_secondary_keys)
    materializes_input = reducer.materializes_input
    for partition, key, key_values in groups:
        if sort_by_secondary:
            key_values.sort(key=lambda kv: (kv.secondary is None, kv.secondary))
        values = [kv.value for kv in key_values]
        bytes_in = sum(estimate_record_bytes(kv) for kv in key_values)
        accounting.start_group(job, key, len(values), bytes_in,
                               materializes_input)
        bytes_out = 0
        records_out = 0
        for record in reducer.reduce(key, values, accounting.context):
            bytes_out += accounting.emit(record)
            records_out += 1
        accounting.finish_group(partition, len(values), bytes_in,
                                bytes_out, records_out)
    return accounting.finish(job, stats, counters)
