"""Out-of-core grouping: sorted spill runs merged back with ``heapq.merge``.

:class:`ExternalGrouper` is the disk half of the
:class:`~repro.exec.diskshuffle.DiskShuffleBackend`.  It accepts the
partitioned map output one record at a time, buffers records up to a byte
budget, spills sorted *runs* to temporary files whenever the buffer would
exceed the budget, and streams the grouped records back with a k-way merge
— the classic external merge sort that lets a shuffle handle corpora far
larger than the buffer.

The hard part is determinism: the in-memory shuffle groups records by
*first-occurrence key order* within each partition and preserves the
emission order inside every group, and the parity contract requires the
external path to reproduce that order bit for bit.  Sorting runs by key
would break it (keys may not even be mutually comparable).  Instead every
record gets a global emission sequence number, and every ``(partition,
key)`` group remembers the sequence number of its *first* record.  Runs
are sorted and merged on ``(partition, first_seq, seq)``:

* ``partition`` ascending reproduces the reducer's ``sorted(partitions)``
  sweep;
* ``first_seq`` ascending reproduces first-occurrence key order within the
  partition;
* ``seq`` ascending reproduces emission order within the group — and is
  globally unique, so the merge never falls through to comparing records.

Only the ``(partition, key) -> first_seq`` map stays in memory; this is
the external shuffle's key index (Hadoop keeps the same thing), so the
byte budget covers the buffered record payloads, not the key directory.
"""

from __future__ import annotations

import heapq
import os
import pickle
import shutil
import tempfile
from typing import Hashable, Iterator

from repro.core.exceptions import BackendError
from repro.mapreduce.types import KeyValue, estimate_record_bytes

#: A buffered/spilled entry: ``(partition, first_seq, seq, record)``.
_Entry = tuple[int, int, int, KeyValue]


def _entry_order(entry: _Entry) -> tuple[int, int, int]:
    """Merge order: never compares the record payload (``seq`` is unique)."""
    return (entry[0], entry[1], entry[2])


class ExternalGrouper:
    """Group partitioned records under a byte budget, spilling sorted runs.

    ``memory_budget_bytes`` bounds the buffered record payload: a record
    whose addition would push the buffer past the budget first flushes the
    buffer to a sorted run file (a single record larger than the whole
    budget occupies a buffer of one and is flushed by the next addition —
    the ceiling is ``max(budget, largest_record)``).  ``merge_fan_in``
    bounds how many runs one merge reads at a time; more runs than that
    trigger intermediate merge passes, exactly like a disk-based DBMS
    operator.

    The grouper owns a private temporary directory (created lazily under
    ``temp_dir`` or the system default) and removes it in :meth:`close`;
    always close, ideally via ``with``.
    """

    def __init__(self, memory_budget_bytes: int, *,
                 temp_dir: str | None = None,
                 merge_fan_in: int = 8) -> None:
        if int(memory_budget_bytes) < 1:
            raise BackendError(
                f"ExternalGrouper memory_budget_bytes must be at least 1 "
                f"byte, got {memory_budget_bytes!r}")
        if int(merge_fan_in) < 2:
            raise BackendError(
                f"ExternalGrouper merge_fan_in must be at least 2, "
                f"got {merge_fan_in!r}")
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.merge_fan_in = int(merge_fan_in)
        self._parent_dir = temp_dir
        self._directory: str | None = None
        self._buffer: list[_Entry] = []
        self._buffered_bytes = 0
        self._first_seq: dict[tuple[int, Hashable], int] = {}
        self._next_seq = 0
        self._runs: list[str] = []
        self._run_counter = 0
        self._closed = False
        #: Physical execution telemetry.  ``runs_written`` counts every run
        #: file, including intermediate merge outputs; ``bytes_spilled`` is
        #: the total bytes written to disk across all of them;
        #: ``spilled_records`` counts records in initial spills only (the
        #: records that actually left memory); ``merge_passes`` counts
        #: merge sweeps over run files (0 when everything stayed in
        #: memory).
        self.telemetry: dict[str, int] = {
            "runs_written": 0,
            "bytes_spilled": 0,
            "merge_passes": 0,
            "peak_buffer_bytes": 0,
            "spilled_records": 0,
        }

    # -- building -------------------------------------------------------------

    def add(self, partition: int, key_value: KeyValue,
            size_bytes: int | None = None) -> None:
        """Buffer one record, spilling a sorted run when over budget."""
        if self._closed:
            raise BackendError("ExternalGrouper is closed")
        size = (estimate_record_bytes(key_value) if size_bytes is None
                else int(size_bytes))
        if self._buffer and self._buffered_bytes + size > self.memory_budget_bytes:
            self._flush_run()
        seq = self._next_seq
        self._next_seq = seq + 1
        first_seq = self._first_seq.setdefault((partition, key_value.key), seq)
        self._buffer.append((partition, first_seq, seq, key_value))
        self._buffered_bytes += size
        if self._buffered_bytes > self.telemetry["peak_buffer_bytes"]:
            self.telemetry["peak_buffer_bytes"] = self._buffered_bytes

    def _flush_run(self) -> None:
        if not self._buffer:
            return
        self._buffer.sort(key=_entry_order)
        path = self._new_run_path()
        with open(path, "wb") as handle:
            for entry in self._buffer:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self.telemetry["runs_written"] += 1
        self.telemetry["bytes_spilled"] += os.path.getsize(path)
        self.telemetry["spilled_records"] += len(self._buffer)
        self._runs.append(path)
        self._buffer = []
        self._buffered_bytes = 0

    def _new_run_path(self) -> str:
        if self._directory is None:
            self._directory = tempfile.mkdtemp(prefix="repro-shuffle-",
                                               dir=self._parent_dir)
        path = os.path.join(self._directory, f"run-{self._run_counter:06d}.pkl")
        self._run_counter += 1
        return path

    # -- consuming ------------------------------------------------------------

    def iter_groups(self) -> Iterator[tuple[int, Hashable, list[KeyValue]]]:
        """Yield ``(partition, key, records)`` in the serial shuffle's order."""
        current: tuple[int, int] | None = None
        partition = 0
        records: list[KeyValue] = []
        for entry_partition, first_seq, _seq, key_value in self._merged_entries():
            group = (entry_partition, first_seq)
            if group != current:
                if records:
                    yield partition, records[0].key, records
                current = group
                partition = entry_partition
                records = []
            records.append(key_value)
        if records:
            yield partition, records[0].key, records

    def _merged_entries(self) -> Iterator[_Entry]:
        if not self._runs:
            # Fast path: everything fit in the buffer, nothing hit disk.
            self._buffer.sort(key=_entry_order)
            buffer, self._buffer = self._buffer, []
            self._buffered_bytes = 0
            return iter(buffer)
        self._flush_run()
        runs = list(self._runs)
        while len(runs) > self.merge_fan_in:
            batch, runs = runs[:self.merge_fan_in], runs[self.merge_fan_in:]
            runs.append(self._merge_batch(batch))
        self.telemetry["merge_passes"] += 1
        return heapq.merge(*(self._read_run(path) for path in runs),
                           key=_entry_order)

    def _merge_batch(self, batch: list[str]) -> str:
        """Merge a batch of runs into one longer run file."""
        path = self._new_run_path()
        with open(path, "wb") as handle:
            for entry in heapq.merge(*(self._read_run(stale) for stale in batch),
                                     key=_entry_order):
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
        for stale in batch:
            os.remove(stale)
        self._runs = [run for run in self._runs if run not in batch]
        self.telemetry["merge_passes"] += 1
        self.telemetry["runs_written"] += 1
        self.telemetry["bytes_spilled"] += os.path.getsize(path)
        self._runs.append(path)
        return path

    @staticmethod
    def _read_run(path: str) -> Iterator[_Entry]:
        with open(path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drop all state and remove the temporary directory (idempotent)."""
        self._closed = True
        self._buffer = []
        self._buffered_bytes = 0
        self._first_seq = {}
        self._runs = []
        if self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None

    def __enter__(self) -> "ExternalGrouper":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ExternalGrouper(memory_budget_bytes={self.memory_budget_bytes}, "
                f"merge_fan_in={self.merge_fan_in}, "
                f"runs={len(self._runs)})")
