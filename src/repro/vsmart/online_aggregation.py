"""The Online-Aggregation joining algorithm (paper section 5.1).

Online-Aggregation joins ``Uni(Mi)`` to the elements of ``Mi`` in a single
MapReduce step by exploiting *secondary keys*: for every raw input tuple the
mapper emits (a) the information needed to compute ``Uni(Mi)`` under
secondary key 0 and (b) the element itself under secondary key 1.  Because
the shuffle sorts each reduce value list by the secondary key, the reducer
sees all the ``Uni`` information before the first element and can stream the
joined tuples out without materialising anything.

Secondary keys are supported by the Google MapReduce but not by stock
Hadoop, which is the paper's motivation for the Lookup and Sharding
alternatives; running this job on a Hadoop-profile cluster raises
:class:`~repro.core.exceptions.UnsupportedFeatureError`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.records import InputTuple, JoinedTuple
from repro.mapreduce.job import Combiner, JobSpec, Mapper, Reducer, TaskContext
from repro.similarity.base import NominalSimilarityMeasure
from repro.vsmart.common import merge_uni, uni_contribution

#: Secondary key of the records carrying ``Uni`` information.
UNI_SECONDARY = 0
#: Secondary key of the records carrying the elements themselves.
ELEMENT_SECONDARY = 1

#: Value tags distinguishing the two record kinds inside a reduce value list
#: (small integers to keep the shuffled records compact).
UNI_TAG = 0
ELEMENT_TAG = 1


class OnlineAggregationMapper(Mapper):
    """``mapOnline-Aggregation1``: emit Uni information and elements per tuple.

    ``<Mi, m_ik>  ->  <Mi, 0, g(f_ik)>, <Mi, 1, m_ik>``  (for ``f_ik > 0``)
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def map(self, record: InputTuple, context: TaskContext) -> Iterator[tuple]:
        if record.multiplicity <= 0:
            return
        contribution = uni_contribution(self.measure, record.multiplicity)
        yield (record.multiset_id, (UNI_TAG, contribution), UNI_SECONDARY)
        yield (record.multiset_id,
               (ELEMENT_TAG, record.element, record.multiplicity),
               ELEMENT_SECONDARY)


class OnlineAggregationCombiner(Combiner):
    """Dedicated combiner: pre-aggregate the ``Uni`` records, pass elements.

    The runner invokes combiners per ``(key, secondary key)`` group, so a
    group holds either only ``Uni`` contributions (merged into one) or only
    element records (passed through untouched).
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def combine(self, key: object, values: Sequence[tuple],
                context: TaskContext) -> Iterator[tuple]:
        first_tag = values[0][0] if values else None
        if first_tag == UNI_TAG:
            merged = merge_uni(self.measure, [value[1] for value in values])
            yield (UNI_TAG, merged)
            return
        yield from values


class OnlineAggregationReducer(Reducer):
    """``reduceOnline-Aggregation1``: stream out joined tuples.

    The reduce value list arrives sorted by secondary key, so every ``Uni``
    record precedes every element record; the reducer accumulates ``Uni(Mi)``
    and then emits ``<Mi, Uni(Mi), m_ik>`` for each element without ever
    holding the element list in memory.
    """

    materializes_input = False

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def reduce(self, key: object, values: Sequence[tuple],
               context: TaskContext) -> Iterator[JoinedTuple]:
        uni = self.measure.uni_zero()
        for value in values:
            tag = value[0]
            if tag == UNI_TAG:
                uni = self.measure.uni_merge(uni, value[1])
            else:
                _tag, element, multiplicity = value
                yield JoinedTuple(key, uni, element, multiplicity)
        context.increment("online_aggregation/multisets", 1)


def build_online_aggregation_job(measure: NominalSimilarityMeasure,
                                 use_combiners: bool = True,
                                 name: str = "online_aggregation") -> JobSpec:
    """Build the single-step Online-Aggregation joining job."""
    combiner = OnlineAggregationCombiner(measure) if use_combiners else None
    return JobSpec(name=name,
                   mapper=OnlineAggregationMapper(measure),
                   reducer=OnlineAggregationReducer(measure),
                   combiner=combiner,
                   requires_secondary_keys=True)
