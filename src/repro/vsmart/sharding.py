"""The Sharding joining algorithm (paper section 5.3).

Sharding is the hybrid of Online-Aggregation and Lookup that needs neither
secondary keys nor a lookup table covering every multiset.  It exploits the
skew in underlying cardinalities:

* **Sharding1** is Lookup1 with a filter: only multisets whose underlying
  cardinality exceeds the parameter ``C`` (the *sharded* multisets — few in
  number but individually huge) get a ``Mi -> Uni(Mi)`` table entry;
* **Sharding2** mappers load that small table.  Tuples of sharded multisets
  join against it and are keyed by ``(Mi, fingerprint(a_k))`` so their
  elements scatter randomly over all reducers; tuples of unsharded multisets
  are keyed by ``(Mi, -1)`` so one reducer receives the whole (small) value
  list, computes ``Uni(Mi)`` on the fly and emits the joined tuples.

The output feeds the shared similarity phase.  Setting ``C`` absurdly high
degenerates into Online-Aggregation without secondary keys (reducers
materialise huge lists and thrash); setting it absurdly low degenerates into
Lookup (the table stops fitting in memory) — the sensitivity analysis of
Fig. 7 sweeps exactly this trade-off.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.records import InputTuple, JoinedTuple
from repro.mapreduce.job import JobSpec, Mapper, Reducer, TaskContext
from repro.mapreduce.partitioner import stable_hash
from repro.similarity.base import NominalSimilarityMeasure, Partials
from repro.vsmart.common import UniCountCombiner, uni_contribution

#: Sentinel fingerprint routing every element of an unsharded multiset to a
#: single reducer (the paper's ``<Mi, -1>`` key).
UNSHARDED_FINGERPRINT = -1

#: Number of distinct fingerprint values used to scatter sharded multisets.
FINGERPRINT_SPACE = 1 << 20

#: Value tags distinguishing sharded and unsharded records (kept as small
#: integers so the per-record overhead stays minimal on the wire).
SHARDED_TAG = 1
UNSHARDED_TAG = 0


def element_fingerprint(element: object) -> int:
    """The fingerprint of an alphabet element (stable across processes)."""
    return stable_hash(element, salt="sharding-fingerprint") % FINGERPRINT_SPACE


class Sharding1Mapper(Mapper):
    """``mapSharding1``: emit ``Uni`` contributions plus an element count."""

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def map(self, record: InputTuple, context: TaskContext) -> Iterator[tuple]:
        if record.multiplicity <= 0:
            return
        yield (record.multiset_id,
               (uni_contribution(self.measure, record.multiplicity), 1))


class Sharding1Reducer(Reducer):
    """``reduceSharding1``: output table entries only for sharded multisets.

    A multiset is sharded when its underlying cardinality ``|U(Mi)|``
    (the number of distinct elements, i.e. the total count accumulated from
    the mappers) exceeds the parameter ``C``.
    """

    materializes_input = False

    def __init__(self, measure: NominalSimilarityMeasure, cardinality_threshold: int) -> None:
        if cardinality_threshold < 1:
            raise ValueError("the sharding parameter C must be at least 1")
        self.measure = measure
        self.cardinality_threshold = cardinality_threshold

    def reduce(self, key: object, values: Sequence[tuple[Partials, int]],
               context: TaskContext) -> Iterator[tuple]:
        uni = self.measure.uni_zero()
        count = 0
        for contribution, elements in values:
            uni = self.measure.uni_merge(uni, contribution)
            count += elements
        context.increment("sharding1/multisets", 1)
        if count > self.cardinality_threshold:
            context.increment("sharding1/sharded_multisets", 1)
            yield (key, uni)


class Sharding2Mapper(Mapper):
    """``mapSharding2``: route tuples by whether their multiset is sharded.

    Sharded tuples join ``Uni(Mi)`` from the (small) lookup table and are
    scattered by element fingerprint; unsharded tuples carry no ``Uni`` and
    are all routed to the same reducer key ``(Mi, -1)``.
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure
        self._table: dict = {}

    def setup(self, context: TaskContext) -> None:
        self._table = context.side_data or {}

    def map(self, record: InputTuple, context: TaskContext) -> Iterator[tuple]:
        if record.multiplicity <= 0:
            return
        uni = self._table.get(record.multiset_id)
        if uni is not None:
            key = (record.multiset_id, element_fingerprint(record.element))
            yield (key, (SHARDED_TAG, uni, record.element, record.multiplicity))
        else:
            key = (record.multiset_id, UNSHARDED_FINGERPRINT)
            yield (key, (UNSHARDED_TAG, record.element, record.multiplicity))


class Sharding2Reducer(Reducer):
    """``reduceSharding2``: emit joined tuples for both kinds of multisets.

    Sharded groups already carry ``Uni(Mi)`` and are streamed through.
    Unsharded groups are materialised (they fit in memory by construction,
    since ``|U(Mi)| <= C``), scanned once to compute ``Uni(Mi)`` and a second
    time to emit the joined tuples — the two-scan behaviour described in the
    paper.
    """

    materializes_input = True

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def reduce(self, key: tuple, values: Sequence[tuple],
               context: TaskContext) -> Iterator[JoinedTuple]:
        multiset_id, fingerprint = key
        if fingerprint != UNSHARDED_FINGERPRINT:
            for value in values:
                _tag, uni, element, multiplicity = value
                context.increment("sharding2/sharded_tuples", 1)
                yield JoinedTuple(multiset_id, uni, element, multiplicity)
            return
        materialised = list(values)
        uni = self.measure.uni_zero()
        for _tag, _element, multiplicity in materialised:
            uni = self.measure.uni_merge(
                uni, uni_contribution(self.measure, multiplicity))
        for _tag, element, multiplicity in materialised:
            context.increment("sharding2/unsharded_tuples", 1)
            yield JoinedTuple(multiset_id, uni, element, multiplicity)


def build_sharding1_job(measure: NominalSimilarityMeasure,
                        cardinality_threshold: int,
                        use_combiners: bool = True,
                        name: str = "sharding1") -> JobSpec:
    """Build the Sharding1 job producing the sharded-multiset table."""
    combiner = UniCountCombiner(measure) if use_combiners else None
    return JobSpec(name=name,
                   mapper=Sharding1Mapper(measure),
                   reducer=Sharding1Reducer(measure, cardinality_threshold),
                   combiner=combiner)


def build_sharding2_job(measure: NominalSimilarityMeasure,
                        sharded_table: dict,
                        name: str = "sharding2") -> JobSpec:
    """Build the Sharding2 job, with the sharded table as side data."""
    return JobSpec(name=name,
                   mapper=Sharding2Mapper(measure),
                   reducer=Sharding2Reducer(measure),
                   side_data=sharded_table)
