"""The Lookup joining algorithm (paper section 5.2).

Lookup avoids secondary keys (so it runs on stock Hadoop) by splitting the
join into two steps:

* **Lookup1** computes ``Uni(Mi)`` for every multiset with an ordinary
  sum-style MapReduce (combiners included) and materialises the result as a
  lookup table mapping ``Mi -> Uni(Mi)``;
* **Lookup2** re-reads the raw input; each mapper loads the *entire* lookup
  table into memory at setup time and joins every tuple against it.  Its
  output is already keyed by the alphabet element, so the Similarity1
  reducer consumes it directly — Lookup2 and Similarity1 fuse into a single
  MapReduce step.

The scalability limitation the paper highlights is explicit here: the lookup
table has one entry per multiset, and the whole table must fit in every
mapper's memory.  On the realistic dataset that load fails
(:class:`~repro.core.exceptions.MemoryBudgetExceeded`), which is exactly the
outcome reported in section 7.2.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.records import InputTuple, PostingEntry
from repro.mapreduce.job import JobSpec, Mapper, Reducer, TaskContext
from repro.mapreduce.types import estimate_record_bytes
from repro.similarity.base import NominalSimilarityMeasure, Partials
from repro.vsmart.common import UniSumCombiner, merge_uni, uni_contribution


class Lookup1Mapper(Mapper):
    """``mapLookup1``: emit the per-element ``Uni`` contribution keyed by ``Mi``."""

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def map(self, record: InputTuple, context: TaskContext) -> Iterator[tuple]:
        if record.multiplicity <= 0:
            return
        yield (record.multiset_id, uni_contribution(self.measure, record.multiplicity))


class Lookup1Reducer(Reducer):
    """``reduceLookup1``: fold contributions into ``<Mi, Uni(Mi)>`` entries."""

    materializes_input = False

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def reduce(self, key: object, values: Sequence[Partials],
               context: TaskContext) -> Iterator[tuple]:
        context.increment("lookup1/multisets", 1)
        yield (key, merge_uni(self.measure, values))


class LookupJoinMapper(Mapper):
    """``mapLookup2``: join raw tuples against the in-memory lookup table.

    The side data is the ``{Mi: Uni(Mi)}`` dictionary produced by Lookup1.
    Output records are element-keyed postings, i.e. exactly the map output
    of Similarity1, so this mapper is plugged directly into the Similarity1
    job (saving one MapReduce step, as the paper notes).
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure
        self._table: dict = {}

    def setup(self, context: TaskContext) -> None:
        self._table = context.side_data or {}

    def map(self, record: InputTuple, context: TaskContext) -> Iterator[tuple]:
        if record.multiplicity <= 0:
            return
        uni = self._table.get(record.multiset_id)
        if uni is None:
            context.increment("lookup2/missing_table_entries", 1)
            return
        yield (record.element,
               PostingEntry(record.multiset_id, uni, record.multiplicity))


def build_lookup1_job(measure: NominalSimilarityMeasure,
                      use_combiners: bool = True,
                      name: str = "lookup1") -> JobSpec:
    """Build the Lookup1 job computing the ``Mi -> Uni(Mi)`` table."""
    combiner = UniSumCombiner(measure) if use_combiners else None
    return JobSpec(name=name,
                   mapper=Lookup1Mapper(measure),
                   reducer=Lookup1Reducer(measure),
                   combiner=combiner)


def lookup_table_from_records(records) -> dict:
    """Materialise Lookup1's output records into the lookup dictionary."""
    return {multiset_id: uni for multiset_id, uni in records}


def lookup_table_bytes(table: dict) -> int:
    """Estimated in-memory size of the lookup table (one entry per multiset)."""
    return estimate_record_bytes(table)
