"""Shared helpers for the joining-phase algorithms.

All three joining algorithms accumulate the unilateral partial results
``Uni(Mi)`` by summing per-element contributions; these helpers centralise
that logic together with the dedicated combiners that pre-aggregate the
contributions on the mapper machines (the paper's main lever for balancing
the reducers that handle multisets with vast underlying cardinalities).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.mapreduce.job import Combiner, TaskContext
from repro.similarity.base import NominalSimilarityMeasure, Partials


def uni_contribution(measure: NominalSimilarityMeasure,
                     multiplicity: float) -> Partials:
    """Per-element contribution of a multiplicity to ``Uni(Mi)``.

    Applies the measure's effective-multiplicity mapping first, so set
    measures contribute one per distinct element regardless of multiplicity.
    """
    return measure.uni_from_multiplicity(measure.effective_multiplicity(multiplicity))


def merge_uni(measure: NominalSimilarityMeasure,
              contributions: Sequence[Partials]) -> Partials:
    """Fold a sequence of ``Uni`` contributions with the measure's merge."""
    accumulator = measure.uni_zero()
    for contribution in contributions:
        accumulator = measure.uni_merge(accumulator, contribution)
    return accumulator


class UniSumCombiner(Combiner):
    """Dedicated combiner summing ``Uni`` contribution tuples per multiset.

    Used by Lookup1, whose map output values are plain contribution tuples.
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def combine(self, key: object, values: Sequence[Partials],
                context: TaskContext) -> Iterator[Partials]:
        yield merge_uni(self.measure, values)


class UniCountCombiner(Combiner):
    """Dedicated combiner for ``(Uni contribution, element count)`` values.

    Used by Sharding1, which needs both ``Uni(Mi)`` and the underlying
    cardinality ``|U(Mi)|`` (to compare against the sharding threshold C).
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def combine(self, key: object, values: Sequence[tuple[Partials, int]],
                context: TaskContext) -> Iterator[tuple[Partials, int]]:
        uni = self.measure.uni_zero()
        count = 0
        for contribution, elements in values:
            uni = self.measure.uni_merge(uni, contribution)
            count += elements
        yield (uni, count)
