"""Shared helpers for the joining-phase algorithms.

All three joining algorithms accumulate the unilateral partial results
``Uni(Mi)`` by summing per-element contributions; these helpers centralise
that logic together with the dedicated combiners that pre-aggregate the
contributions on the mapper machines (the paper's main lever for balancing
the reducers that handle multisets with vast underlying cardinalities).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.mapreduce.job import Combiner, TaskContext
from repro.similarity.base import NominalSimilarityMeasure, Partials

# The pure accumulation helpers are measure-only code shared with the online
# serving index; they live in repro.similarity.partials and are re-exported
# here for the joining algorithms (and backwards compatibility).
from repro.similarity.partials import (  # noqa: F401
    merge_uni,
    uni_contribution,
)


class UniSumCombiner(Combiner):
    """Dedicated combiner summing ``Uni`` contribution tuples per multiset.

    Used by Lookup1, whose map output values are plain contribution tuples.
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def combine(self, key: object, values: Sequence[Partials],
                context: TaskContext) -> Iterator[Partials]:
        yield merge_uni(self.measure, values)


class UniCountCombiner(Combiner):
    """Dedicated combiner for ``(Uni contribution, element count)`` values.

    Used by Sharding1, which needs both ``Uni(Mi)`` and the underlying
    cardinality ``|U(Mi)|`` (to compare against the sharding threshold C).
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def combine(self, key: object, values: Sequence[tuple[Partials, int]],
                context: TaskContext) -> Iterator[tuple[Partials, int]]:
        uni = self.measure.uni_zero()
        count = 0
        for contribution, elements in values:
            uni = self.measure.uni_merge(uni, contribution)
            count += elements
        yield (uni, count)
