"""Stop-word preprocessing (paper section 4).

Elements shared by more than ``q`` multisets ("stop words") make the
Similarity1 reducer handling them quadratically slow and dominate the noise
in skewed Internet-traffic datasets.  The paper describes an optional
preprocessing MapReduce step that discards them before the joining phase:

* the mapper re-keys every raw tuple by its element;
* the reducer buffers up to ``q + 1`` postings; if the list is exhausted
  within the buffer, the element is rare enough and all its tuples are
  re-emitted, otherwise the whole element is dropped.

Note that the paper's headline experiments do *not* discard stop words
("no stop words were discarded, and no multisets were sampled"); this step
exists for the ablation benchmark and as a library feature.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.records import InputTuple
from repro.mapreduce.job import JobSpec, Mapper, Reducer, TaskContext


class StopWordMapper(Mapper):
    """Re-key raw tuples by element: ``<Mi, m_ik> -> <a_k, <Mi, f_ik>>``."""

    def map(self, record: InputTuple, context: TaskContext) -> Iterator[tuple]:
        if record.multiplicity <= 0:
            return
        yield (record.element, (record.multiset_id, record.multiplicity))


class StopWordReducer(Reducer):
    """Drop elements whose posting list is longer than ``q``.

    Only ``q + 1`` postings ever need to be buffered, so the memory footprint
    is bounded by the parameter rather than by the element frequency — the
    property the paper relies on to call this step scalable.
    """

    materializes_input = False

    def __init__(self, frequency_threshold: int) -> None:
        if frequency_threshold < 1:
            raise ValueError("the stop-word threshold q must be at least 1")
        self.frequency_threshold = frequency_threshold

    def reduce(self, key: object, values: Sequence[tuple],
               context: TaskContext) -> Iterator[InputTuple]:
        buffered: list[tuple] = []
        for value in values:
            buffered.append(value)
            if len(buffered) > self.frequency_threshold:
                context.increment("preprocess/stop_words_dropped", 1)
                context.increment("preprocess/tuples_dropped", len(values))
                return
        context.increment("preprocess/elements_kept", 1)
        for multiset_id, multiplicity in buffered:
            yield InputTuple(multiset_id, key, multiplicity)


def build_stop_word_job(frequency_threshold: int,
                        name: str = "stop_word_filter") -> JobSpec:
    """Build the stop-word preprocessing job for a frequency threshold ``q``."""
    return JobSpec(name=name,
                   mapper=StopWordMapper(),
                   reducer=StopWordReducer(frequency_threshold))


def remove_small_multisets(records: Sequence[InputTuple],
                           minimum_elements: int) -> list[InputTuple]:
    """Drop multisets observing fewer than ``minimum_elements`` elements.

    Section 7.4 filters out IPs that observed fewer than 50 cookies to cut
    false positives; this in-memory helper applies the same filter to a raw
    tuple collection before building the pipeline input.
    """
    counts: dict = {}
    for record in records:
        counts[record.multiset_id] = counts.get(record.multiset_id, 0) + 1
    return [record for record in records
            if counts[record.multiset_id] >= minimum_elements]
