"""High-level driver for the V-SMART-Join framework.

:class:`VSmartJoin` wires a joining algorithm (Online-Aggregation, Lookup or
Sharding) to the shared two-step similarity phase and runs the resulting
pipeline on a simulated cluster.  The result carries the similar pairs, the
per-job statistics (including simulated run times) and the joining /
similarity phase split the paper reports separately in Fig. 6.

The convenience function :func:`vsmart_join` covers the common case: hand it
multisets, get back the similar pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.exceptions import JobConfigurationError
from repro.core.interning import InterningContext
from repro.core.multiset import Multiset
from repro.core.records import (
    InputTuple,
    SimilarPair,
    explode_multisets,
    resolve_record_type,
)
from repro.mapreduce.backends import ExecutionBackend
from repro.mapreduce.cluster import Cluster, laptop_cluster
from repro.mapreduce.costmodel import DEFAULT_COST_PARAMETERS, CostParameters
from repro.mapreduce.dfs import Dataset
from repro.mapreduce.job import JobSpec
from repro.mapreduce.runner import JobResult, LocalJobRunner, PipelineResult
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold
from repro.similarity.registry import get_measure
from repro.vsmart.lookup import (
    LookupJoinMapper,
    build_lookup1_job,
    lookup_table_from_records,
)
from repro.vsmart.online_aggregation import build_online_aggregation_job
from repro.vsmart.preprocessing import build_stop_word_job
from repro.vsmart.sharding import build_sharding1_job, build_sharding2_job
from repro.vsmart.similarity_phase import (
    Similarity1Reducer,
    SimilarityPhaseConfig,
    build_similarity1_job,
    build_similarity2_job,
)

#: Names of the three joining algorithms.
ONLINE_AGGREGATION = "online_aggregation"
LOOKUP = "lookup"
SHARDING = "sharding"

JOINING_ALGORITHMS = (ONLINE_AGGREGATION, LOOKUP, SHARDING)


@dataclass(frozen=True)
class VSmartJoinConfig:
    """Configuration of a V-SMART-Join run.

    Parameters
    ----------
    algorithm:
        One of ``"online_aggregation"``, ``"lookup"`` or ``"sharding"``.
    measure:
        Similarity measure name (see :mod:`repro.similarity.registry`) or a
        measure instance.  Must not require disjunctive partials.
    threshold:
        Similarity threshold ``t`` in ``(0, 1]``.
    sharding_threshold:
        The Sharding parameter ``C`` — multisets with more than ``C``
        distinct elements are handled through the lookup table.
    stop_word_frequency:
        Optional ``q``: when set, a preprocessing job discards elements
        shared by more than ``q`` multisets before the joining phase.
    chunk_size:
        Optional chunked-Similarity1 threshold ``T``-chunking: posting lists
        longer than this many entries are dissected into chunk pairs instead
        of being expanded on a single reducer.
    use_combiners:
        Whether dedicated combiners run (the paper's default is yes; the
        ablation benchmark flips this off).
    intern:
        Run the driver's interning pass: elements and multiset identifiers
        are mapped to dense integers (elements in ascending
        document-frequency order) before the pipeline runs, candidate pair
        keys pack both ids into a single int, and the final pairs are
        mapped back to the original identifiers.  Purely representational —
        the join output is identical with ``intern=False`` (the legacy
        arbitrary-key path).
    prune_candidates:
        Apply exact upper-bound candidate pruning in the Similarity1
        reducer (and in chunk expansion): pairs whose similarity upper
        bound — computed from the two ``Uni`` tuples — cannot reach the
        threshold are never emitted.  Unlike stop words this never changes
        the output; ``False`` restores the unpruned candidate stream.
    """

    algorithm: str = ONLINE_AGGREGATION
    measure: str | NominalSimilarityMeasure = "ruzicka"
    threshold: float = 0.5
    sharding_threshold: int = 1024
    stop_word_frequency: int | None = None
    chunk_size: int | None = None
    use_combiners: bool = True
    intern: bool = True
    prune_candidates: bool = True

    def __post_init__(self) -> None:
        if self.algorithm not in JOINING_ALGORITHMS:
            raise JobConfigurationError(
                f"unknown joining algorithm {self.algorithm!r}; "
                f"expected one of {JOINING_ALGORITHMS}")
        validate_threshold(self.threshold)
        if self.sharding_threshold < 1:
            raise JobConfigurationError("sharding_threshold (C) must be >= 1")

    def resolved_measure(self) -> NominalSimilarityMeasure:
        """Resolve and validate the configured measure."""
        measure = get_measure(self.measure)
        measure.check_supported()
        return measure

    def similarity_phase_config(self) -> SimilarityPhaseConfig:
        """The similarity-phase tunables derived from this configuration."""
        return SimilarityPhaseConfig(chunk_size=self.chunk_size,
                                     use_combiners=self.use_combiners)


@dataclass
class VSmartJoinResult:
    """The outcome of a V-SMART-Join run."""

    pairs: list[SimilarPair]
    pipeline: PipelineResult
    config: VSmartJoinConfig

    @property
    def simulated_seconds(self) -> float:
        """Total simulated run time of the whole pipeline."""
        return self.pipeline.simulated_seconds

    @property
    def joining_seconds(self) -> float:
        """Simulated run time of the joining phase only (Fig. 6 split)."""
        return self.pipeline.artifacts.get("joining_seconds", 0.0)

    @property
    def similarity_seconds(self) -> float:
        """Simulated run time of the shared similarity phase only."""
        return self.pipeline.artifacts.get("similarity_seconds", 0.0)

    def counters(self) -> dict[str, int]:
        """All job counters summed over the pipeline."""
        return self.pipeline.counters()


class VSmartJoin:
    """Run the V-SMART-Join pipeline on a simulated cluster.

    ``backend`` selects the execution backend every job of the pipeline runs
    on (``"serial"``, ``"thread"``, ``"process"`` or an
    :class:`~repro.mapreduce.backends.ExecutionBackend` instance).  Results,
    counters and simulated run times are identical across backends; only
    real wall-clock time changes.  Call :meth:`close` (or use the driver as
    a context manager) to release pooled workers.
    """

    def __init__(self, config: VSmartJoinConfig | None = None,
                 cluster: Cluster | None = None,
                 cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                 enforce_budgets: bool = True,
                 backend: str | ExecutionBackend = "serial") -> None:
        self.config = config or VSmartJoinConfig()
        self.cluster = cluster or laptop_cluster()
        self.runner = LocalJobRunner(self.cluster, cost_parameters,
                                     enforce_budgets=enforce_budgets,
                                     backend=backend)

    def close(self) -> None:
        """Release the execution backend when the driver created it."""
        self.runner.close()

    def __enter__(self) -> "VSmartJoin":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API -----------------------------------------------------------

    def run(self, data: Iterable[Multiset] | Dataset | Sequence[InputTuple]) -> VSmartJoinResult:
        """Execute the full pipeline and return the similar pairs."""
        measure = self.config.resolved_measure()
        dataset = normalise_input(data)

        interning: InterningContext | None = None
        if self.config.intern:
            records = list(dataset.records)
            interning = InterningContext.from_input_tuples(records)
            dataset = Dataset("interned_input",
                              interning.intern_records(records))

        job_stats = []
        joining_names: list[str] = []

        if self.config.stop_word_frequency is not None:
            result = self.runner.run(
                build_stop_word_job(self.config.stop_word_frequency), dataset)
            job_stats.append(result.stats)
            joining_names.append(result.stats.job_name)
            dataset = result.output

        sim1_result, joining_results = self._run_joining_and_similarity1(
            measure, dataset, interning)
        for result in joining_results:
            job_stats.append(result.stats)
            joining_names.append(result.stats.job_name)
        job_stats.append(sim1_result.stats)

        sim2_job = build_similarity2_job(
            measure, self.config.threshold,
            self.config.similarity_phase_config(),
            prune_chunks=self.config.prune_candidates,
            pair_codec=interning.codec if interning else None)
        sim2_result = self.runner.run(sim2_job, sim1_result.output)
        job_stats.append(sim2_result.stats)

        pairs = list(sim2_result.output.records)
        if interning is not None:
            pairs = interning.restore_pairs(pairs)
        pairs.sort()
        joining_seconds = sum(stats.simulated_seconds for stats in job_stats
                              if stats.job_name in joining_names)
        similarity_seconds = sum(stats.simulated_seconds for stats in job_stats
                                 if stats.job_name not in joining_names)
        pipeline = PipelineResult(
            name=f"vsmart-{self.config.algorithm}",
            output=sim2_result.output,
            job_stats=job_stats,
            artifacts={
                "joining_seconds": joining_seconds,
                "similarity_seconds": similarity_seconds,
                "algorithm": self.config.algorithm,
                "measure": measure.name,
                "threshold": self.config.threshold,
                "interned": interning is not None,
            },
        )
        return VSmartJoinResult(pairs=pairs, pipeline=pipeline, config=self.config)

    # -- joining algorithms ----------------------------------------------------

    def _run_joining_and_similarity1(
            self, measure: NominalSimilarityMeasure, dataset: Dataset,
            interning: InterningContext | None) -> tuple[JobResult, list[JobResult]]:
        algorithm = self.config.algorithm
        phase_config = self.config.similarity_phase_config()
        prune_measure = measure if self.config.prune_candidates else None
        prune_threshold = (self.config.threshold
                           if self.config.prune_candidates else None)
        pair_codec = interning.codec if interning else None
        if algorithm == ONLINE_AGGREGATION:
            joining = self.runner.run(
                build_online_aggregation_job(measure, self.config.use_combiners),
                dataset)
            sim1 = self.runner.run(
                build_similarity1_job(phase_config, measure=prune_measure,
                                      threshold=prune_threshold,
                                      pair_codec=pair_codec),
                joining.output)
            return sim1, [joining]
        if algorithm == LOOKUP:
            lookup1 = self.runner.run(
                build_lookup1_job(measure, self.config.use_combiners), dataset)
            table = lookup_table_from_records(lookup1.output.records)
            fused = JobSpec(name="lookup2+similarity1",
                            mapper=LookupJoinMapper(measure),
                            reducer=Similarity1Reducer(
                                phase_config, measure=prune_measure,
                                threshold=prune_threshold,
                                pair_codec=pair_codec),
                            side_data=table)
            sim1 = self.runner.run(fused, dataset)
            return sim1, [lookup1]
        # Sharding
        sharding1 = self.runner.run(
            build_sharding1_job(measure, self.config.sharding_threshold,
                                self.config.use_combiners), dataset)
        sharded_table = lookup_table_from_records(sharding1.output.records)
        sharding2 = self.runner.run(
            build_sharding2_job(measure, sharded_table), dataset)
        sim1 = self.runner.run(
            build_similarity1_job(phase_config, measure=prune_measure,
                                  threshold=prune_threshold,
                                  pair_codec=pair_codec),
            sharding2.output)
        return sim1, [sharding1, sharding2]


def normalise_input(data: Iterable[Multiset] | Dataset | Sequence[InputTuple]) -> Dataset:
    """Normalise pipeline input into a dataset of raw :class:`InputTuple`.

    Accepts a :class:`~repro.mapreduce.dfs.Dataset` of input tuples, a
    sequence of input tuples, or any iterable of multisets (which are
    exploded into one tuple per element).
    """
    if isinstance(data, Dataset):
        return data
    materialised = list(data)
    if not materialised:
        return Dataset("raw_input", [])
    record_type = resolve_record_type(materialised, (InputTuple, Multiset),
                                      JobConfigurationError)
    if record_type is InputTuple:
        return Dataset("raw_input", materialised)
    return Dataset("raw_input", explode_multisets(materialised))


def vsmart_join(multisets: Iterable[Multiset],
                measure: str | NominalSimilarityMeasure = "ruzicka",
                threshold: float = 0.5,
                algorithm: str = ONLINE_AGGREGATION,
                cluster: Cluster | None = None,
                cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                enforce_budgets: bool = True,
                backend: str | ExecutionBackend = "serial",
                **config_overrides) -> list[SimilarPair]:
    """Deprecated one-call API; use :func:`repro.join` / the engine instead.

    .. deprecated:: 1.3
        ``vsmart_join(...)`` is superseded by the unified engine::

            repro.join(multisets, measure=..., threshold=...,
                       algorithm=...).pairs

        The shim delegates to :class:`~repro.engine.engine.SimilarityEngine`
        with the equivalent :class:`~repro.engine.spec.JoinSpec`, which
        executes through this module's :class:`VSmartJoin` — the returned
        pairs are bit-identical to a direct driver call.
    """
    import warnings

    warnings.warn(
        "vsmart_join() is deprecated; use repro.join(data, algorithm=..., "
        "...) or SimilarityEngine.run(JoinSpec(...)) instead",
        DeprecationWarning, stacklevel=2)
    if algorithm not in JOINING_ALGORITHMS:
        # Preserve the historical contract: this function only ever ran
        # the V-SMART-Join joining algorithms.
        raise JobConfigurationError(
            f"unknown joining algorithm {algorithm!r}; "
            f"expected one of {JOINING_ALGORITHMS}")
    from repro.engine.engine import join as engine_join

    result = engine_join(multisets, cluster=cluster,
                         cost_parameters=cost_parameters,
                         enforce_budgets=enforce_budgets, backend=backend,
                         measure=measure, threshold=threshold,
                         algorithm=algorithm, **config_overrides)
    return result.pairs
