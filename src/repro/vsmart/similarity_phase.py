"""The shared V-SMART-Join similarity phase (paper section 4).

The similarity phase is common to all three joining algorithms and consists
of two MapReduce steps:

* **Similarity1** builds an inverted index on the alphabet elements, where
  each posting carries the multiset identifier, its unilateral partial
  results ``Uni(Mi)`` and the element multiplicity; the reducer scans each
  element's posting list and emits every candidate pair sharing that
  element, together with both ``Uni`` tuples and both multiplicities.
* **Similarity2** groups those records by pair, aggregates the conjunctive
  partial results ``Conj(Mi, Mj)`` (pre-aggregated by a dedicated combiner),
  applies the measure's ``F()`` function and keeps the pairs whose
  similarity reaches the threshold.

Two load-balancing refinements from the paper are implemented:

* an optional *chunked* Similarity1 reducer: an element whose posting list
  exceeds a chunk size is dissected into ``T`` chunks and all unordered
  chunk pairs are emitted; the Similarity2 mappers then expand each chunk
  pair into candidate pairs, moving the quadratic work off the single
  overloaded reducer (section 4, last paragraphs);
* an optional stop-word limit: elements whose posting list exceeds ``q``
  are dropped entirely (the dedicated preprocessing job in
  :mod:`repro.vsmart.preprocessing` is the paper's preferred way to do this,
  but the in-reducer guard is kept for ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.records import JoinedTuple, PairContribution, PairKey, PostingEntry, SimilarPair
from repro.mapreduce.job import Combiner, JobSpec, Mapper, Reducer, TaskContext
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold


@dataclass(frozen=True)
class ChunkPairRecord:
    """A pair of posting-list chunks emitted by an overloaded Similarity1 reducer.

    ``first_chunk`` and ``second_chunk`` are tuples of
    :class:`~repro.core.records.PostingEntry`; ``same_chunk`` marks the
    diagonal case where both sides are the same chunk (so the expansion must
    only produce ordered pairs within it).
    """

    element: object
    first_chunk: tuple
    second_chunk: tuple
    same_chunk: bool


@dataclass(frozen=True)
class SimilarityPhaseConfig:
    """Tunables of the similarity phase.

    ``chunk_size`` enables the chunked reducer for posting lists longer than
    the given number of entries; ``stop_word_frequency`` drops elements whose
    posting list exceeds the given length (``None`` disables either feature).
    """

    chunk_size: int | None = None
    stop_word_frequency: int | None = None
    use_combiners: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 2:
            raise ValueError("chunk_size must be at least 2 posting entries")
        if self.stop_word_frequency is not None and self.stop_word_frequency < 1:
            raise ValueError("stop_word_frequency must be at least 1")


# ---------------------------------------------------------------------------
# Similarity1
# ---------------------------------------------------------------------------


class Similarity1Mapper(Mapper):
    """``mapSimilarity1``: re-key joined tuples by their alphabet element.

    ``<Mi, Uni(Mi), m_ik>  ->  <a_k, <Mi, Uni(Mi), f_ik>>``
    """

    def map(self, record: JoinedTuple, context: TaskContext) -> Iterator[tuple]:
        yield (record.element,
               PostingEntry(record.multiset_id, record.uni, record.multiplicity))


class Similarity1Reducer(Reducer):
    """``reduceSimilarity1``: emit candidate pairs for each element.

    For every unordered pair of postings in the element's reduce value list
    the reducer outputs ``<<Mi, Mj, Uni(Mi), Uni(Mj)>, <f_ik, f_jk>>``.
    Without chunking the posting list must be materialised, so the runner's
    memory budget applies (exactly the thrashing risk the paper describes);
    with chunking the list is dissected and only chunk pairs are emitted.
    """

    def __init__(self, config: SimilarityPhaseConfig | None = None) -> None:
        self.config = config or SimilarityPhaseConfig()
        self.materializes_input = self.config.chunk_size is None

    def reduce(self, key: object, values: Sequence[PostingEntry],
               context: TaskContext) -> Iterator[object]:
        postings = list(values)
        frequency = len(postings)
        context.increment("similarity1/elements", 1)
        stop_limit = self.config.stop_word_frequency
        if stop_limit is not None and frequency > stop_limit:
            context.increment("similarity1/stop_words_dropped", 1)
            context.increment("similarity1/stop_word_postings_dropped", frequency)
            return
        chunk_size = self.config.chunk_size
        if chunk_size is not None and frequency > chunk_size:
            yield from self._emit_chunk_pairs(key, postings, chunk_size, context)
            return
        for index_i in range(frequency):
            posting_i = postings[index_i]
            for index_j in range(index_i + 1, frequency):
                posting_j = postings[index_j]
                if posting_i.multiset_id == posting_j.multiset_id:
                    continue
                context.increment("similarity1/candidate_records", 1)
                yield _pair_record(posting_i, posting_j)

    def _emit_chunk_pairs(self, element: object, postings: list[PostingEntry],
                          chunk_size: int,
                          context: TaskContext) -> Iterator[ChunkPairRecord]:
        chunks = [tuple(postings[start:start + chunk_size])
                  for start in range(0, len(postings), chunk_size)]
        context.increment("similarity1/chunked_elements", 1)
        context.increment("similarity1/chunks", len(chunks))
        for index_p, chunk_p in enumerate(chunks):
            for index_q in range(index_p, len(chunks)):
                yield ChunkPairRecord(element=element,
                                      first_chunk=chunk_p,
                                      second_chunk=chunks[index_q],
                                      same_chunk=index_p == index_q)


def _pair_record(posting_i: PostingEntry,
                 posting_j: PostingEntry) -> tuple[PairKey, PairContribution]:
    """Build the canonical ``(PairKey, PairContribution)`` record for a pair."""
    key = PairKey.make(posting_i.multiset_id, posting_i.uni,
                       posting_j.multiset_id, posting_j.uni)
    if key.first == posting_i.multiset_id:
        contribution = PairContribution(posting_i.multiplicity, posting_j.multiplicity)
    else:
        contribution = PairContribution(posting_j.multiplicity, posting_i.multiplicity)
    return (key, contribution)


# ---------------------------------------------------------------------------
# Similarity2
# ---------------------------------------------------------------------------


class Similarity2Mapper(Mapper):
    """``mapSimilarity2``: identity on pair records, expansion of chunk pairs.

    Normal Similarity1 output passes through unchanged.  Chunk-pair records
    (flagged output of an overloaded Similarity1 reducer) are expanded here
    into the candidate pair records the overloaded reducer did not produce,
    which redistributes the quadratic work across many mappers.

    The emitted value is the per-element conjunctive contribution
    ``g_l(f_ik, f_jk)`` of the measure rather than the raw multiplicity pair,
    so that the dedicated combiner can pre-aggregate with a plain sum — the
    same network saving the paper attributes to its combiners.
    """

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def map(self, record: object, context: TaskContext) -> Iterator[tuple]:
        if isinstance(record, ChunkPairRecord):
            yield from self._expand_chunks(record, context)
            return
        key, contribution = record
        yield (key, self._conj(contribution))

    def _conj(self, contribution: PairContribution) -> tuple:
        return self.measure.conj_from_pair(
            self.measure.effective_multiplicity(contribution.multiplicity_first),
            self.measure.effective_multiplicity(contribution.multiplicity_second))

    def _expand_chunks(self, record: ChunkPairRecord,
                       context: TaskContext) -> Iterator[tuple]:
        first = record.first_chunk
        second = record.second_chunk
        for index_i, posting_i in enumerate(first):
            start = index_i + 1 if record.same_chunk else 0
            for posting_j in second[start:]:
                if posting_i.multiset_id == posting_j.multiset_id:
                    continue
                context.increment("similarity2/chunk_expanded_records", 1)
                key, contribution = _pair_record(posting_i, posting_j)
                yield (key, self._conj(contribution))


class ConjunctiveCombiner(Combiner):
    """Dedicated combiner summing conjunctive contributions per pair."""

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def combine(self, key: PairKey, values: Sequence[tuple],
                context: TaskContext) -> Iterator[tuple]:
        accumulator = self.measure.conj_zero()
        for value in values:
            accumulator = self.measure.conj_merge(accumulator, value)
        yield accumulator


class Similarity2Reducer(Reducer):
    """``reduceSimilarity2``: combine partials into the final similarity.

    The reduce key carries ``Uni(Mi)`` and ``Uni(Mj)``; the value list holds
    the (possibly pre-combined) conjunctive contributions of every shared
    element.  Pairs reaching the threshold are emitted as
    :class:`~repro.core.records.SimilarPair`.
    """

    def __init__(self, measure: NominalSimilarityMeasure, threshold: float) -> None:
        self.measure = measure
        self.threshold = validate_threshold(threshold)

    def reduce(self, key: PairKey, values: Sequence[tuple],
               context: TaskContext) -> Iterator[SimilarPair]:
        conj = self.measure.conj_zero()
        for value in values:
            conj = self.measure.conj_merge(conj, value)
        similarity = self.measure.combine(key.uni_first, key.uni_second, conj)
        context.increment("similarity2/pairs_evaluated", 1)
        if similarity >= self.threshold:
            context.increment("similarity2/pairs_output", 1)
            yield SimilarPair(key.first, key.second, similarity)


# ---------------------------------------------------------------------------
# Job builders
# ---------------------------------------------------------------------------


def build_similarity1_job(config: SimilarityPhaseConfig | None = None,
                          name: str = "similarity1",
                          mapper: Mapper | None = None) -> JobSpec:
    """Build the Similarity1 job.

    ``mapper`` can be overridden so that a joining algorithm (Lookup) whose
    last step already produces element-keyed postings can fuse its map stage
    with Similarity1 and save a MapReduce step, as the paper describes.
    """
    return JobSpec(name=name,
                   mapper=mapper or Similarity1Mapper(),
                   reducer=Similarity1Reducer(config))


def build_similarity2_job(measure: NominalSimilarityMeasure, threshold: float,
                          config: SimilarityPhaseConfig | None = None,
                          name: str = "similarity2") -> JobSpec:
    """Build the Similarity2 job for a measure and threshold."""
    resolved_config = config or SimilarityPhaseConfig()
    combiner = ConjunctiveCombiner(measure) if resolved_config.use_combiners else None
    return JobSpec(name=name,
                   mapper=Similarity2Mapper(measure),
                   reducer=Similarity2Reducer(measure, threshold),
                   combiner=combiner)
