"""The shared V-SMART-Join similarity phase (paper section 4).

The similarity phase is common to all three joining algorithms and consists
of two MapReduce steps:

* **Similarity1** builds an inverted index on the alphabet elements, where
  each posting carries the multiset identifier, its unilateral partial
  results ``Uni(Mi)`` and the element multiplicity; the reducer scans each
  element's posting list and emits every candidate pair sharing that
  element, together with both ``Uni`` tuples and both multiplicities.
* **Similarity2** groups those records by pair, aggregates the conjunctive
  partial results ``Conj(Mi, Mj)`` (pre-aggregated by a dedicated combiner),
  applies the measure's ``F()`` function and keeps the pairs whose
  similarity reaches the threshold.

Two load-balancing refinements from the paper are implemented:

* an optional *chunked* Similarity1 reducer: an element whose posting list
  exceeds a chunk size is dissected into ``T`` chunks and all unordered
  chunk pairs are emitted; the Similarity2 mappers then expand each chunk
  pair into candidate pairs, moving the quadratic work off the single
  overloaded reducer (section 4, last paragraphs);
* an optional stop-word limit: elements whose posting list exceeds ``q``
  are dropped entirely (the dedicated preprocessing job in
  :mod:`repro.vsmart.preprocessing` is the paper's preferred way to do this,
  but the in-reducer guard is kept for ablations).

Two hot-path refinements go beyond the paper:

* **upper-bound candidate pruning** (exact, unlike stop words): when the
  phase is built with the measure and threshold, a candidate pair whose
  :meth:`~repro.similarity.base.NominalSimilarityMeasure.similarity_upper_bound`
  — computable from the two ``Uni`` tuples already sitting in the postings —
  cannot reach the threshold is never emitted.  The bound is a guarantee,
  so the join output is unchanged while the quadratic posting-list
  expansion shrinks *before* it hits the shuffle;
* **packed pair keys**: when the driver has interned multiset identifiers
  to dense integers (see :mod:`repro.core.interning`), a
  :class:`~repro.core.interning.PairCodec` packs each candidate's
  ``(id_i, id_j)`` into a single int, so the Similarity2 shuffle hashes and
  compares one machine word instead of a four-field record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.interning import PairCodec
from repro.core.records import JoinedTuple, PairContribution, PairKey, PostingEntry, SimilarPair
from repro.mapreduce.job import Combiner, JobSpec, Mapper, Reducer, TaskContext
from repro.similarity.base import NominalSimilarityMeasure, validate_threshold


@dataclass(frozen=True)
class ChunkPairRecord:
    """A pair of posting-list chunks emitted by an overloaded Similarity1 reducer.

    ``first_chunk`` and ``second_chunk`` are tuples of
    :class:`~repro.core.records.PostingEntry`; ``same_chunk`` marks the
    diagonal case where both sides are the same chunk (so the expansion must
    only produce ordered pairs within it).
    """

    element: object
    first_chunk: tuple
    second_chunk: tuple
    same_chunk: bool


@dataclass(frozen=True)
class SimilarityPhaseConfig:
    """Tunables of the similarity phase.

    ``chunk_size`` enables the chunked reducer for posting lists longer than
    the given number of entries; ``stop_word_frequency`` drops elements whose
    posting list exceeds the given length (``None`` disables either feature).
    """

    chunk_size: int | None = None
    stop_word_frequency: int | None = None
    use_combiners: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 2:
            raise ValueError("chunk_size must be at least 2 posting entries")
        if self.stop_word_frequency is not None and self.stop_word_frequency < 1:
            raise ValueError("stop_word_frequency must be at least 1")


class _CandidateFilter:
    """Shared pruning/packing state of the candidate-emitting stages.

    Pruning activates only when both a measure and a threshold are supplied
    *and* the measure actually admits a ``Uni``-only bound (measures whose
    :meth:`~repro.similarity.base.NominalSimilarityMeasure.conj_upper_bound`
    returns ``None`` would bound every pair by 1.0, so checking them would
    be pure overhead).
    """

    __slots__ = ("measure", "threshold", "pair_codec", "prunes")

    def __init__(self, measure: NominalSimilarityMeasure | None,
                 threshold: float | None,
                 pair_codec: PairCodec | None) -> None:
        self.measure = measure
        self.threshold = (None if threshold is None
                          else validate_threshold(threshold))
        self.pair_codec = pair_codec
        self.prunes = (measure is not None and self.threshold is not None
                       and measure.conj_upper_bound(
                           measure.uni_zero(), measure.uni_zero()) is not None)

    def rejects(self, posting_i: PostingEntry,
                posting_j: PostingEntry) -> bool:
        """True when the pair provably cannot reach the threshold."""
        return (self.prunes
                and self.measure.similarity_upper_bound(
                    posting_i.uni, posting_j.uni) < self.threshold)

    def pair_record(self, posting_i: PostingEntry,
                    posting_j: PostingEntry) -> tuple:
        """Build the canonical keyed record for a candidate pair.

        Without a codec the key is the four-field
        :class:`~repro.core.records.PairKey`.  With a codec (interned
        identifiers), numeric id order *is* canonical order, and the key
        becomes ``(packed_ids, Uni(Mi), Uni(Mj))`` — one int instead of two
        identifiers.
        """
        codec = self.pair_codec
        if codec is None:
            return _pair_record(posting_i, posting_j)
        if posting_i.multiset_id <= posting_j.multiset_id:
            first, second = posting_i, posting_j
        else:
            first, second = posting_j, posting_i
        key = (codec.pack(first.multiset_id, second.multiset_id),
               first.uni, second.uni)
        return (key, PairContribution(first.multiplicity, second.multiplicity))


# ---------------------------------------------------------------------------
# Similarity1
# ---------------------------------------------------------------------------


class Similarity1Mapper(Mapper):
    """``mapSimilarity1``: re-key joined tuples by their alphabet element.

    ``<Mi, Uni(Mi), m_ik>  ->  <a_k, <Mi, Uni(Mi), f_ik>>``
    """

    def map(self, record: JoinedTuple, context: TaskContext) -> Iterator[tuple]:
        yield (record.element,
               PostingEntry(record.multiset_id, record.uni, record.multiplicity))


class Similarity1Reducer(Reducer):
    """``reduceSimilarity1``: emit candidate pairs for each element.

    For every unordered pair of postings in the element's reduce value list
    the reducer outputs ``<<Mi, Mj, Uni(Mi), Uni(Mj)>, <f_ik, f_jk>>``.
    Without chunking the posting list must be materialised, so the runner's
    memory budget applies (exactly the thrashing risk the paper describes);
    with chunking the list is dissected and only chunk pairs are emitted.

    With ``measure`` and ``threshold`` supplied, pairs whose similarity
    upper bound cannot reach the threshold are pruned here — before they
    ever enter the shuffle.
    """

    def __init__(self, config: SimilarityPhaseConfig | None = None, *,
                 measure: NominalSimilarityMeasure | None = None,
                 threshold: float | None = None,
                 pair_codec: PairCodec | None = None) -> None:
        self.config = config or SimilarityPhaseConfig()
        self.filter = _CandidateFilter(measure, threshold, pair_codec)
        self.materializes_input = self.config.chunk_size is None

    def reduce(self, key: object, values: Sequence[PostingEntry],
               context: TaskContext) -> Iterator[object]:
        postings = list(values)
        frequency = len(postings)
        context.increment("similarity1/elements", 1)
        stop_limit = self.config.stop_word_frequency
        if stop_limit is not None and frequency > stop_limit:
            context.increment("similarity1/stop_words_dropped", 1)
            context.increment("similarity1/stop_word_postings_dropped", frequency)
            return
        chunk_size = self.config.chunk_size
        if chunk_size is not None and frequency > chunk_size:
            yield from self._emit_chunk_pairs(key, postings, chunk_size, context)
            return
        candidate_filter = self.filter
        pruned = 0
        for index_i in range(frequency):
            posting_i = postings[index_i]
            for index_j in range(index_i + 1, frequency):
                posting_j = postings[index_j]
                if posting_i.multiset_id == posting_j.multiset_id:
                    continue
                if candidate_filter.rejects(posting_i, posting_j):
                    pruned += 1
                    continue
                context.increment("similarity1/candidate_records", 1)
                yield candidate_filter.pair_record(posting_i, posting_j)
        if pruned:
            context.increment("similarity1/candidates_pruned", pruned)

    def _emit_chunk_pairs(self, element: object, postings: list[PostingEntry],
                          chunk_size: int,
                          context: TaskContext) -> Iterator[ChunkPairRecord]:
        chunks = [tuple(postings[start:start + chunk_size])
                  for start in range(0, len(postings), chunk_size)]
        context.increment("similarity1/chunked_elements", 1)
        context.increment("similarity1/chunks", len(chunks))
        for index_p, chunk_p in enumerate(chunks):
            for index_q in range(index_p, len(chunks)):
                yield ChunkPairRecord(element=element,
                                      first_chunk=chunk_p,
                                      second_chunk=chunks[index_q],
                                      same_chunk=index_p == index_q)


def _pair_record(posting_i: PostingEntry,
                 posting_j: PostingEntry) -> tuple[PairKey, PairContribution]:
    """Build the canonical ``(PairKey, PairContribution)`` record for a pair."""
    key = PairKey.make(posting_i.multiset_id, posting_i.uni,
                       posting_j.multiset_id, posting_j.uni)
    if key.first == posting_i.multiset_id:
        contribution = PairContribution(posting_i.multiplicity, posting_j.multiplicity)
    else:
        contribution = PairContribution(posting_j.multiplicity, posting_i.multiplicity)
    return (key, contribution)


# ---------------------------------------------------------------------------
# Similarity2
# ---------------------------------------------------------------------------


class Similarity2Mapper(Mapper):
    """``mapSimilarity2``: identity on pair records, expansion of chunk pairs.

    Normal Similarity1 output passes through unchanged.  Chunk-pair records
    (flagged output of an overloaded Similarity1 reducer) are expanded here
    into the candidate pair records the overloaded reducer did not produce,
    which redistributes the quadratic work across many mappers; the same
    upper-bound pruning the plain Similarity1 reducer applies runs during
    the expansion, so chunked and unchunked paths emit the identical
    candidate set.

    The emitted value is the per-element conjunctive contribution
    ``g_l(f_ik, f_jk)`` of the measure rather than the raw multiplicity pair,
    so that the dedicated combiner can pre-aggregate with a plain sum — the
    same network saving the paper attributes to its combiners.
    """

    def __init__(self, measure: NominalSimilarityMeasure, *,
                 threshold: float | None = None,
                 pair_codec: PairCodec | None = None) -> None:
        self.measure = measure
        self.filter = _CandidateFilter(
            measure if threshold is not None else None, threshold, pair_codec)

    def map(self, record: object, context: TaskContext) -> Iterator[tuple]:
        if isinstance(record, ChunkPairRecord):
            yield from self._expand_chunks(record, context)
            return
        key, contribution = record
        yield (key, self._conj(contribution))

    def _conj(self, contribution: PairContribution) -> tuple:
        return self.measure.conj_from_pair(
            self.measure.effective_multiplicity(contribution.multiplicity_first),
            self.measure.effective_multiplicity(contribution.multiplicity_second))

    def _expand_chunks(self, record: ChunkPairRecord,
                       context: TaskContext) -> Iterator[tuple]:
        first = record.first_chunk
        second = record.second_chunk
        candidate_filter = self.filter
        pruned = 0
        for index_i, posting_i in enumerate(first):
            start = index_i + 1 if record.same_chunk else 0
            for posting_j in second[start:]:
                if posting_i.multiset_id == posting_j.multiset_id:
                    continue
                if candidate_filter.rejects(posting_i, posting_j):
                    pruned += 1
                    continue
                context.increment("similarity2/chunk_expanded_records", 1)
                key, contribution = candidate_filter.pair_record(posting_i, posting_j)
                yield (key, self._conj(contribution))
        if pruned:
            context.increment("similarity1/candidates_pruned", pruned)


class ConjunctiveCombiner(Combiner):
    """Dedicated combiner summing conjunctive contributions per pair."""

    def __init__(self, measure: NominalSimilarityMeasure) -> None:
        self.measure = measure

    def combine(self, key: object, values: Sequence[tuple],
                context: TaskContext) -> Iterator[tuple]:
        accumulator = self.measure.conj_zero()
        for value in values:
            accumulator = self.measure.conj_merge(accumulator, value)
        yield accumulator


class Similarity2Reducer(Reducer):
    """``reduceSimilarity2``: combine partials into the final similarity.

    The reduce key carries ``Uni(Mi)`` and ``Uni(Mj)`` (either as a
    :class:`~repro.core.records.PairKey` or, with a pair codec, as a packed
    ``(ids, uni, uni)`` tuple); the value list holds the (possibly
    pre-combined) conjunctive contributions of every shared element.  Pairs
    reaching the threshold are emitted as
    :class:`~repro.core.records.SimilarPair` — carrying dense integer
    identifiers in the packed case, which the driver maps back to the
    originals.
    """

    def __init__(self, measure: NominalSimilarityMeasure, threshold: float, *,
                 pair_codec: PairCodec | None = None) -> None:
        self.measure = measure
        self.threshold = validate_threshold(threshold)
        self.pair_codec = pair_codec

    def reduce(self, key: object, values: Sequence[tuple],
               context: TaskContext) -> Iterator[SimilarPair]:
        conj = self.measure.conj_zero()
        for value in values:
            conj = self.measure.conj_merge(conj, value)
        codec = self.pair_codec
        if codec is None:
            first, second = key.first, key.second
            uni_first, uni_second = key.uni_first, key.uni_second
        else:
            packed, uni_first, uni_second = key
            first, second = codec.unpack(packed)
        similarity = self.measure.combine(uni_first, uni_second, conj)
        context.increment("similarity2/pairs_evaluated", 1)
        if similarity >= self.threshold:
            context.increment("similarity2/pairs_output", 1)
            yield SimilarPair(first, second, similarity)


# ---------------------------------------------------------------------------
# Job builders
# ---------------------------------------------------------------------------


def build_similarity1_job(config: SimilarityPhaseConfig | None = None,
                          name: str = "similarity1",
                          mapper: Mapper | None = None, *,
                          measure: NominalSimilarityMeasure | None = None,
                          threshold: float | None = None,
                          pair_codec: PairCodec | None = None) -> JobSpec:
    """Build the Similarity1 job.

    ``mapper`` can be overridden so that a joining algorithm (Lookup) whose
    last step already produces element-keyed postings can fuse its map stage
    with Similarity1 and save a MapReduce step, as the paper describes.
    Passing ``measure`` and ``threshold`` enables upper-bound candidate
    pruning; ``pair_codec`` enables packed pair keys (interned identifiers
    only).
    """
    return JobSpec(name=name,
                   mapper=mapper or Similarity1Mapper(),
                   reducer=Similarity1Reducer(config, measure=measure,
                                              threshold=threshold,
                                              pair_codec=pair_codec))


def build_similarity2_job(measure: NominalSimilarityMeasure, threshold: float,
                          config: SimilarityPhaseConfig | None = None,
                          name: str = "similarity2", *,
                          prune_chunks: bool = False,
                          pair_codec: PairCodec | None = None) -> JobSpec:
    """Build the Similarity2 job for a measure and threshold.

    ``prune_chunks`` applies the Similarity1 upper-bound pruning during
    chunk-pair expansion (it must match whether the Similarity1 job pruned,
    so both paths emit the same candidate set); ``pair_codec`` must be the
    codec the Similarity1 job packed its keys with, or ``None``.
    """
    resolved_config = config or SimilarityPhaseConfig()
    combiner = ConjunctiveCombiner(measure) if resolved_config.use_combiners else None
    mapper = Similarity2Mapper(measure,
                               threshold=threshold if prune_chunks else None,
                               pair_codec=pair_codec)
    return JobSpec(name=name,
                   mapper=mapper,
                   reducer=Similarity2Reducer(measure, threshold,
                                              pair_codec=pair_codec),
                   combiner=combiner)
